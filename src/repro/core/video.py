"""Video ingestion: key-frame selection and upload.

"In TVDP, a video is represented by a sequence of key frames; hence the
video is stored as a set of images where each one is tagged with
various descriptors."  Besides the uniform every-k policy that
MediaQ-style apps use, a content-adaptive selector keeps a frame only
when it looks sufficiently different from the last kept one — fewer
redundant frames from a truck idling at a light.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TVDPError
from repro.datasets.geougv import SyntheticVideo, VideoFrame
from repro.features.base import FeatureExtractor
from repro.core.platform import TVDP


def select_keyframes_uniform(video: SyntheticVideo, every: int = 5) -> list[VideoFrame]:
    """Every ``every``-th frame (delegates to the video's own policy)."""
    return video.key_frames(every=every)


def select_keyframes_adaptive(
    video: SyntheticVideo,
    extractor: FeatureExtractor,
    threshold: float = 0.25,
) -> list[VideoFrame]:
    """Content-change key-frame selection.

    Keeps frame 0, then keeps any frame whose feature distance from the
    last *kept* frame exceeds ``threshold``.
    """
    if threshold < 0:
        raise TVDPError(f"threshold must be >= 0, got {threshold}")
    if not video.frames:
        return []
    kept = [video.frames[0]]
    last_vector = extractor.extract(video.render_frame(0))
    for frame in video.frames[1:]:
        vector = extractor.extract(video.render_frame(frame.frame_number))
        if float(np.linalg.norm(vector - last_vector)) > threshold:
            kept.append(frame)
            last_vector = vector
    return kept


def ingest_video(
    platform: TVDP,
    video: SyntheticVideo,
    uploader_id: int | None = None,
    every: int = 5,
    keyframes: list[VideoFrame] | None = None,
) -> tuple[int, list[int]]:
    """Upload a video's key frames into the platform.

    Returns ``(video_row_id, image_ids)``.  Each stored frame keeps its
    per-frame FOV — the fine-granularity metadata MediaQ captures.
    """
    video_row = platform.register_video(
        uri=f"tvdp://videos/{video.video_id}",
        uploader_id=uploader_id,
        description=f"synthetic drive {video.video_id}",
    )
    frames = keyframes if keyframes is not None else video.key_frames(every=every)
    image_ids = []
    for frame in frames:
        receipt = platform.upload_image(
            image=video.render_frame(frame.frame_number),
            fov=frame.fov,
            captured_at=frame.timestamp,
            uploaded_at=frame.timestamp + 300.0,
            uploader_id=uploader_id,
            video_id=video_row,
            frame_number=frame.frame_number,
        )
        image_ids.append(receipt.image_id)
    return video_row, image_ids
