"""The TVDP platform facade.

Wires together the four core services of paper Fig. 1 over one shared
store:

* **Acquisition** — image/video upload with FOV metadata, deduplication
  by content hash, augmentation;
* **Access** — the Fig. 2 relational schema plus the index suite
  (Oriented R-tree, LSH, inverted index, Visual R*-tree) answering the
  five query families and hybrids;
* **Analysis** — pluggable feature extractors and the annotation
  machinery that stores model outputs back as shared knowledge;
* **Action** — hooks into :mod:`repro.edge` (dispatch, crowd learning).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.shard.router import ShardRouter  # devtools: allow[layer-boundary]

from repro import obs
from repro.obs.accounting import LOCAL_PRINCIPAL, charge, maybe_ledger_scope
from repro.errors import QueryError, TVDPError
from repro.db.database import Database
from repro.features.base import FeatureExtractor
from repro.features.registry import FeatureRegistry
from repro.geo.fov import FieldOfView
from repro.geo.point import GeoPoint
from repro.geo.scene import LocalizedScene, scene_location
from repro.imaging.augment import Augmentation
from repro.imaging.image import Image
from repro.imaging.phash import NearDuplicateIndex
from repro.imaging.quality import assess_quality
from repro.index.inverted import InvertedIndex
from repro.index.lsh import LSHIndex
from repro.index.oriented_rtree import OrientedRTree
from repro.index.hybrid import VisualRTree
from repro.core.annotations import AnnotationService
from repro.core.catalog import ClassificationCatalog
from repro.core.queries import (
    CategoricalQuery,
    HybridQuery,
    QueryResult,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    VisualQuery,
    canonical_ranked,
    combine_hybrid,
    query_family,
    query_shape,
)

_log = obs.get_logger("core.platform")

_FEATURE_CACHE_HITS = obs.metrics().counter("features.cache_hits")
_FEATURE_VECTORS_COMPUTED = obs.metrics().counter("features.vectors_computed")
_AUGMENTED_CREATED = obs.metrics().counter("platform.augmented_created")


@dataclass(frozen=True)
class UploadReceipt:
    """Outcome of an image upload.

    ``near_duplicate_of`` is set (and the image still stored) when
    near-duplicate detection is enabled and a perceptually similar
    image already exists; exact re-uploads set ``deduplicated`` and
    are not stored twice.
    """

    image_id: int
    deduplicated: bool
    near_duplicate_of: int | None = None


class TVDP:
    """One platform instance: storage, indexes, analysis, sharing.

    Parameters
    ----------
    reject_low_quality:
        When set, uploads failing the focus/exposure gate raise
        :class:`TVDPError` instead of being stored.
    detect_near_duplicates:
        When set, uploads are checked against a perceptual-hash index
        and flagged (``UploadReceipt.near_duplicate_of``) when a
        visually near-identical image already exists.
    shards:
        ``shards > 1`` turns on scale-out execution: the catalog is
        partitioned into geo-tile shards (see :mod:`repro.shard`) and
        queries scatter-gather across them, with results exactly equal
        to serial execution.  ``shards=1`` (the default) runs serial.
    shard_pool:
        Worker pool flavour for sharded execution: ``"process"`` (a
        ``multiprocessing`` pool fed pickled shard handles) or
        ``"inline"`` (in-process, for deterministic tests).
    shard_grid:
        ``(rows, cols)`` of the geo-tile lattice shards are carved from.
    """

    def __init__(
        self,
        reject_low_quality: bool = False,
        detect_near_duplicates: bool = False,
        shards: int = 1,
        shard_pool: str = "process",
        shard_grid: tuple[int, int] = (8, 8),
    ) -> None:
        if shards < 1:
            raise TVDPError(f"shards must be >= 1, got {shards}")
        self.db = Database.tvdp()
        self.catalog = ClassificationCatalog(self.db)
        self.annotations = AnnotationService(self.db, self.catalog)
        self.features = FeatureRegistry()
        self.reject_low_quality = reject_low_quality
        self.detect_near_duplicates = detect_near_duplicates
        self.shards = int(shards)
        self.shard_pool = shard_pool
        self.shard_grid = shard_grid
        # One platform-wide writer lock: ingest, feature indexing, and
        # shard-router lifecycle mutate the in-memory maps under it.
        # Query paths take it only for short map lookups; the index
        # structures themselves carry their own internal locks.
        self._lock = threading.RLock()
        self._blobs: dict[int, Image] = {}
        self._hash_to_id: dict[str, int] = {}
        self._spatial = OrientedRTree()
        self._text = InvertedIndex()
        self._lsh: dict[str, LSHIndex] = {}
        self._hybrid: dict[str, VisualRTree] = {}
        self._near_duplicates = NearDuplicateIndex() if detect_near_duplicates else None
        self._router: "ShardRouter | None" = None

    # -- users & keys ---------------------------------------------------------

    def add_user(self, name: str, role: str, organization: str | None = None) -> int:
        """Register a participant (government, researcher, community...)."""
        return self.db.insert(
            "users", {"name": name, "role": role, "organization": organization}
        )

    # -- acquisition -------------------------------------------------------------

    def upload_image(
        self,
        image: Image,
        fov: FieldOfView,
        captured_at: float,
        uploaded_at: float,
        keywords: tuple[str, ...] = (),
        uploader_id: int | None = None,
        video_id: int | None = None,
        frame_number: int | None = None,
    ) -> UploadReceipt:
        """Store one geo-tagged image with its full descriptor set.

        Re-uploads of identical pixel content are deduplicated ("visual
        data is huge in size and many times redundant"): the existing
        image id is returned and no new row is created.
        """
        registry = obs.metrics()
        # Ingest is serialized under the platform lock: the dedup
        # check-then-insert must be atomic against concurrent uploads
        # of identical content.
        with self._lock, obs.span("platform.upload_image") as sp:
            with obs.span("upload.dedup"):
                content_hash = image.content_hash()
                duplicate_id = self._hash_to_id.get(content_hash)
            if duplicate_id is not None:
                sp.set("outcome", "deduplicated")
                registry.counter(
                    "platform.uploads", {"outcome": "deduplicated"}
                ).inc()
                return UploadReceipt(image_id=duplicate_id, deduplicated=True)
            if self.reject_low_quality:
                with obs.span("upload.quality_gate") as gate:
                    report = assess_quality(image)
                    gate.set("accepted", report.accepted)
                if not report.accepted:
                    sp.set("outcome", "rejected")
                    registry.counter(
                        "platform.uploads", {"outcome": "rejected"}
                    ).inc()
                    _log.warning(
                        "upload rejected by quality gate: %s",
                        ", ".join(report.reasons),
                    )
                    raise TVDPError(
                        f"upload rejected: {', '.join(report.reasons)} "
                        f"(sharpness={report.sharpness:.2e}, clipping={report.clipping:.2f})"
                    )
            near_duplicate_of = None
            if self._near_duplicates is not None:
                with obs.span("upload.near_duplicate"):
                    matches = self._near_duplicates.find_similar(image)
                if matches:
                    near_duplicate_of = matches[0][0]
                    registry.counter("platform.near_duplicates_flagged").inc()
            image_id = self.db.insert(
                "images",
                {
                    "uri": f"tvdp://images/{content_hash[:12]}",
                    "content_hash": content_hash,
                    "lat": fov.camera.lat,
                    "lng": fov.camera.lng,
                    "timestamp_capturing": float(captured_at),
                    "timestamp_uploading": float(uploaded_at),
                    "video_id": video_id,
                    "frame_number": frame_number,
                    "is_augmented": False,
                    "uploader_id": uploader_id,
                },
            )
            self.db.insert("image_fov", {"image_id": image_id, **_fov_columns(fov)})
            scene = scene_location(fov)
            self.db.insert(
                "image_scene_location",
                {
                    "image_id": image_id,
                    "min_lat": scene.min_lat,
                    "min_lng": scene.min_lng,
                    "max_lat": scene.max_lat,
                    "max_lng": scene.max_lng,
                },
            )
            for keyword in keywords:
                self.db.insert(
                    "image_manual_keywords", {"image_id": image_id, "keyword": keyword}
                )
            with obs.span("upload.index_insert"):
                if keywords:
                    self._text.add(image_id, " ".join(keywords))
                self._blobs[image_id] = image
                self._hash_to_id[content_hash] = image_id
                self._spatial.insert(image_id, fov)
                if self._near_duplicates is not None:
                    self._near_duplicates.add(image_id, image)
            sp.set("outcome", "stored")
            sp.set("image_id", image_id)
            registry.counter("platform.uploads", {"outcome": "stored"}).inc()
            return UploadReceipt(
                image_id=image_id,
                deduplicated=False,
                near_duplicate_of=near_duplicate_of,
            )

    def register_video(
        self, uri: str, uploader_id: int | None = None, description: str = ""
    ) -> int:
        """Create a video row; its key frames are uploaded as images."""
        return self.db.insert(
            "videos",
            {"uri": uri, "uploader_id": uploader_id, "description": description or None},
        )

    def add_augmented(
        self, source_image_id: int, augmentations: list[Augmentation]
    ) -> list[int]:
        """Derive and store augmented variants of a stored image."""
        source = self.image(source_image_id)
        source_row = self.db.table("images").get(source_image_id)
        out = []
        created = 0
        with self._lock:
            for augmentation in augmentations:
                derived = augmentation(source)
                content_hash = derived.content_hash()
                if content_hash in self._hash_to_id:
                    out.append(self._hash_to_id[content_hash])
                    continue
                image_id = self.db.insert(
                    "images",
                    {
                        "uri": f"tvdp://images/{content_hash[:12]}",
                        "content_hash": content_hash,
                        "lat": source_row["lat"],
                        "lng": source_row["lng"],
                        "timestamp_capturing": source_row["timestamp_capturing"],
                        "timestamp_uploading": source_row["timestamp_uploading"],
                        "is_augmented": True,
                        "source_image_id": source_image_id,
                        "augmentation_name": augmentation.name,
                        "uploader_id": source_row["uploader_id"],
                    },
                )
                self._blobs[image_id] = derived
                self._hash_to_id[content_hash] = image_id
                out.append(image_id)
                created += 1
        _AUGMENTED_CREATED.inc(created)
        return out

    # -- access helpers ---------------------------------------------------------

    def image(self, image_id: int) -> Image:
        """Pixel content of a stored image."""
        with self._lock:
            if image_id not in self._blobs:
                raise TVDPError(f"no stored pixels for image {image_id}")
            return self._blobs[image_id]

    def fov(self, image_id: int) -> FieldOfView:
        """FOV descriptor of a stored image (augmented images inherit
        their source's spatial descriptors and have no FOV row)."""
        rows = self.db.table("image_fov").find("image_id", image_id)
        if not rows:
            raise TVDPError(f"image {image_id} has no FOV row")
        row = rows[0]
        images_row = self.db.table("images").get(image_id)
        return FieldOfView(
            camera=GeoPoint(images_row["lat"], images_row["lng"]),
            direction_deg=row["direction_deg"],
            angle_deg=row["angle_deg"],
            range_m=row["range_m"],
        )

    def image_ids(self, include_augmented: bool = True) -> list[int]:
        """All stored image ids."""
        rows = self.db.table("images").all_rows()
        return [
            row["image_id"]
            for row in rows
            if include_augmented or not row["is_augmented"]
        ]

    def localize_scene(self, image_id: int, max_views: int = 8) -> LocalizedScene:
        """Refined scene location for one image using other overlapping
        views (the data-centric localisation of paper ref. [23]).

        The Oriented R-tree finds stored images whose FOVs overlap this
        image's; intersecting their sectors shrinks the scene estimate
        and raises its confidence.  The refined box replaces the image's
        ``image_scene_location`` row.
        """
        with obs.span("platform.localize_scene", image_id=image_id) as sp:
            fov = self.fov(image_id)
            overlapping = [
                other
                for other in self._spatial.search_overlapping(fov)
                if other != image_id
            ][: max_views - 1]
            fovs = [fov] + [self.fov(other) for other in overlapping]
            estimate = LocalizedScene.estimate(fovs)
            sp.set("views", len(fovs))
        rows = self.db.table("image_scene_location").find("image_id", image_id)
        if rows:
            self.db.table("image_scene_location").update(
                rows[0]["scene_id"],
                {
                    "min_lat": estimate.box.min_lat,
                    "min_lng": estimate.box.min_lng,
                    "max_lat": estimate.box.max_lat,
                    "max_lng": estimate.box.max_lng,
                },
            )
        return estimate

    # -- analysis ------------------------------------------------------------------

    def register_extractor(self, extractor: FeatureExtractor) -> None:
        """Expose a feature extractor platform-wide."""
        self.features.register(extractor)

    def extract_features(
        self, extractor_name: str, image_ids: list[int] | None = None
    ) -> dict[int, np.ndarray]:
        """Compute (or fetch cached) features and index them for visual
        and hybrid search.  Returns image id -> vector."""
        extractor = self.features.get(extractor_name)
        targets = image_ids if image_ids is not None else self.image_ids()
        table = self.db.table("image_visual_features")
        out: dict[int, np.ndarray] = {}
        with self._lock:
            if extractor_name not in self._lsh:
                self._lsh[extractor_name] = LSHIndex(dimension=extractor.dimension())
                self._hybrid[extractor_name] = VisualRTree(
                    dimension=extractor.dimension()
                )
            lsh = self._lsh[extractor_name]
            hybrid = self._hybrid[extractor_name]
        with obs.span(
            "features.extract", extractor=extractor_name, images=len(targets)
        ) as sp:
            computed = 0
            cache_hits = 0
            for image_id in targets:
                cached = [
                    row
                    for row in table.find("image_id", image_id)
                    if row["extractor_name"] == extractor_name
                ]
                if cached:
                    out[image_id] = np.array(cached[0]["vector"], dtype=np.float64)
                    charge("feature_bytes", out[image_id].nbytes)
                    cache_hits += 1
                    continue
                vector = extractor.extract(self.image(image_id))
                charge("feature_bytes", vector.nbytes)
                self.db.insert(
                    "image_visual_features",
                    {
                        "image_id": image_id,
                        "extractor_name": extractor_name,
                        "vector": vector.tolist(),
                    },
                )
                row = self.db.table("images").get(image_id)
                lsh.insert(image_id, vector)
                hybrid.insert(image_id, GeoPoint(row["lat"], row["lng"]), vector)
                out[image_id] = vector
                computed += 1
            sp.set("computed", computed)
            sp.set("cache_hits", cache_hits)
            _FEATURE_VECTORS_COMPUTED.inc(computed)
            _FEATURE_CACHE_HITS.inc(cache_hits)
        return out

    def feature_vector(self, image_id: int, extractor_name: str) -> np.ndarray:
        """Stored feature vector, computing it on demand."""
        return self.extract_features(extractor_name, [image_id])[image_id]

    # -- query execution ---------------------------------------------------------

    def execute(self, query: object) -> list[QueryResult]:
        """Run any of the five query families or a hybrid.

        With ``shards > 1`` the query scatter-gathers across the
        geo-tile shards; the merged answer is exactly the serial one
        (the property harness in ``tests/shard`` proves it)."""
        if self.shards > 1:
            return self._execute(query, self._run_sharded)
        return self._execute(query, self._dispatch)

    def execute_serial(self, query: object) -> list[QueryResult]:
        """Serial bypass of the scatter-gather path — the oracle the
        equivalence harness compares sharded answers against.  On a
        serial platform this is identical to :meth:`execute`."""
        return self._execute(query, self._dispatch)

    def execute_many(self, queries: list[object]) -> list[list[QueryResult]]:
        """Execute a batch of queries.

        Sharded platforms fan the *whole batch* out in one scatter
        round-trip per shard, amortising worker dispatch across the
        batch; serial platforms just loop.
        """
        if self.shards > 1:
            router = self._shard_router()
            with maybe_ledger_scope(
                obs.usage(), principal=LOCAL_PRINCIPAL, operation="execute.batch"
            ):
                with obs.span("query.batch", queries=len(queries)):
                    routed = router.execute_many(list(queries))
            registry = obs.metrics()
            for query in queries:
                registry.counter(
                    "platform.queries", {"family": query_family(query)}
                ).inc()
            return [results for results, _ in routed]
        return [self.execute(query) for query in queries]

    def _run_sharded(self, query: object) -> list[QueryResult]:
        results, info = self._shard_router().execute(query)
        span = obs.current_span()
        if span is not None:
            for key, value in info.items():
                span.set(key, value)
        return results

    def _shard_router(self) -> "ShardRouter":
        with self._lock:
            if self._router is None:
                # The shard layer sits *above* core in the layer DAG; this
                # lazy import is the one sanctioned downward reference.
                from repro.shard.router import ShardRouter  # devtools: allow[layer-boundary]

                self._router = ShardRouter(
                    self,
                    n_shards=self.shards,
                    pool_kind=self.shard_pool,
                    grid=self.shard_grid,
                )
            return self._router

    def set_shards(self, shards: int, pool: str | None = None) -> None:
        """Re-shard the platform in place (``shards=1`` returns to
        serial).  Existing worker pools are released."""
        if shards < 1:
            raise TVDPError(f"shards must be >= 1, got {shards}")
        self.close()
        self.shards = int(shards)
        if pool is not None:
            self.shard_pool = pool

    def close(self) -> None:
        """Release scatter-gather worker processes (no-op when serial)."""
        with self._lock:
            router, self._router = self._router, None
        # The router takes its own lock (and tears down worker pools)
        # in close(); call it with the platform lock released so the
        # two locks never nest in this direction.
        if router is not None:
            router.close()

    def shard_plan_preview(self, query: object) -> dict | None:
        """Shard-pruning annotation for EXPLAIN — ``shards_considered``
        and ``shards_pruned`` without executing; ``None`` when serial."""
        if self.shards <= 1:
            return None
        return self._shard_router().preview(query)

    def visual_indexes(self) -> dict[str, LSHIndex]:
        """Live LSH indexes by extractor name (read-only view for the
        shard partitioner, which clones their hash functions)."""
        with self._lock:
            return dict(self._lsh)

    def hybrid_indexes(self) -> dict[str, VisualRTree]:
        """Live Visual R-trees by extractor name (read-only view for the
        shard partitioner)."""
        with self._lock:
            return dict(self._hybrid)

    def _dispatch(self, query: object) -> list[QueryResult]:
        runners = {
            SpatialQuery: self._run_spatial,
            VisualQuery: self._run_visual,
            CategoricalQuery: self._run_categorical,
            TextualQuery: self._run_textual,
            TemporalQuery: self._run_temporal,
            HybridQuery: self._run_hybrid,
        }
        return runners[type(query)](query)

    def _execute(self, query: object, run) -> list[QueryResult]:
        family = query_family(query)
        # Hybrid sub-queries recurse through execute_serial(), so one
        # hybrid call yields a query.hybrid span with query.<family>
        # children — and maybe_ledger_scope bills them all to the
        # enclosing ledger (the API request's when there is one, a fresh
        # local ledger otherwise) instead of fragmenting the charge
        # across sub-queries.
        with maybe_ledger_scope(
            obs.usage(), principal=LOCAL_PRINCIPAL, operation=f"execute.{family}"
        ) as ledger:
            with obs.span(f"query.{family}") as sp:
                # The outermost query names the bill: hybrid sub-queries
                # must not overwrite the shape or trace already recorded.
                if ledger.shape is None:
                    ledger.annotate(shape=query_shape(query))
                if ledger.trace_id is None:
                    ledger.annotate(trace_id=sp.trace_id)
                results = run(query)
                sp.set("results", len(results))
        obs.metrics().counter("platform.queries", {"family": family}).inc()
        # duration_ms is only final once the span context exits, so the
        # hot-query tracker is fed outside the with-block.
        obs.hot_queries().record(query_shape(query), sp.duration_ms)
        return results

    def _run_spatial(self, query: SpatialQuery) -> list[QueryResult]:
        region = query.bounding_region()
        if query.mode == "scene":
            if query.point is not None and query.radius_m == 0.0:
                hits = self._spatial.search_point(
                    query.point.lat,
                    query.point.lng,
                    direction_deg=query.direction_deg,
                    tolerance_deg=query.direction_tolerance_deg,
                )
            else:
                hits = self._spatial.search_range(
                    region,
                    direction_deg=query.direction_deg,
                    tolerance_deg=query.direction_tolerance_deg,
                )
        else:
            hits = []
            for image_id in self._spatial.search_range(
                region,
                direction_deg=query.direction_deg,
                tolerance_deg=query.direction_tolerance_deg,
            ):
                row = self.db.table("images").get(image_id)
                if region.contains_point(GeoPoint(row["lat"], row["lng"])):
                    hits.append(image_id)
        return [QueryResult(image_id=i) for i in sorted(hits)]

    def _run_visual(self, query: VisualQuery) -> list[QueryResult]:
        with self._lock:
            lsh = self._lsh.get(query.extractor_name)
        if lsh is None:
            raise QueryError(
                f"no features extracted yet for {query.extractor_name!r}; "
                "call extract_features first"
            )
        vector = query.vector
        if vector is None:
            vector = self.features.get(query.extractor_name).extract(query.example)
        charge("feature_bytes", np.asarray(vector).nbytes)
        if query.max_distance is not None:
            pairs = lsh.query_radius(vector, query.max_distance)[: query.k]
        else:
            pairs = lsh.query_topk(vector, query.k)
        # Similarity score: inverse distance, monotone for ranking.
        return [
            QueryResult(image_id=item, score=1.0 / (1.0 + distance))
            for item, distance in pairs
        ]

    def _run_categorical(self, query: CategoricalQuery) -> list[QueryResult]:
        hits = self.annotations.images_with_label(
            query.classification,
            query.labels,
            min_confidence=query.min_confidence,
            source=query.source,
        )
        return [
            QueryResult(image_id=image_id, score=confidence)
            for image_id, confidence in sorted(hits.items())
        ]

    def _run_textual(self, query: TextualQuery) -> list[QueryResult]:
        if query.match == "all":
            pairs = self._text.search_all(query.text)
        else:
            pairs = self._text.search_any(query.text)
        return canonical_ranked(
            [QueryResult(image_id=doc, score=score) for doc, score in pairs]
        )

    def _run_temporal(self, query: TemporalQuery) -> list[QueryResult]:
        lo = query.start if query.start is not None else -np.inf
        hi = query.end if query.end is not None else np.inf
        rows = self.db.table("images").scan(
            lambda row: lo <= row[query.field] <= hi
        )
        return [QueryResult(image_id=i) for i in sorted(row["image_id"] for row in rows)]

    def _run_hybrid(self, query: HybridQuery) -> list[QueryResult]:
        # Spatial-visual pairs get the dedicated Visual R*-tree path.
        parts = list(query.queries)
        if len(parts) == 2:
            spatial = next((q for q in parts if isinstance(q, SpatialQuery)), None)
            visual = next((q for q in parts if isinstance(q, VisualQuery)), None)
            if spatial is not None and visual is not None:
                return self._run_spatial_visual(spatial, visual)
        # Sub-queries recurse serially even on a sharded platform: the
        # router decomposes hybrids *itself* so each part scatters once,
        # and this serial path stays the oracle the harness compares to.
        result_sets = [self.execute_serial(sub) for sub in parts]
        return combine_hybrid(result_sets)

    def _run_spatial_visual(
        self, spatial: SpatialQuery, visual: VisualQuery
    ) -> list[QueryResult]:
        with self._lock:
            hybrid = self._hybrid.get(visual.extractor_name)
        if hybrid is None:
            raise QueryError(
                f"no features extracted yet for {visual.extractor_name!r}; "
                "call extract_features first"
            )
        vector = visual.vector
        if vector is None:
            vector = self.features.get(visual.extractor_name).extract(visual.example)
        charge("feature_bytes", np.asarray(vector).nbytes)
        pairs = hybrid.spatial_visual_knn(
            spatial.bounding_region(), vector, visual.k
        )
        if visual.max_distance is not None:
            pairs = [(i, d) for i, d in pairs if d <= visual.max_distance]
        return [
            QueryResult(image_id=item, score=1.0 / (1.0 + distance))
            for item, distance in pairs
        ]

    # -- stats ---------------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Platform-wide counters (exposed by the API's stats route),
        including per-operation latency summaries from the span
        histograms."""
        windows = obs.latency_windows()
        with self._lock:
            n_blobs = len(self._blobs)
            lsh_names = sorted(self._lsh)
        return {
            "rows": self.db.row_counts(),
            "blobs": n_blobs,
            "indexed_fovs": len(self._spatial),
            "extractors": self.features.names(),
            "lsh_indexes": lsh_names,
            "latency_ms": self.latency_summaries(),
            "latency_ms_window": windows.summaries(),
            "window_s": windows.window_s,
            "usage": obs.usage().report(),
        }

    def latency_summaries(self) -> dict[str, dict[str, float]]:
        """Span name -> {count, sum, min, max, p50, p95, p99} (ms) for
        every operation traced so far in this process."""
        out: dict[str, dict[str, float]] = {}
        for hist in obs.metrics().histograms("span.duration_ms"):
            labels = dict(hist.labels)
            if hist.count and "span" in labels:
                out[labels["span"]] = hist.summary()
        return dict(sorted(out.items()))

    def reset_metrics(self) -> None:
        """Zero all observability state (metrics + buffered spans) so a
        benchmark phase starts from a clean slate."""
        obs.reset()

    def metrics_snapshot(self) -> dict[str, dict]:
        """Current values of every metric (see
        :meth:`repro.obs.MetricsRegistry.snapshot`)."""
        return obs.snapshot()


def _fov_columns(fov: FieldOfView) -> dict[str, float]:
    return {
        "direction_deg": fov.direction_deg,
        "angle_deg": fov.angle_deg,
        "range_m": fov.range_m,
    }
