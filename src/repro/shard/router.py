"""Coordinator for sharded query execution.

The router owns the shard handles, the planner statistics, and the
worker pool.  For every query it

1. **prepares** a coordinator-side plan — validating exactly like the
   serial runners (same :class:`~repro.errors.QueryError` messages, in
   the same order), resolving catalog lookups, extracting query
   vectors, and charging the same coordinator-side ledger entries;
2. **prunes** shards with :func:`repro.core.planner.prune_shards`
   (sound predicates — pruning can only shrink fan-out, never results);
3. **scatters** per-shard :class:`~repro.shard.plans.ShardTask` batches
   through a :class:`~repro.shard.executor.ScatterGatherExecutor`
   (batching a whole ``execute_many`` round into one dispatch per
   shard); and
4. **merges** the payloads back into the exact serial answer: set
   unions for enumeration families, coordinator-side global tf-idf for
   text, two-phase candidate/fallback top-k for visual, distance-level
   heap merges for ranked families, and
   :func:`~repro.core.queries.combine_hybrid` for general hybrids.

Failed shards (after retries) degrade the answer to ``partial=True``
instead of raising — surfaced per query in the info dict and on the
query span.
"""

from __future__ import annotations

import math
import threading

from repro import obs
from repro.core.planner import ShardStats, prune_shards
from repro.core.platform import TVDP
from repro.core.queries import (
    CategoricalQuery,
    HybridQuery,
    QueryResult,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    VisualQuery,
    canonical_ranked,
    combine_hybrid,
)
from repro.errors import QueryError, ShardError, TVDPError
from repro.geo.point import BoundingBox
from repro.index.inverted import tokenize
from repro.index.ordering import tie_key
from repro.obs.accounting import charge
from repro.resilience.clock import Clock
from repro.shard.executor import (
    InlineShardPool,
    ProcessShardPool,
    ScatterGatherExecutor,
)
from repro.shard.partition import partition_catalog
from repro.shard.plans import ShardTask

import numpy as np

_log = obs.get_logger("shard.router")

_FANOUTS = obs.metrics().counter("shard.fanouts")
_PRUNED = obs.metrics().counter("shard.shards_pruned")
_PARTIAL = obs.metrics().counter("shard.partial_results")


class _Unit:
    """One task fanned out to a set of shards, with its gathered
    payloads (``lost`` records shards that failed every attempt)."""

    __slots__ = ("task", "shard_ids", "payloads", "lost")

    def __init__(self, task: ShardTask, shard_ids: list) -> None:
        self.task = task
        self.shard_ids = list(shard_ids)
        self.payloads: dict = {}
        self.lost: list = []

    def ordered_payloads(self) -> list:
        """Payloads in ascending shard order (merge determinism)."""
        return [self.payloads[s] for s in sorted(self.payloads)]


class ShardRouter:
    """Scatter-gather coordinator bound to one :class:`TVDP` platform."""

    def __init__(
        self,
        platform: TVDP,
        n_shards: int,
        pool_kind: str = "process",
        grid: tuple = (8, 8),
        region: BoundingBox | None = None,
        max_attempts: int = 3,
        timeout_s: float = 30.0,
        clock: Clock | None = None,
    ) -> None:
        if n_shards < 2:
            raise TVDPError(f"router needs >= 2 shards, got {n_shards}")
        if pool_kind not in ("process", "inline"):
            raise TVDPError(f"unknown shard pool kind {pool_kind!r}")
        self._platform = platform
        self.n_shards = n_shards
        self.pool_kind = pool_kind
        self.grid = grid
        self.region = region
        self.max_attempts = max_attempts
        self.timeout_s = timeout_s
        self.clock = clock
        # Partition lifecycle lock: _ensure()/close() rotate the shard
        # set, stats, and worker pool together under it.  Execution
        # paths work on the immutable snapshot _ensure() returns, so
        # the lock is never held across a scatter round-trip.
        self._lock = threading.RLock()
        self._shards: list | None = None
        self._stats: list[ShardStats] = []
        self._executor: ScatterGatherExecutor | None = None
        self._fingerprint: tuple | None = None

    # -- shard lifecycle -----------------------------------------------------

    def _current_fingerprint(self) -> tuple:
        """Cheap catalog-freshness token: any upload, annotation,
        keyword, or extraction changes a row count or adds an index."""
        return (
            tuple(sorted(self._platform.db.row_counts().items())),
            tuple(sorted(self._platform.visual_indexes())),
        )

    def _ensure(self) -> tuple[list[ShardStats], ScatterGatherExecutor]:
        """Current ``(stats, executor)`` snapshot, repartitioning when
        the catalog fingerprint moved.  Both are replaced wholesale on
        rotation, so a returned snapshot stays internally consistent
        even if a concurrent call rotates the partition afterwards.

        The partition itself is built with the lock *released*: it is
        slow (index builds) and calls back into platform accessors that
        take the platform's own lock, so pinning this lock across it
        would both stall readers and order the two locks inconsistently
        with the platform's ``close()`` path.  A racing rebuild is
        resolved at install time — first install wins, the loser's
        fresh pool is discarded.
        """
        fingerprint = self._current_fingerprint()
        with self._lock:
            if (
                self._shards is not None
                and self._executor is not None
                and fingerprint == self._fingerprint
            ):
                return self._stats, self._executor
        with obs.span("shard.partition", shards=self.n_shards):
            shards = partition_catalog(
                self._platform, self.n_shards, grid=self.grid, region=self.region
            )
        stats = [handle.stats for handle in shards]
        if self.pool_kind == "inline":
            pool = InlineShardPool(shards)
        else:
            pool = ProcessShardPool(shards)
        executor = ScatterGatherExecutor(
            pool,
            max_attempts=self.max_attempts,
            timeout_s=self.timeout_s,
            clock=self.clock,
        )
        with self._lock:
            if (
                self._shards is not None
                and self._executor is not None
                and fingerprint == self._fingerprint
            ):
                # Lost the install race: keep the winner's partition
                # and tear down the one we just built.
                stale = executor
                stats, executor = self._stats, self._executor
            else:
                stale = self._executor
                self._shards = shards
                self._stats = stats
                self._executor = executor
                self._fingerprint = fingerprint
                _log.info(
                    "partitioned %d images into %d shards (%s pool)",
                    sum(s.n_images for s in stats),
                    self.n_shards,
                    self.pool_kind,
                )
        if stale is not None:
            stale.close()
        return stats, executor

    def close(self) -> None:
        """Release the worker pool and drop the partition."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._shards = None
            self._stats = []
            self._fingerprint = None
        # Pool shutdown can block on worker teardown; do it unlocked.
        if executor is not None:
            executor.close()

    def shard_stats(self) -> list[ShardStats]:
        """Current per-shard planner statistics (partitioning on demand)."""
        stats, _ = self._ensure()
        return list(stats)

    # -- planning helpers ----------------------------------------------------

    def _type_ids_of(self, query: CategoricalQuery) -> tuple:
        """Resolve labels to type ids in label order, exactly as
        ``AnnotationService.images_with_label`` would (same QueryError
        on the first unknown label, same catalog-lookup charges)."""
        return tuple(
            self._platform.catalog.type_id(query.classification, label)
            for label in query.labels
        )

    def _survivor_ids(self, query: object, stats: list, type_ids_of=None) -> list:
        return [
            s.shard_id
            for s in prune_shards(stats, query, type_ids_of or self._type_ids_of)
        ]

    def preview(self, query: object) -> dict:
        """Pruning annotation for EXPLAIN, without executing."""
        stats, _ = self._ensure()
        try:
            considered = len(self._survivor_ids(query, stats))
        except QueryError:
            # Unresolvable query (unknown label, missing extractor):
            # EXPLAIN still renders, with pruning unknown -> none.
            considered = self.n_shards
        return {
            "shards": self.n_shards,
            "shards_considered": considered,
            "shards_pruned": self.n_shards - considered,
        }

    # -- execution -----------------------------------------------------------

    def execute(self, query: object):
        """One query; returns ``(results, info)``."""
        return self.execute_many([query])[0]

    def execute_many(self, queries: list):
        """A batch of queries in one scatter round per shard (plus one
        more for visual fallbacks); returns ``[(results, info), ...]``."""
        stats, executor = self._ensure()
        preps = [self._prepare(query, stats) for query in queries]
        units: list[_Unit] = []
        for prep in preps:
            units.extend(self._collect_units(prep))
        self._scatter_units(units, executor)
        # Phase 2: exact fallback for visual top-k whose global hash
        # candidate pool came up short (the serial fallback decision,
        # made once at the coordinator over summed candidate counts).
        fallback_units: list[_Unit] = []
        for prep in preps:
            fallback_units.extend(self._plan_fallbacks(prep))
        if fallback_units:
            self._scatter_units(fallback_units, executor)
        out = []
        for query, prep in zip(queries, preps):
            results = self._merge(prep, stats)
            lost = sorted(self._lost_shards(prep))
            info = {
                "shards_considered": prep["considered"],
                "shards_pruned": self.n_shards - prep["considered"],
                "partial": bool(lost),
                "failed_shards": lost,
            }
            _PRUNED.inc(info["shards_pruned"])
            if lost:
                _PARTIAL.inc()
                _log.warning(
                    "query degraded to partial results; lost shards %s", lost
                )
            out.append((results, info))
        return out

    def _scatter_units(self, units: list, executor: ScatterGatherExecutor) -> None:
        batches: dict[int, list] = {}
        placements: dict[int, list] = {}
        for unit in units:
            for shard_id in unit.shard_ids:
                batches.setdefault(shard_id, []).append(unit.task)
                placements.setdefault(shard_id, []).append(unit)
        if not batches:
            return
        with obs.span("shard.scatter", shards=len(batches), tasks=len(units)) as sp:
            gathered = executor.scatter(batches)
            sp.set("failed", len(gathered.failed))
        _FANOUTS.inc(len(batches))
        executor.absorb(gathered)
        for shard_id, placed in placements.items():
            result = gathered.results.get(shard_id)
            if result is None:
                for unit in placed:
                    unit.lost.append(shard_id)
                continue
            for unit, payload in zip(placed, result.payloads):
                unit.payloads[shard_id] = payload

    # -- per-family preparation ---------------------------------------------

    def _prepare(self, query: object, stats: list) -> dict:
        if isinstance(query, SpatialQuery):
            survivors = self._survivor_ids(query, stats)
            return {
                "kind": "ids",
                "considered": len(survivors),
                "unit": _Unit(ShardTask("spatial", {"query": query}), survivors),
            }
        if isinstance(query, TemporalQuery):
            survivors = self._survivor_ids(query, stats)
            return {
                "kind": "ids",
                "considered": len(survivors),
                "unit": _Unit(ShardTask("temporal", {"query": query}), survivors),
            }
        if isinstance(query, CategoricalQuery):
            type_ids = self._type_ids_of(query)
            survivors = self._survivor_ids(query, stats, type_ids_of=lambda q: type_ids)
            task = ShardTask(
                "categorical",
                {
                    "type_ids": type_ids,
                    "min_confidence": query.min_confidence,
                    "source": query.source,
                },
            )
            return {
                "kind": "categorical",
                "considered": len(survivors),
                "unit": _Unit(task, survivors),
            }
        if isinstance(query, TextualQuery):
            terms = sorted(set(tokenize(query.text)))
            survivors = self._survivor_ids(query, stats) if terms else []
            return {
                "kind": "textual",
                "terms": terms,
                "match": query.match,
                "considered": len(survivors),
                "unit": _Unit(ShardTask("textual", {"terms": terms}), survivors),
            }
        if isinstance(query, VisualQuery):
            vector = self._visual_vector(query, self._platform.visual_indexes())
            survivors = self._survivor_ids(query, stats)
            if query.max_distance is not None:
                task = ShardTask(
                    "visual_radius",
                    {
                        "extractor": query.extractor_name,
                        "vector": vector,
                        "radius": query.max_distance,
                        "k": query.k,
                    },
                )
                return {
                    "kind": "ranked_pairs",
                    "k": query.k,
                    "max_distance": None,
                    "considered": len(survivors),
                    "unit": _Unit(task, survivors),
                }
            task = ShardTask(
                "visual_topk",
                {
                    "extractor": query.extractor_name,
                    "vector": vector,
                    "k": query.k,
                },
            )
            return {
                "kind": "visual_topk",
                "extractor": query.extractor_name,
                "vector": vector,
                "k": query.k,
                "considered": len(survivors),
                "unit": _Unit(task, survivors),
                "fallback_unit": None,
            }
        if isinstance(query, HybridQuery):
            parts = list(query.queries)
            if len(parts) == 2:
                spatial = next((q for q in parts if isinstance(q, SpatialQuery)), None)
                visual = next((q for q in parts if isinstance(q, VisualQuery)), None)
                if spatial is not None and visual is not None:
                    vector = self._visual_vector(
                        visual, self._platform.hybrid_indexes()
                    )
                    survivors = self._survivor_ids(query, stats)
                    task = ShardTask(
                        "hybrid_fused",
                        {
                            "extractor": visual.extractor_name,
                            "region": spatial.bounding_region(),
                            "vector": vector,
                            "k": visual.k,
                        },
                    )
                    return {
                        "kind": "ranked_pairs",
                        "k": visual.k,
                        "max_distance": visual.max_distance,
                        "considered": len(survivors),
                        "unit": _Unit(task, survivors),
                    }
            # General hybrids scatter each part stand-alone (per-part
            # pruning only — top-k parts are order-sensitive to their
            # full candidate pool) and intersect at the coordinator.
            part_preps = [self._prepare(sub, stats) for sub in parts]
            considered = len(
                set().union(*(set(p["unit"].shard_ids) for p in part_preps))
                if part_preps
                else set()
            )
            return {
                "kind": "hybrid_general",
                "parts": part_preps,
                "considered": considered,
            }
        raise QueryError(f"unsupported query type {type(query).__name__}")

    def _visual_vector(self, query: VisualQuery, indexes: dict) -> np.ndarray:
        """Serial-parity extractor check + vector extraction + charge."""
        if query.extractor_name not in indexes:
            raise QueryError(
                f"no features extracted yet for {query.extractor_name!r}; "
                "call extract_features first"
            )
        vector = query.vector
        if vector is None:
            vector = self._platform.features.get(query.extractor_name).extract(
                query.example
            )
        vector = np.asarray(vector, dtype=np.float64)
        charge("feature_bytes", vector.nbytes)
        return vector

    def _collect_units(self, prep: dict) -> list:
        if prep["kind"] == "hybrid_general":
            out: list = []
            for part in prep["parts"]:
                out.extend(self._collect_units(part))
            return out
        return [prep["unit"]]

    def _plan_fallbacks(self, prep: dict) -> list:
        """Build phase-2 linear-scan units for starved visual top-ks."""
        if prep["kind"] == "hybrid_general":
            out: list = []
            for part in prep["parts"]:
                out.extend(self._plan_fallbacks(part))
            return out
        if prep["kind"] != "visual_topk":
            return []
        unit = prep["unit"]
        total_candidates = sum(
            payload["candidates"] for payload in unit.payloads.values()
        )
        if total_candidates >= prep["k"] or not unit.shard_ids:
            return []
        fallback = _Unit(
            ShardTask(
                "visual_linear",
                {
                    "extractor": prep["extractor"],
                    "vector": prep["vector"],
                    "k": prep["k"],
                },
            ),
            unit.shard_ids,
        )
        prep["fallback_unit"] = fallback
        return [fallback]

    def _lost_shards(self, prep: dict) -> set:
        if prep["kind"] == "hybrid_general":
            lost: set = set()
            for part in prep["parts"]:
                lost |= self._lost_shards(part)
            return lost
        lost = set(prep["unit"].lost)
        fallback = prep.get("fallback_unit")
        if fallback is not None:
            lost |= set(fallback.lost)
        return lost

    # -- per-family merges ---------------------------------------------------

    def _merge(self, prep: dict, stats: list) -> list:
        kind = prep["kind"]
        if kind == "ids":
            ids: set = set()
            for payload in prep["unit"].ordered_payloads():
                ids.update(payload)
            return [QueryResult(image_id=i) for i in sorted(ids)]
        if kind == "categorical":
            best: dict = {}
            for payload in prep["unit"].ordered_payloads():
                for image_id, confidence in payload.items():
                    best[image_id] = max(best.get(image_id, 0.0), confidence)
            return [
                QueryResult(image_id=image_id, score=confidence)
                for image_id, confidence in sorted(best.items())
            ]
        if kind == "textual":
            return self._merge_textual(prep, stats)
        if kind == "ranked_pairs":
            pairs = self._merge_pairs(
                [p for p in prep["unit"].ordered_payloads()], prep["k"]
            )
            if prep["max_distance"] is not None:
                pairs = [(i, d) for i, d in pairs if d <= prep["max_distance"]]
            return [
                QueryResult(image_id=item, score=1.0 / (1.0 + distance))
                for item, distance in pairs
            ]
        if kind == "visual_topk":
            fallback = prep.get("fallback_unit")
            if fallback is not None:
                payloads = fallback.ordered_payloads()
            else:
                payloads = [
                    payload["pairs"]
                    for payload in prep["unit"].ordered_payloads()
                ]
            pairs = self._merge_pairs(payloads, prep["k"])
            return [
                QueryResult(image_id=item, score=1.0 / (1.0 + distance))
                for item, distance in pairs
            ]
        if kind == "hybrid_general":
            result_sets = [self._merge(part, stats) for part in prep["parts"]]
            return combine_hybrid(result_sets)
        raise ShardError(f"unknown merge kind {kind!r}")

    @staticmethod
    def _merge_pairs(payloads: list, k: int) -> list:
        """k best ``(item, distance)`` pairs across shards under the
        canonical total order — the heap-merge of ranked families."""
        merged = [pair for payload in payloads for pair in payload]
        merged.sort(key=lambda pair: (pair[1], tie_key(pair[0])))
        return merged[:k]

    def _merge_textual(self, prep: dict, stats: list) -> list:
        """Global tf-idf at the coordinator.

        ``N`` and per-term document frequencies are summed over **all**
        shards — pruned ones included — from the partition-time stats,
        so pruning never shifts idf.  Per-document score accumulation
        runs in sorted-term order, the exact float-addition sequence of
        the serial index, making merged scores bit-identical.
        """
        terms = prep["terms"]
        if not terms:
            return []
        total_docs = sum(s.text_docs for s in stats)
        scores: dict = {}
        payloads = prep["unit"].ordered_payloads()
        for term in terms:
            df = sum(s.term_dfs.get(term, 0) for s in stats)
            if df == 0:
                continue
            idf = math.log(1.0 + total_docs / df)
            for payload in payloads:
                for doc, tf, length in payload["postings"].get(term, ()):
                    scores[doc] = scores.get(doc, 0.0) + (tf / length) * idf
        if prep["match"] == "all":
            per_term: list[set] = []
            for term in terms:
                docs: set = set()
                for payload in payloads:
                    docs.update(
                        doc for doc, _, _ in payload["postings"].get(term, ())
                    )
                per_term.append(docs)
            common = set.intersection(*per_term) if per_term else set()
            scores = {doc: s for doc, s in scores.items() if doc in common}
        return canonical_ranked(
            [QueryResult(image_id=doc, score=score) for doc, score in scores.items()]
        )
