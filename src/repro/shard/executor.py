"""Scatter-gather execution over shard worker pools.

Two pool flavours share one protocol (``submit`` a batch of tasks for a
shard, ``fetch`` the :class:`WorkerResult`):

* :class:`ProcessShardPool` — a ``multiprocessing`` pool whose workers
  are seeded with **pickled** shard handles (the pickle round-trip is
  explicit even under fork, so the process boundary the picklability
  pass guards is exercised on every run, not just on spawn platforms).
  Workers ship back results *plus* their observability state — counter
  records, histogram states, ledger charges — which the coordinator
  merges with the manifest-declared strategies (Counter sum, Histogram
  bucket-sum, ledger charge-sum).
* :class:`InlineShardPool` — same protocol in-process, for
  deterministic tests and for single-core machines where fork overhead
  would swamp the work; counters land directly in the coordinator
  registry, only charges travel in the result.

:class:`ScatterGatherExecutor` drives the fan-out with retries
(``repro.resilience.Retry`` at site ``shard.dispatch``): a worker death
rebuilds the pool and resubmits; a shard that fails every attempt is
reported in :attr:`GatherResult.failed` so the router can degrade to a
``partial=True`` answer instead of hanging or erroring.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
import threading
from dataclasses import dataclass, field

from repro import obs
from repro.errors import RetryBudgetExceeded, ShardError
from repro.obs import accounting
from repro.resilience import Retry
from repro.resilience import faults as _faults
from repro.resilience.clock import Clock
from repro.resilience.policies import DEFAULT_TRANSIENT
from repro.shard.partition import ShardHandle
from repro.shard.plans import ShardTask, run_task

_log = obs.get_logger("shard.executor")

#: What a dispatch retry treats as transient: the usual transients plus
#: a broken worker pool (rebuilt on resubmit) and typed shard failures.
DISPATCH_RETRYABLE: tuple[type[BaseException], ...] = DEFAULT_TRANSIENT + (
    concurrent.futures.BrokenExecutor,
    ShardError,
)


@dataclass(frozen=True)
class WorkerResult:
    """One shard batch's payloads plus the worker's shipped obs state."""

    shard_id: int
    payloads: list
    counters: list = field(default_factory=list)
    histograms: list = field(default_factory=list)
    charges: dict = field(default_factory=dict)


@dataclass(frozen=True)
class GatherResult:
    """Merged outcome of one scatter round."""

    results: dict
    failed: tuple = ()

    @property
    def partial(self) -> bool:
        """True when at least one shard failed every dispatch attempt."""
        return bool(self.failed)


# Per-worker-process shard table, installed by the pool initializer.
# Worker-local by construction: each pool process gets its own copy via
# the pickled payload, and the coordinator never reads it.
_worker_shards: dict[int, ShardHandle] = {}


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle the shard handles into this worker."""
    _worker_shards.clear()  # devtools: allow[module-mutable-state] worker-local, set once by the pool initializer
    _worker_shards.update(pickle.loads(payload))  # devtools: allow[module-mutable-state] worker-local, set once by the pool initializer


def _run_batch(handle: ShardHandle, tasks: list[ShardTask]) -> WorkerResult:
    """Run one shard's task batch under a fresh ledger; used by both
    pool flavours (the process pool adds registry shipping on top)."""
    payloads = []
    with accounting.ledger_scope() as ledger:
        for task in tasks:
            payloads.append(run_task(handle, task))
    return WorkerResult(
        shard_id=handle.shard_id, payloads=payloads, charges=dict(ledger.charges)
    )


def _worker_batch(shard_id: int, tasks: list[ShardTask]) -> WorkerResult:
    """Process-pool entry point: run a batch and ship obs deltas.

    The worker registry is reset at batch start, so its cumulative
    state at batch end *is* the delta this batch produced — no
    before/after subtraction races.
    """
    handle = _worker_shards.get(shard_id)
    if handle is None:
        raise ShardError(f"worker holds no shard {shard_id}")
    registry = obs.metrics()
    obs.reset()
    with obs.span("shard.worker", shard=shard_id, tasks=len(tasks)):
        result = _run_batch(handle, tasks)
    return WorkerResult(
        shard_id=result.shard_id,
        payloads=result.payloads,
        counters=registry.counter_records(),
        histograms=registry.histogram_records(),
        charges=result.charges,
    )


class InlineShardPool:
    """In-process pool: deterministic, fault-injectable, zero IPC."""

    #: Counters/histograms land directly in the coordinator registry,
    #: so :meth:`ScatterGatherExecutor.absorb` must not merge them twice.
    shares_process = True

    def __init__(self, shards: list[ShardHandle]) -> None:
        self._shards = {handle.shard_id: handle for handle in shards}

    def submit(self, shard_id: int, tasks: list[ShardTask]) -> tuple:
        if shard_id not in self._shards:
            raise ShardError(f"pool holds no shard {shard_id}")
        return (shard_id, list(tasks))

    def fetch(self, ticket: tuple, timeout_s: float) -> WorkerResult:
        shard_id, tasks = ticket
        _faults.inject("shard.worker")
        with obs.span("shard.worker", shard=shard_id, tasks=len(tasks)):
            return _run_batch(self._shards[shard_id], tasks)

    def close(self) -> None:
        """Nothing to release; present for protocol symmetry."""


class ProcessShardPool:
    """Worker processes primed with pickled shard handles.

    The pool is built lazily and torn down whenever a fetch surfaces a
    broken executor, so the next (retried) submit transparently rebuilds
    it with fresh workers — worker death costs one retry, not the run.
    """

    shares_process = False

    def __init__(self, shards: list[ShardHandle], max_workers: int | None = None) -> None:
        if not shards:
            raise ShardError("process pool needs at least one shard")
        self._payload = pickle.dumps({h.shard_id: h for h in shards})
        self._shard_ids = {h.shard_id for h in shards}
        cpu = os.cpu_count() or 1
        self._max_workers = max_workers or max(1, min(len(shards), cpu))
        # Guards the lazy pool build and teardown: two concurrent
        # submits must not each spawn a pool and leak one of them.
        self._lock = threading.Lock()
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    def _ensure(self) -> concurrent.futures.ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self._max_workers,
                    mp_context=multiprocessing.get_context("fork"),
                    initializer=_init_worker,
                    initargs=(self._payload,),
                )
            return self._pool

    def submit(self, shard_id: int, tasks: list[ShardTask]):
        if shard_id not in self._shard_ids:
            raise ShardError(f"pool holds no shard {shard_id}")
        return self._ensure().submit(_worker_batch, shard_id, list(tasks))

    def fetch(self, future, timeout_s: float) -> WorkerResult:
        try:
            return future.result(timeout=timeout_s)
        except concurrent.futures.BrokenExecutor:
            # A dead worker poisons the whole executor; drop it so the
            # retried submit builds a fresh one.
            self.close()
            raise

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None


class ScatterGatherExecutor:
    """Dispatch per-shard batches with retries; gather what survives."""

    def __init__(
        self,
        pool,
        max_attempts: int = 3,
        timeout_s: float = 30.0,
        clock: Clock | None = None,
    ) -> None:
        self._pool = pool
        self._max_attempts = max_attempts
        self._timeout_s = timeout_s
        self._clock = clock

    def scatter(self, batches: dict) -> GatherResult:
        """Run ``{shard_id: [tasks]}``, one retried dispatch per shard.

        Shards run in ascending id order (determinism) and a shard that
        exhausts its retries lands in ``failed`` rather than raising —
        degraded answers beat no answers for a read-only query tier.
        """
        results: dict[int, WorkerResult] = {}
        failed: list[int] = []
        for shard_id in sorted(batches):
            tasks = batches[shard_id]

            def attempt(shard_id: int = shard_id, tasks: list = tasks) -> WorkerResult:
                _faults.inject("shard.dispatch", self._clock)
                ticket = self._pool.submit(shard_id, tasks)
                return self._pool.fetch(ticket, self._timeout_s)

            retry = Retry(
                max_attempts=self._max_attempts,
                site="shard.dispatch",
                retry_on=DISPATCH_RETRYABLE,
                clock=self._clock,
            )
            try:
                # Deliberately blocking on the request path: the retry
                # backoff is budget-bounded and fetch() carries its own
                # timeout, so a handler can wait at most the dispatch
                # budget, never indefinitely.
                results[shard_id] = retry.call(attempt)  # devtools: allow[blocking-in-handler]
            except DISPATCH_RETRYABLE + (RetryBudgetExceeded,) as exc:
                _log.warning("shard %d failed all attempts: %s", shard_id, exc)
                failed.append(shard_id)
        return GatherResult(results=results, failed=tuple(failed))

    def absorb(self, gathered: GatherResult) -> None:
        """Merge shipped worker obs state into this process.

        Counter records sum into the coordinator registry and histogram
        states bucket-sum (process pools only — inline workers already
        wrote the registry directly); ledger charges replay through
        :func:`repro.obs.accounting.charge` for both pool flavours, so
        the enclosing query ledger bills shard work exactly once.
        """
        registry = obs.metrics()
        for shard_id in sorted(gathered.results):
            result = gathered.results[shard_id]
            if not self._pool.shares_process:
                registry.merge_counter_records(result.counters)
                registry.merge_histogram_records(result.histograms)
            for kind in sorted(result.charges):
                accounting.charge(kind, result.charges[kind])

    def close(self) -> None:
        self._pool.close()
