"""Per-shard physical plans.

A :class:`ShardTask` is the unit the coordinator ships to a worker: an
op name plus a spec dict (query objects and resolved parameters —
everything picklable).  :func:`run_task` executes one task against one
:class:`~repro.shard.partition.ShardHandle`, mirroring the platform's
serial runners *exactly* over the shard's slice; the router merges the
per-shard payloads back into the serial answer.

Ranked ops return raw ``(item, distance)`` pairs or postings rather
than scored results: scoring and tie-breaking happen once, at the
coordinator, with the same float-operation order as serial execution —
that is what keeps merged scores bit-identical.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.queries import SpatialQuery, TemporalQuery
from repro.errors import ShardError
from repro.geo.point import GeoPoint
from repro.shard.partition import ShardHandle


@dataclass(frozen=True)
class ShardTask:
    """One physical-plan step to run on one shard."""

    op: str
    spec: dict = field(default_factory=dict)


def _run_spatial(handle: ShardHandle, query: SpatialQuery) -> list:
    region = query.bounding_region()
    if query.mode == "scene":
        if query.point is not None and query.radius_m == 0.0:
            hits = handle.spatial.search_point(
                query.point.lat,
                query.point.lng,
                direction_deg=query.direction_deg,
                tolerance_deg=query.direction_tolerance_deg,
            )
        else:
            hits = handle.spatial.search_range(
                region,
                direction_deg=query.direction_deg,
                tolerance_deg=query.direction_tolerance_deg,
            )
    else:
        hits = []
        for image_id in handle.spatial.search_range(
            region,
            direction_deg=query.direction_deg,
            tolerance_deg=query.direction_tolerance_deg,
        ):
            row = handle.db.table("images").get(image_id)
            if region.contains_point(GeoPoint(row["lat"], row["lng"])):
                hits.append(image_id)
    return sorted(hits)


def _run_temporal(handle: ShardHandle, query: TemporalQuery) -> list:
    lo = query.start if query.start is not None else -np.inf
    hi = query.end if query.end is not None else np.inf
    rows = handle.db.table("images").scan(lambda row: lo <= row[query.field] <= hi)
    return sorted(row["image_id"] for row in rows)


def _run_categorical(handle: ShardHandle, spec: dict) -> dict:
    """Mirror of ``AnnotationService.images_with_label`` over resolved
    type ids (the coordinator resolves labels; shards must not depend on
    catalog name lookups at query time)."""
    out: dict = {}
    table = handle.db.table("image_content_annotation")
    for type_id in spec["type_ids"]:
        for row in table.find("type_id", type_id):
            if row["confidence"] < spec["min_confidence"]:
                continue
            if spec["source"] is not None and row["source"] != spec["source"]:
                continue
            image_id = row["image_id"]
            out[image_id] = max(out.get(image_id, 0.0), row["confidence"])
    return out


def _run_probe(spec: dict) -> str:
    """Chaos hook: die hard unless a flag file exists (then create it),
    so a seeded worker-death scenario kills exactly one attempt."""
    flag = spec.get("exit_unless")
    if flag is not None and not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8") as handle_:
            handle_.write("died-once")
        os._exit(int(spec.get("exit_code", 23)))
    return "ok"


def run_task(handle: ShardHandle, task: ShardTask) -> object:
    """Execute one task against one shard; returns its payload."""
    spec = task.spec
    if task.op == "spatial":
        return _run_spatial(handle, spec["query"])
    if task.op == "temporal":
        return _run_temporal(handle, spec["query"])
    if task.op == "categorical":
        return _run_categorical(handle, spec)
    if task.op == "textual":
        return {"postings": handle.text.postings_for(spec["terms"])}
    if task.op == "visual_topk":
        pairs, candidates = handle.lsh[spec["extractor"]].topk_with_stats(
            spec["vector"], spec["k"]
        )
        return {"pairs": pairs, "candidates": candidates}
    if task.op == "visual_linear":
        return handle.lsh[spec["extractor"]].linear_topk(spec["vector"], spec["k"])
    if task.op == "visual_radius":
        return handle.lsh[spec["extractor"]].query_radius(
            spec["vector"], spec["radius"]
        )[: spec["k"]]
    if task.op == "hybrid_fused":
        return handle.hybrid[spec["extractor"]].spatial_visual_knn(
            spec["region"], spec["vector"], spec["k"]
        )
    if task.op == "probe":
        return _run_probe(spec)
    raise ShardError(f"unknown shard op {task.op!r}")
