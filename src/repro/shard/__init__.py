"""Scale-out query execution: geo-tile sharded catalog, scatter-gather.

The paper pitches TVDP as a city-scale platform; one process cannot
hold a city.  This package partitions the catalog by geo-tile into N
self-contained shard handles (:mod:`repro.shard.partition`), prunes
shards per query with the planner's :class:`~repro.core.planner.ShardStats`
predicates, scatters per-shard physical plans over a worker pool
(:mod:`repro.shard.executor`), and merges at the coordinator
(:mod:`repro.shard.router`) — with merged results **exactly equal** to
serial execution, an invariant the property harness in ``tests/shard``
proves per query family.  See ``docs/sharding.md`` for the partitioning
scheme, the per-family merge strategies, and the equivalence argument.
"""

from repro.shard.executor import (
    GatherResult,
    InlineShardPool,
    ProcessShardPool,
    ScatterGatherExecutor,
    WorkerResult,
)
from repro.shard.partition import ShardHandle, partition_catalog
from repro.shard.plans import ShardTask, run_task
from repro.shard.router import ShardRouter

__all__ = [
    "GatherResult",
    "InlineShardPool",
    "ProcessShardPool",
    "ScatterGatherExecutor",
    "ShardHandle",
    "ShardRouter",
    "ShardTask",
    "WorkerResult",
    "partition_catalog",
    "run_task",
]
