"""Geo-tile catalog partitioning.

A shard is a *vertical slice of the whole platform*: its own relational
database holding exactly the rows for its images, plus its own
Oriented R-tree, inverted index, LSH tables, and Visual R-tree built
over that slice.  Shards are assigned by geo-tile — the uniform lattice
of :class:`repro.index.grid.GridIndex` over camera points — so spatial
queries tend to touch few shards and the planner can prune the rest.

Invariants the equivalence proof (``docs/sharding.md``) rests on:

* **Disjoint cover** — every image lands in exactly one shard
  (out-of-region cameras go to shard 0 via the grid's overflow bucket),
  so enumeration merges are disjoint unions.
* **Preserved ids** — shard tables keep the coordinator's primary keys,
  so a shard's answer rows are the coordinator's answer rows.
* **Identical hash functions** — per-shard LSH indexes are
  :meth:`~repro.index.lsh.LSHIndex.clone_empty` clones of the parent,
  so per-shard candidate sets *partition* the serial candidate set.
* **Insertion-order parity** — indexes are rebuilt in ascending image
  id, the platform's upload order, so tree shapes are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.planner import ShardStats
from repro.core.platform import TVDP
from repro.db.database import Database
from repro.geo.fov import FieldOfView
from repro.geo.point import BoundingBox, GeoPoint
from repro.index.grid import GridIndex
from repro.index.hybrid import VisualRTree
from repro.index.inverted import InvertedIndex
from repro.index.lsh import LSHIndex
from repro.index.oriented_rtree import OrientedRTree

#: Tables replicated whole into every shard (tiny, read-mostly, FK
#: targets of the sliced tables).
_REPLICATED_TABLES = ("users", "videos")

#: Tables sliced by ``image_id`` into the owning shard, in FK order.
_SLICED_TABLES = (
    "images",
    "image_fov",
    "image_scene_location",
    "image_visual_features",
    "image_manual_keywords",
    "image_content_annotation",
)


@dataclass
class ShardHandle:
    """One shard's database and index suite — the picklable unit that
    crosses the worker-process boundary."""

    shard_id: int
    n_shards: int
    db: Database
    spatial: OrientedRTree
    text: InvertedIndex
    lsh: dict
    hybrid: dict
    stats: ShardStats


#: Degenerate-extent pad: a catalog whose cameras all share one
#: latitude (or longitude) still needs a grid with nonzero cell sizes.
_MIN_EXTENT_DEG = 1e-6


def _data_region(platform: TVDP) -> BoundingBox | None:
    """Tightest box around every camera point, ``None`` when empty."""
    points = [
        GeoPoint(row["lat"], row["lng"])
        for row in platform.db.table("images").all_rows()
    ]
    if not points:
        return None
    box = BoundingBox.from_points(points)
    if box.max_lat - box.min_lat < _MIN_EXTENT_DEG:
        box = BoundingBox(
            box.min_lat - _MIN_EXTENT_DEG,
            box.min_lng,
            box.max_lat + _MIN_EXTENT_DEG,
            box.max_lng,
        )
    if box.max_lng - box.min_lng < _MIN_EXTENT_DEG:
        box = BoundingBox(
            box.min_lat,
            box.min_lng - _MIN_EXTENT_DEG,
            box.max_lat,
            box.max_lng + _MIN_EXTENT_DEG,
        )
    return box


def _assign_shards(
    platform: TVDP,
    n_shards: int,
    grid: tuple[int, int],
    region: BoundingBox | None,
) -> dict[int, list[int]]:
    """image ids per shard (ascending), via contiguous geo-tile runs.

    Occupied cells are walked in row-major order and chunked into
    ``n_shards`` runs balanced by cumulative image count.  Whole cells
    stay together and runs are spatially contiguous, so both a tight
    spatial query and anything *correlated* with geography (timestamps:
    districts come online in waves; vocabulary: per-district tags)
    concentrates in few shards — exactly what the planner's min/max
    pruning statistics can exploit.  Round-robin dealing would balance
    equally well but smear every correlated attribute across all
    shards, making ``ShardStats`` ranges vacuous.
    Out-of-region cameras join shard 0 — data never silently drops.
    """
    if region is None:
        region = _data_region(platform)
    rows, cols = grid
    assignment: dict[int, list[int]] = {s: [] for s in range(n_shards)}
    if region is None:
        return assignment
    tile_index = GridIndex(region, rows=rows, cols=cols)
    for row in platform.db.table("images").all_rows():
        tile_index.insert(row["image_id"], GeoPoint(row["lat"], row["lng"]))
    cells = sorted(tile_index.cell_items().items())
    total = sum(len(bucket) for _, bucket in cells)
    assigned = 0
    shard = 0
    for _, bucket in cells:
        while shard < n_shards - 1 and assigned >= (shard + 1) * total / n_shards:
            shard += 1
        assignment[shard].extend(image_id for image_id, _ in bucket)
        assigned += len(bucket)
    assignment[0].extend(image_id for image_id, _ in tile_index.overflow_items())
    return {shard: sorted(ids) for shard, ids in assignment.items()}


def _slice_database(platform: TVDP, image_ids: set[int]) -> Database:
    """A fresh TVDP database holding the replicated tables plus every
    per-image row for ``image_ids``, primary keys preserved."""
    db = Database.tvdp()
    for table_name in _REPLICATED_TABLES:
        for row in platform.db.table(table_name).all_rows():
            db.insert(table_name, dict(row))
    platform.catalog.replicate_into(db)
    for table_name in _SLICED_TABLES:
        for row in platform.db.table(table_name).all_rows():
            if row["image_id"] in image_ids:
                db.insert(table_name, dict(row))
    return db


def _build_indexes(
    platform: TVDP, db: Database, image_ids: list[int]
) -> tuple[OrientedRTree, InvertedIndex, dict, dict]:
    """Rebuild the shard's index suite in ascending image-id order."""
    spatial = OrientedRTree()
    text = InvertedIndex()
    fov_rows = {
        row["image_id"]: row for row in db.table("image_fov").all_rows()
    }
    keywords: dict[int, list[str]] = {}
    for row in db.table("image_manual_keywords").all_rows():
        keywords.setdefault(row["image_id"], []).append(row["keyword"])
    images = db.table("images")
    for image_id in image_ids:
        fov_row = fov_rows.get(image_id)
        if fov_row is not None:
            image_row = images.get(image_id)
            spatial.insert(
                image_id,
                FieldOfView(
                    camera=GeoPoint(image_row["lat"], image_row["lng"]),
                    direction_deg=fov_row["direction_deg"],
                    angle_deg=fov_row["angle_deg"],
                    range_m=fov_row["range_m"],
                ),
            )
        words = keywords.get(image_id)
        if words:
            # Same document text as upload time: keywords joined in
            # insertion (= primary key) order.
            text.add(image_id, " ".join(words))
    vectors: dict[str, dict[int, np.ndarray]] = {}
    for row in db.table("image_visual_features").all_rows():
        vectors.setdefault(row["extractor_name"], {})[row["image_id"]] = np.array(
            row["vector"], dtype=np.float64
        )
    lsh: dict[str, LSHIndex] = {}
    hybrid: dict[str, VisualRTree] = {}
    for extractor_name, source in sorted(platform.visual_indexes().items()):
        shard_lsh = source.clone_empty()
        shard_hybrid = VisualRTree(
            dimension=source.dimension,
            max_entries=platform.hybrid_indexes()[extractor_name].max_entries,
        )
        for image_id in image_ids:
            vector = vectors.get(extractor_name, {}).get(image_id)
            if vector is None:
                continue
            image_row = images.get(image_id)
            shard_lsh.insert(image_id, vector)
            shard_hybrid.insert(
                image_id, GeoPoint(image_row["lat"], image_row["lng"]), vector
            )
        lsh[extractor_name] = shard_lsh
        hybrid[extractor_name] = shard_hybrid
    return spatial, text, lsh, hybrid


def _shard_stats(
    shard_id: int,
    db: Database,
    text: InvertedIndex,
    lsh: dict,
    image_ids: list[int],
) -> ShardStats:
    """Pruning statistics over one shard's slice (see
    :class:`repro.core.planner.ShardStats` for the soundness notes)."""
    bounds: BoundingBox | None = None
    time_mins: dict[str, float] = {}
    time_maxs: dict[str, float] = {}
    for row in db.table("images").all_rows():
        # Camera-point box: augmented images have no FOV row but still
        # carry a camera point, and camera-mode spatial queries (plus
        # the hybrid index) match on camera points.
        point_box = BoundingBox(row["lat"], row["lng"], row["lat"], row["lng"])
        bounds = point_box if bounds is None else bounds.union(point_box)
        for field in ("timestamp_capturing", "timestamp_uploading"):
            value = row[field]
            if field not in time_mins or value < time_mins[field]:
                time_mins[field] = value
            if field not in time_maxs or value > time_maxs[field]:
                time_maxs[field] = value
    annotation_types: dict[int, int] = {}
    for row in db.table("image_content_annotation").all_rows():
        annotation_types[row["type_id"]] = annotation_types.get(row["type_id"], 0) + 1
    return ShardStats(
        shard_id=shard_id,
        n_images=len(image_ids),
        bounds=bounds,
        text_docs=text.doc_count(),
        term_dfs=text.term_dfs(),
        time_ranges={
            field: (time_mins[field], time_maxs[field]) for field in time_mins
        },
        annotation_types=annotation_types,
        extractors=tuple(sorted(name for name, index in lsh.items() if len(index))),
    )


def partition_catalog(
    platform: TVDP,
    n_shards: int,
    grid: tuple[int, int] = (8, 8),
    region: BoundingBox | None = None,
) -> list[ShardHandle]:
    """Partition ``platform``'s catalog into ``n_shards`` shard handles.

    ``region`` defaults to the tight bounding box of the data (so every
    tile is populated ground, not empty city); pass one explicitly to
    pin tiles to a fixed lattice.  Empty shards are still returned —
    the planner prunes them for free via ``n_images == 0``.
    """
    assignment = _assign_shards(platform, n_shards, grid, region)
    handles: list[ShardHandle] = []
    for shard_id in range(n_shards):
        image_ids = assignment.get(shard_id, [])
        db = _slice_database(platform, set(image_ids))
        spatial, text, lsh, hybrid = _build_indexes(platform, db, image_ids)
        stats = _shard_stats(shard_id, db, text, lsh, image_ids)
        if stats.bounds is not None and spatial.bounds() is not None:
            stats = ShardStats(
                shard_id=stats.shard_id,
                n_images=stats.n_images,
                bounds=stats.bounds.union(spatial.bounds()),
                text_docs=stats.text_docs,
                term_dfs=stats.term_dfs,
                time_ranges=stats.time_ranges,
                annotation_types=stats.annotation_types,
                extractors=stats.extractors,
            )
        handles.append(
            ShardHandle(
                shard_id=shard_id,
                n_shards=n_shards,
                db=db,
                spatial=spatial,
                text=text,
                lsh=lsh,
                hybrid=hybrid,
                stats=stats,
            )
        )
    return handles
