"""Synthetic road networks and routing.

LASAN trucks don't drive in straight lines — they follow streets.  This
module builds a jittered Manhattan-style street graph over a region
(networkx), routes shortest paths on it, and emits the waypoint
sequences the video simulator drives along.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.errors import GeoError
from repro.geo.geodesy import haversine_m, initial_bearing_deg
from repro.geo.point import BoundingBox, GeoPoint


@dataclass(frozen=True)
class RoadNetwork:
    """A street graph: nodes are intersections, edges are street
    segments weighted by their length in meters."""

    region: BoundingBox
    graph: nx.Graph = field(compare=False)

    @classmethod
    def manhattan(
        cls,
        region: BoundingBox,
        rows: int = 8,
        cols: int = 8,
        jitter: float = 0.15,
        drop_rate: float = 0.05,
        seed: int = 0,
    ) -> "RoadNetwork":
        """A rows x cols street grid with jittered intersections and a
        few randomly closed segments, kept connected.

        ``jitter`` is the intersection displacement as a fraction of the
        cell size; ``drop_rate`` is the fraction of segments removed
        (construction, dead ends) — removals that would disconnect the
        network are skipped.
        """
        if rows < 2 or cols < 2:
            raise GeoError(f"network needs at least a 2x2 grid, got {rows}x{cols}")
        if not (0.0 <= jitter < 0.5):
            raise GeoError(f"jitter must be in [0, 0.5), got {jitter}")
        if not (0.0 <= drop_rate < 1.0):
            raise GeoError(f"drop_rate must be in [0, 1), got {drop_rate}")
        rng = np.random.default_rng(seed)
        dlat = (region.max_lat - region.min_lat) / (rows - 1)
        dlng = (region.max_lng - region.min_lng) / (cols - 1)
        graph = nx.Graph()
        for r in range(rows):
            for c in range(cols):
                lat = region.min_lat + r * dlat + float(rng.uniform(-jitter, jitter)) * dlat
                lng = region.min_lng + c * dlng + float(rng.uniform(-jitter, jitter)) * dlng
                lat = min(max(lat, region.min_lat), region.max_lat)
                lng = min(max(lng, region.min_lng), region.max_lng)
                graph.add_node((r, c), point=GeoPoint(lat, lng))
        for r in range(rows):
            for c in range(cols):
                for dr, dc in ((0, 1), (1, 0)):
                    rr, cc = r + dr, c + dc
                    if rr < rows and cc < cols:
                        a = graph.nodes[(r, c)]["point"]
                        b = graph.nodes[(rr, cc)]["point"]
                        graph.add_edge((r, c), (rr, cc), length_m=haversine_m(a, b))
        # Close random segments without disconnecting the city.
        edges = list(graph.edges)
        rng.shuffle(edges)
        to_drop = int(drop_rate * len(edges))
        for edge in edges[:to_drop]:
            data = graph.edges[edge]
            graph.remove_edge(*edge)
            if not nx.is_connected(graph):
                graph.add_edge(*edge, **data)
        return cls(region=region, graph=graph)

    # -- lookups ---------------------------------------------------------------

    def node_point(self, node) -> GeoPoint:
        """Intersection coordinates of a node."""
        return self.graph.nodes[node]["point"]

    def nearest_node(self, point: GeoPoint):
        """Intersection nearest to an arbitrary point."""
        return min(
            self.graph.nodes,
            key=lambda n: haversine_m(self.node_point(n), point),
        )

    def total_length_m(self) -> float:
        """Total street length."""
        return sum(data["length_m"] for _, _, data in self.graph.edges(data=True))

    # -- routing -----------------------------------------------------------------

    def route(self, start: GeoPoint, goal: GeoPoint) -> list[GeoPoint]:
        """Shortest street route between the intersections nearest to
        ``start`` and ``goal`` (Dijkstra on segment lengths)."""
        a = self.nearest_node(start)
        b = self.nearest_node(goal)
        nodes = nx.shortest_path(self.graph, a, b, weight="length_m")
        return [self.node_point(n) for n in nodes]

    def route_length_m(self, waypoints: list[GeoPoint]) -> float:
        """Length of a waypoint polyline."""
        return sum(
            haversine_m(a, b) for a, b in zip(waypoints, waypoints[1:])
        )

    def patrol(self, start: GeoPoint, hops: int, seed: int = 0) -> list[GeoPoint]:
        """A random street patrol: ``hops`` edge traversals preferring
        unvisited segments (a garbage-truck shift)."""
        if hops < 1:
            raise GeoError(f"hops must be >= 1, got {hops}")
        rng = np.random.default_rng(seed)
        node = self.nearest_node(start)
        visited_edges: set[frozenset] = set()
        waypoints = [self.node_point(node)]
        for _ in range(hops):
            neighbors = list(self.graph.neighbors(node))
            fresh = [
                n for n in neighbors if frozenset((node, n)) not in visited_edges
            ]
            choices = fresh if fresh else neighbors
            nxt = choices[int(rng.integers(len(choices)))]
            visited_edges.add(frozenset((node, nxt)))
            node = nxt
            waypoints.append(self.node_point(node))
        return waypoints


def waypoints_to_headings(waypoints: list[GeoPoint]) -> list[tuple[GeoPoint, float]]:
    """``(position, heading)`` pairs along a polyline — the camera pose
    stream a dashcam would record while driving it."""
    if len(waypoints) < 2:
        raise GeoError("need at least two waypoints for headings")
    out = []
    for a, b in zip(waypoints, waypoints[1:]):
        out.append((a, initial_bearing_deg(a, b)))
    out.append((waypoints[-1], out[-1][1]))
    return out
