"""Scene-location estimation (paper Section IV-A, "Scene Location").

The paper defines the scene location as "the minimum bounding box
surrounding the geographical region depicting the image scene",
computed from the FOV descriptor.  When several FOVs observe the same
scene (e.g. consecutive video frames), their sector intersection
narrows the estimate — the idea behind the authors' data-centric image
scene localisation work [23].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeoError
from repro.geo.fov import FieldOfView
from repro.geo.point import BoundingBox, GeoPoint


def scene_location(fov: FieldOfView) -> BoundingBox:
    """Scene location of a single image: the MBR of its FOV sector."""
    return fov.mbr()


def scene_location_multi(fovs: list[FieldOfView], grid: int = 24) -> BoundingBox:
    """Refined scene location from multiple FOVs of the same scene.

    Rasterises the union MBR into a ``grid x grid`` lattice and keeps
    the cells seen by *every* FOV; the MBR of those cells is the refined
    scene estimate.  Falls back to the intersection (or union) of the
    individual MBRs when no lattice cell is commonly visible.
    """
    if not fovs:
        raise GeoError("scene_location_multi needs at least one FOV")
    if len(fovs) == 1:
        return scene_location(fovs[0])

    union = fovs[0].mbr()
    for fov in fovs[1:]:
        union = union.union(fov.mbr())

    dlat = (union.max_lat - union.min_lat) / grid
    dlng = (union.max_lng - union.min_lng) / grid
    common: list[GeoPoint] = []
    for i in range(grid):
        for j in range(grid):
            cell_center = GeoPoint(
                union.min_lat + (i + 0.5) * dlat,
                union.min_lng + (j + 0.5) * dlng,
            )
            if all(fov.contains_point(cell_center) for fov in fovs):
                common.append(cell_center)
    if common:
        box = BoundingBox.from_points(common)
        # Re-inflate by half a cell so the estimate covers whole cells.
        return box.expand(max(dlat, dlng) / 2.0)

    boxes = [fov.mbr() for fov in fovs]
    inter = boxes[0]
    for box in boxes[1:]:
        nxt = inter.intersection(box)
        if nxt is None:
            return union
        inter = nxt
    return inter


@dataclass(frozen=True, slots=True)
class LocalizedScene:
    """A scene estimate together with a confidence in [0, 1].

    Confidence grows with the number of agreeing FOVs and shrinks with
    the area of the estimate relative to a single FOV's MBR.
    """

    box: BoundingBox
    confidence: float
    supporting_fovs: int

    @classmethod
    def estimate(cls, fovs: list[FieldOfView]) -> "LocalizedScene":
        """Estimate the scene box and score the estimate."""
        box = scene_location_multi(fovs)
        base_area = max(fov.mbr().area for fov in fovs)
        shrink = 1.0 - min(box.area / base_area, 1.0) if base_area > 0 else 0.0
        support = 1.0 - 1.0 / (1.0 + len(fovs))
        confidence = max(0.05, min(0.99, 0.5 * shrink + 0.5 * support))
        return cls(box=box, confidence=confidence, supporting_fovs=len(fovs))
