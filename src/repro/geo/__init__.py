"""Geospatial substrate: points, geodesy, FOV model, scenes, regions."""

from repro.geo.point import EARTH_RADIUS_M, BoundingBox, GeoPoint
from repro.geo.geodesy import (
    angular_difference_deg,
    destination_point,
    haversine_m,
    initial_bearing_deg,
    meters_per_degree,
    normalize_bearing,
)
from repro.geo.fov import FieldOfView
from repro.geo.scene import LocalizedScene, scene_location, scene_location_multi
from repro.geo.regions import DOWNTOWN_LA, LOS_ANGELES, GridCell, RegionGrid
from repro.geo.roadnet import RoadNetwork, waypoints_to_headings

__all__ = [
    "EARTH_RADIUS_M",
    "GeoPoint",
    "BoundingBox",
    "haversine_m",
    "initial_bearing_deg",
    "destination_point",
    "angular_difference_deg",
    "normalize_bearing",
    "meters_per_degree",
    "FieldOfView",
    "scene_location",
    "scene_location_multi",
    "LocalizedScene",
    "LOS_ANGELES",
    "DOWNTOWN_LA",
    "GridCell",
    "RegionGrid",
    "RoadNetwork",
    "waypoints_to_headings",
]
