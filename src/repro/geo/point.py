"""Core geographic primitives: points and bounding boxes.

TVDP's data model is anchored on geo-tagged imagery, so nearly every
subsystem (FOV modelling, spatial indexes, crowdsourcing coverage,
scene localisation) consumes these two types.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import GeoError

#: Mean Earth radius in meters (IUGG).
EARTH_RADIUS_M = 6_371_008.8


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A WGS-84 coordinate pair, latitude and longitude in degrees."""

    lat: float
    lng: float

    def __post_init__(self) -> None:
        if not (-90.0 <= self.lat <= 90.0):
            raise GeoError(f"latitude out of range [-90, 90]: {self.lat}")
        if not (-180.0 <= self.lng <= 180.0):
            raise GeoError(f"longitude out of range [-180, 180]: {self.lng}")

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(lat, lng)``."""
        return (self.lat, self.lng)

    def to_dict(self) -> dict[str, float]:
        """Serialise to a plain dict (used by the DB layer and the API)."""
        return {"lat": self.lat, "lng": self.lng}

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "GeoPoint":
        """Inverse of :meth:`to_dict`."""
        return cls(lat=float(data["lat"]), lng=float(data["lng"]))


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned lat/lng rectangle (min/max corners, inclusive).

    Used for spatial range queries, R-tree entries, and scene locations
    (the paper's "minimum bounding box surrounding the geographical
    region depicting the image scene").
    """

    min_lat: float
    min_lng: float
    max_lat: float
    max_lng: float

    def __post_init__(self) -> None:
        if self.min_lat > self.max_lat:
            raise GeoError(f"min_lat {self.min_lat} > max_lat {self.max_lat}")
        if self.min_lng > self.max_lng:
            raise GeoError(f"min_lng {self.min_lng} > max_lng {self.max_lng}")

    @classmethod
    def from_points(cls, points: Iterable[GeoPoint]) -> "BoundingBox":
        """Smallest box containing every point in ``points``."""
        pts = list(points)
        if not pts:
            raise GeoError("cannot build a bounding box from zero points")
        lats = [p.lat for p in pts]
        lngs = [p.lng for p in pts]
        return cls(min(lats), min(lngs), max(lats), max(lngs))

    @classmethod
    def around(cls, center: GeoPoint, radius_m: float) -> "BoundingBox":
        """A box that conservatively contains the circle of ``radius_m``
        meters around ``center`` (the standard pre-filter for radius
        queries against an R-tree)."""
        if radius_m < 0:
            raise GeoError(f"radius must be non-negative, got {radius_m}")
        dlat = math.degrees(radius_m / EARTH_RADIUS_M)
        cos_lat = max(math.cos(math.radians(center.lat)), 1e-12)
        dlng = math.degrees(radius_m / (EARTH_RADIUS_M * cos_lat))
        return cls(
            max(center.lat - dlat, -90.0),
            max(center.lng - dlng, -180.0),
            min(center.lat + dlat, 90.0),
            min(center.lng + dlng, 180.0),
        )

    @property
    def center(self) -> GeoPoint:
        """Centroid of the box."""
        return GeoPoint(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lng + self.max_lng) / 2.0,
        )

    @property
    def area(self) -> float:
        """Area in squared degrees (fine for index bookkeeping)."""
        return (self.max_lat - self.min_lat) * (self.max_lng - self.min_lng)

    def contains_point(self, point: GeoPoint) -> bool:
        """True if ``point`` lies inside or on the border."""
        return (
            self.min_lat <= point.lat <= self.max_lat
            and self.min_lng <= point.lng <= self.max_lng
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """True if ``other`` is entirely inside this box."""
        return (
            self.min_lat <= other.min_lat
            and self.min_lng <= other.min_lng
            and self.max_lat >= other.max_lat
            and self.max_lng >= other.max_lng
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True if the two boxes share any point."""
        return not (
            other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
            or other.min_lng > self.max_lng
            or other.max_lng < self.min_lng
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_lat, other.min_lat),
            min(self.min_lng, other.min_lng),
            max(self.max_lat, other.max_lat),
            max(self.max_lng, other.max_lng),
        )

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """Overlapping region, or ``None`` when the boxes are disjoint."""
        if not self.intersects(other):
            return None
        return BoundingBox(
            max(self.min_lat, other.min_lat),
            max(self.min_lng, other.min_lng),
            min(self.max_lat, other.max_lat),
            min(self.max_lng, other.max_lng),
        )

    def expand(self, margin_deg: float) -> "BoundingBox":
        """Box grown by ``margin_deg`` degrees on every side."""
        return BoundingBox(
            max(self.min_lat - margin_deg, -90.0),
            max(self.min_lng - margin_deg, -180.0),
            min(self.max_lat + margin_deg, 90.0),
            min(self.max_lng + margin_deg, 180.0),
        )

    def corners(self) -> Iterator[GeoPoint]:
        """Yield the four corner points (SW, SE, NE, NW)."""
        yield GeoPoint(self.min_lat, self.min_lng)
        yield GeoPoint(self.min_lat, self.max_lng)
        yield GeoPoint(self.max_lat, self.max_lng)
        yield GeoPoint(self.max_lat, self.min_lng)

    def to_dict(self) -> dict[str, float]:
        """Serialise to a plain dict."""
        return {
            "min_lat": self.min_lat,
            "min_lng": self.min_lng,
            "max_lat": self.max_lat,
            "max_lng": self.max_lng,
        }

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "BoundingBox":
        """Inverse of :meth:`to_dict`."""
        return cls(
            float(data["min_lat"]),
            float(data["min_lng"]),
            float(data["max_lat"]),
            float(data["max_lng"]),
        )
