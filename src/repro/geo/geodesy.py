"""Geodesic helpers on the spherical-Earth model.

These are the primitives the FOV sector geometry, coverage measurement,
and crowdsourcing travel-cost computations are built from.  A spherical
model (haversine) is accurate to ~0.5% which is far below the noise of
consumer GPS, the paper's sensing modality.
"""

from __future__ import annotations

import math

from repro.geo.point import EARTH_RADIUS_M, GeoPoint


def haversine_m(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in meters."""
    lat1, lat2 = math.radians(a.lat), math.radians(b.lat)
    dlat = lat2 - lat1
    dlng = math.radians(b.lng - a.lng)
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlng / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial compass bearing from ``a`` to ``b`` in degrees [0, 360).

    0 is true north, 90 east — the convention of the paper's viewing
    direction θ captured from the digital compass.
    """
    lat1, lat2 = math.radians(a.lat), math.radians(b.lat)
    dlng = math.radians(b.lng - a.lng)
    x = math.sin(dlng) * math.cos(lat2)
    y = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(lat2) * math.cos(dlng)
    return math.degrees(math.atan2(x, y)) % 360.0


def destination_point(origin: GeoPoint, bearing_deg: float, distance_m: float) -> GeoPoint:
    """Point reached travelling ``distance_m`` meters from ``origin`` on
    the given initial bearing (spherical direct geodesic problem)."""
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    lat1 = math.radians(origin.lat)
    lng1 = math.radians(origin.lng)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(delta)
        + math.cos(lat1) * math.sin(delta) * math.cos(theta)
    )
    lng2 = lng1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(lat1),
        math.cos(delta) - math.sin(lat1) * math.sin(lat2),
    )
    lng2 = (math.degrees(lng2) + 540.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(lat2), lng2)


def angular_difference_deg(a: float, b: float) -> float:
    """Smallest absolute difference between two compass headings, in
    [0, 180].  Used to decide whether an FOV's viewing direction matches
    a directional query."""
    diff = abs(a - b) % 360.0
    return min(diff, 360.0 - diff)


def normalize_bearing(deg: float) -> float:
    """Normalise any angle in degrees into [0, 360).

    ``x % 360.0`` can round up to exactly 360.0 for tiny negative
    inputs, so that case is folded back to 0.0 explicitly.
    """
    result = deg % 360.0
    return result if result < 360.0 else 0.0


def meters_per_degree(lat_deg: float) -> tuple[float, float]:
    """Approximate local scale: meters per degree of (latitude,
    longitude) at the given latitude.  Used to convert FOV ranges into
    degree-space margins for bounding-box computation."""
    m_per_deg_lat = math.pi * EARTH_RADIUS_M / 180.0
    m_per_deg_lng = m_per_deg_lat * max(math.cos(math.radians(lat_deg)), 1e-12)
    return (m_per_deg_lat, m_per_deg_lng)
