"""Field-of-View (FOV) model for geo-tagged imagery (paper Fig. 3).

An FOV describes the spatial extent of one image as the tuple
``(camera location L, viewing direction theta, viewable angle alpha,
maximum visible distance R)`` captured from GPS + digital compass.
It is a circular sector anchored at the camera.

This is the representation MediaQ tags every video frame with, the key
of the Oriented R-tree, and the input of scene localisation and
coverage measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import GeoError
from repro.geo.geodesy import (
    angular_difference_deg,
    destination_point,
    haversine_m,
    initial_bearing_deg,
    normalize_bearing,
)
from repro.geo.point import BoundingBox, GeoPoint


@dataclass(frozen=True, slots=True)
class FieldOfView:
    """A camera field of view: sector of a circle on the Earth surface.

    Attributes
    ----------
    camera:
        Camera location ``L`` (GPS fix at capture time).
    direction_deg:
        Viewing direction ``theta`` — compass bearing of the optical
        axis, degrees clockwise from true north.
    angle_deg:
        Viewable angle ``alpha`` — full angular width of the sector.
    range_m:
        Maximum visible distance ``R`` in meters.
    """

    camera: GeoPoint
    direction_deg: float
    angle_deg: float
    range_m: float
    #: Memoized :meth:`mbr` — the FOV is immutable, and index filters
    #: evaluate the MBR once per candidate per query otherwise.
    _mbr_cache: BoundingBox | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not (0.0 < self.angle_deg <= 360.0):
            raise GeoError(f"viewable angle must be in (0, 360], got {self.angle_deg}")
        if self.range_m <= 0.0:
            raise GeoError(f"visible range must be positive, got {self.range_m}")
        object.__setattr__(self, "direction_deg", normalize_bearing(self.direction_deg))

    # -- geometry ---------------------------------------------------------

    def contains_point(self, point: GeoPoint) -> bool:
        """True if ``point`` is inside the sector (distance within R and
        bearing within alpha/2 of the viewing direction)."""
        dist = haversine_m(self.camera, point)
        if dist > self.range_m:
            return False
        if dist == 0.0:
            return True
        bearing = initial_bearing_deg(self.camera, point)
        return angular_difference_deg(bearing, self.direction_deg) <= self.angle_deg / 2.0

    def overlaps_fov(self, other: "FieldOfView", samples: int = 8) -> bool:
        """Approximate sector-sector overlap test.

        Exact spherical sector intersection is overkill for index
        filtering; we test mutual containment of *interior* sample
        points (a polar lattice over each sector), which catches
        lens-shaped intersections where neither apex nor arc lies
        inside the other sector.
        """
        if haversine_m(self.camera, other.camera) > self.range_m + other.range_m:
            return False
        if self.contains_point(other.camera) or other.contains_point(self.camera):
            return True
        for fov_a, fov_b in ((self, other), (other, self)):
            for point in fov_a.interior_points(samples):
                if fov_b.contains_point(point):
                    return True
        return False

    def interior_points(self, samples: int = 8) -> list[GeoPoint]:
        """A polar lattice of sample points covering the sector
        (several radial rings x angular steps, arc included)."""
        if samples < 2:
            raise GeoError(f"need at least 2 samples, got {samples}")
        # The 0.999 insets keep every sample strictly inside the sector
        # despite the floating-point round trip of destination_point.
        half = self.angle_deg / 2.0 * 0.999
        span = 2.0 * half
        points = []
        for radial_frac in (0.33, 0.66, 0.999):
            for i in range(samples):
                bearing = self.direction_deg - half + span * i / (samples - 1)
                points.append(
                    destination_point(self.camera, bearing, self.range_m * radial_frac)
                )
        return points

    def boundary_points(self, samples: int = 8) -> list[GeoPoint]:
        """Sample points along the sector arc plus the two edge tips."""
        if samples < 2:
            raise GeoError(f"need at least 2 boundary samples, got {samples}")
        half = self.angle_deg / 2.0
        bearings = [
            self.direction_deg - half + self.angle_deg * i / (samples - 1)
            for i in range(samples)
        ]
        return [destination_point(self.camera, b, self.range_m) for b in bearings]

    def mbr(self) -> BoundingBox:
        """Minimum bounding rectangle of the sector.

        Includes the camera apex, the arc sample points, and — when the
        sector spans a cardinal direction — the extremal point on that
        cardinal bearing (otherwise the MBR would clip the arc bulge).
        """
        if self._mbr_cache is not None:
            return self._mbr_cache
        points = [self.camera]
        points.extend(self.boundary_points(samples=16))
        half = self.angle_deg / 2.0
        for cardinal in (0.0, 90.0, 180.0, 270.0):
            if angular_difference_deg(cardinal, self.direction_deg) <= half:
                points.append(destination_point(self.camera, cardinal, self.range_m))
        box = BoundingBox.from_points(points)
        object.__setattr__(self, "_mbr_cache", box)
        return box

    def intersects_box(self, box: BoundingBox) -> bool:
        """Sector-rectangle intersection (filter + refine).

        True if any box corner is inside the sector, the camera is in
        the box, or a sampled arc point falls inside the box.
        """
        if not self.mbr().intersects(box):
            return False
        if box.contains_point(self.camera):
            return True
        if any(self.contains_point(corner) for corner in box.corners()):
            return True
        if any(box.contains_point(p) for p in self.boundary_points(samples=16)):
            return True
        # Sample interior rays to catch thin boxes crossing the sector.
        for frac in (0.25, 0.5, 0.75):
            for p in FieldOfView(
                self.camera, self.direction_deg, self.angle_deg, self.range_m * frac
            ).boundary_points(samples=8):
                if box.contains_point(p):
                    return True
        return False

    def coverage_area_m2(self) -> float:
        """Planar area of the sector in square meters."""
        return math.radians(self.angle_deg) / 2.0 * self.range_m**2

    def direction_matches(self, bearing_deg: float, tolerance_deg: float = 45.0) -> bool:
        """True if the viewing direction is within ``tolerance_deg`` of
        ``bearing_deg`` — the predicate of directional spatial queries
        on the Oriented R-tree."""
        return angular_difference_deg(self.direction_deg, bearing_deg) <= tolerance_deg

    def midpoint(self) -> GeoPoint:
        """Point on the optical axis at half range: a cheap single-point
        summary of "where the scene is" used by coverage heuristics."""
        return destination_point(self.camera, self.direction_deg, self.range_m / 2.0)

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, float]:
        """Serialise to a plain dict (DB rows and API payloads)."""
        return {
            "lat": self.camera.lat,
            "lng": self.camera.lng,
            "direction_deg": self.direction_deg,
            "angle_deg": self.angle_deg,
            "range_m": self.range_m,
        }

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "FieldOfView":
        """Inverse of :meth:`to_dict`."""
        return cls(
            camera=GeoPoint(float(data["lat"]), float(data["lng"])),
            direction_deg=float(data["direction_deg"]),
            angle_deg=float(data["angle_deg"]),
            range_m=float(data["range_m"]),
        )
