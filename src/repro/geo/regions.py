"""Named regions and uniform grids over a metropolitan area.

The TVDP use case operates on Los Angeles streets; crowdsourcing
campaigns, coverage measurement, and the synthetic dataset all need a
consistent notion of "the city" subdivided into cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import GeoError
from repro.geo.point import BoundingBox, GeoPoint

#: Rough bounding box of the City of Los Angeles — the paper's testbed.
LOS_ANGELES = BoundingBox(33.70, -118.67, 34.34, -118.15)

#: Downtown LA — a denser sub-region used by several examples.
DOWNTOWN_LA = BoundingBox(34.03, -118.27, 34.06, -118.23)


@dataclass(frozen=True, slots=True)
class GridCell:
    """One cell of a :class:`RegionGrid`: indices plus its box."""

    row: int
    col: int
    box: BoundingBox


@dataclass(frozen=True)
class RegionGrid:
    """A uniform ``rows x cols`` lattice over a bounding box.

    This is the discretisation used by coverage measurement (which
    cells have been photographed, from which directions) and by the
    campaign planner (which cells still need workers).
    """

    region: BoundingBox
    rows: int
    cols: int
    _dlat: float = field(init=False, repr=False)
    _dlng: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise GeoError(f"grid must be at least 1x1, got {self.rows}x{self.cols}")
        object.__setattr__(
            self, "_dlat", (self.region.max_lat - self.region.min_lat) / self.rows
        )
        object.__setattr__(
            self, "_dlng", (self.region.max_lng - self.region.min_lng) / self.cols
        )

    def __len__(self) -> int:
        return self.rows * self.cols

    def cell(self, row: int, col: int) -> GridCell:
        """The cell at grid indices ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise GeoError(f"cell ({row}, {col}) outside {self.rows}x{self.cols} grid")
        box = BoundingBox(
            self.region.min_lat + row * self._dlat,
            self.region.min_lng + col * self._dlng,
            self.region.min_lat + (row + 1) * self._dlat,
            self.region.min_lng + (col + 1) * self._dlng,
        )
        return GridCell(row=row, col=col, box=box)

    def cell_of(self, point: GeoPoint) -> GridCell | None:
        """Cell containing ``point``, or None when outside the region."""
        if not self.region.contains_point(point):
            return None
        row = min(int((point.lat - self.region.min_lat) / self._dlat), self.rows - 1)
        col = min(int((point.lng - self.region.min_lng) / self._dlng), self.cols - 1)
        return self.cell(row, col)

    def cells(self) -> Iterator[GridCell]:
        """Iterate all cells in row-major order."""
        for row in range(self.rows):
            for col in range(self.cols):
                yield self.cell(row, col)

    def cells_intersecting(self, box: BoundingBox) -> Iterator[GridCell]:
        """Iterate cells whose box intersects ``box`` (index-accelerated:
        only the candidate row/col band is scanned)."""
        overlap = self.region.intersection(box)
        if overlap is None:
            return
        row_lo = max(int((overlap.min_lat - self.region.min_lat) / self._dlat), 0)
        row_hi = min(int((overlap.max_lat - self.region.min_lat) / self._dlat), self.rows - 1)
        col_lo = max(int((overlap.min_lng - self.region.min_lng) / self._dlng), 0)
        col_hi = min(int((overlap.max_lng - self.region.min_lng) / self._dlng), self.cols - 1)
        for row in range(row_lo, row_hi + 1):
            for col in range(col_lo, col_hi + 1):
                cell = self.cell(row, col)
                if cell.box.intersects(box):
                    yield cell
