"""Declarative SLOs evaluated against the live metrics registry.

An :class:`SLO` binds one instrumented operation (a span name) to a
target: either a latency percentile bound (``kind="latency"``: "p95 of
``query.spatial`` stays under 250 ms") or a success-ratio floor
(``kind="availability"``: "99% of ``platform.upload_image`` spans
finish without error").  Both read the metrics the tracer already
records — ``span.duration_ms{span=...}`` histograms and
``spans.total``/``spans.errors{span=...}`` counters — so adding an
objective needs no new instrumentation.

Evaluation reports a **burn ratio** per objective: how much of the
target the operation is consuming.

* latency: ``observed_percentile / threshold_ms``
* availability: ``(1 - observed_ratio) / (1 - target_ratio)`` — the
  classic error-budget burn.

``burn <= 1`` is ``ok``; up to :data:`FAILING_BURN` is ``degraded``;
beyond it, ``failing``.  Objectives with fewer than ``min_samples``
observations report ``ok`` with ``insufficient_data`` set, so a cold
process is healthy by definition.  ``GET /health`` serves the evaluated
report; ``python -m repro --stats`` prints it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry

#: Burn ratio above which an objective is ``failing`` (between 1.0 and
#: this, it is ``degraded``).
FAILING_BURN = 2.0

#: Status ordering for the rollup: the report's overall status is the
#: worst individual objective's.
_STATUS_RANK = {"ok": 0, "degraded": 1, "failing": 2}

VALID_KINDS = ("latency", "availability")


@dataclass(frozen=True)
class SLO:
    """One declarative objective over an instrumented span name."""

    objective: str  # unique id, e.g. "query.spatial.p95"
    kind: str  # "latency" | "availability"
    span: str  # span name watched (span.duration_ms / spans.* labels)
    target: float  # threshold_ms (latency) or success ratio (availability)
    percentile: float = 0.95  # latency only
    min_samples: int = 20
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; use one of {VALID_KINDS}")
        if self.kind == "latency" and self.target <= 0:
            raise ValueError(f"latency target must be positive, got {self.target}")
        if self.kind == "availability" and not (0.0 < self.target < 1.0):
            raise ValueError(
                f"availability target must be in (0, 1), got {self.target}"
            )


def _query_family_slos() -> list[SLO]:
    """Latency + availability objectives for every query family."""
    targets_ms = {
        "spatial": 100.0,
        "visual": 250.0,
        "categorical": 100.0,
        "textual": 100.0,
        "temporal": 100.0,
        "hybrid": 500.0,
    }
    slos: list[SLO] = []
    for family, threshold in targets_ms.items():
        span = f"query.{family}"
        slos.append(
            SLO(
                objective=f"{span}.p95",
                kind="latency",
                span=span,
                target=threshold,
                percentile=0.95,
                description=f"p95 of {family} queries under {threshold:g} ms",
            )
        )
        slos.append(
            SLO(
                objective=f"{span}.availability",
                kind="availability",
                span=span,
                target=0.99,
                description=f"99% of {family} queries succeed",
            )
        )
    return slos


#: The shipped objectives: per-query-family latency/availability, the
#: upload pipeline, the API request envelope, and the resilience
#: surfaces (edge transfer attempts, database persistence).
DEFAULT_SLOS: tuple[SLO, ...] = (
    *_query_family_slos(),
    SLO(
        objective="upload.p95",
        kind="latency",
        span="platform.upload_image",
        target=250.0,
        percentile=0.95,
        description="p95 of image uploads under 250 ms",
    ),
    SLO(
        objective="upload.availability",
        kind="availability",
        span="platform.upload_image",
        target=0.99,
        description="99% of uploads succeed",
    ),
    SLO(
        objective="api.request.p99",
        kind="latency",
        span="http.request",
        target=1_000.0,
        percentile=0.99,
        description="p99 of API requests under 1 s",
    ),
    SLO(
        objective="api.request.availability",
        kind="availability",
        span="http.request",
        target=0.995,
        description="99.5% of API requests dispatch without raising",
    ),
    SLO(
        objective="edge.transfer.availability",
        kind="availability",
        span="edge.transfer.attempt",
        target=0.9,
        description=(
            "90% of individual edge transfer attempts succeed "
            "(retries and per-device breakers absorb the rest)"
        ),
    ),
    SLO(
        objective="db.persist.availability",
        kind="availability",
        span="db.persist",
        target=0.99,
        description="99% of database saves/loads complete after retries",
    ),
)


def _status_of(burn: float) -> str:
    if burn <= 1.0:
        return "ok"
    if burn <= FAILING_BURN:
        return "degraded"
    return "failing"


def evaluate_slo(slo: SLO, registry: MetricsRegistry, windows=None) -> dict:
    """One objective against the registry's current values.

    With ``windows`` (a :class:`repro.obs.windows.RollingWindows`),
    latency objectives are judged on the rolling window — "p95 over the
    last 60 s" — whenever the window holds samples for the span, and
    the result carries ``window_s``.  A cold or drained window falls
    back to the cumulative histogram, so a process that just stopped
    receiving traffic does not flap.  Availability objectives always
    read the cumulative error-budget counters.
    """
    labels = {"span": slo.span}
    result: dict = {
        "objective": slo.objective,
        "kind": slo.kind,
        "span": slo.span,
        "target": slo.target,
        "description": slo.description,
        "status": "ok",
        "burn_ratio": 0.0,
        "observed": None,
        "samples": 0,
        "insufficient_data": False,
    }
    if slo.kind == "latency":
        histogram = registry.histogram("span.duration_ms", labels)
        samples = histogram.count
        result["percentile"] = slo.percentile
        observed: float | None = None
        if windows is not None:
            window_count = windows.count(slo.span)
            if window_count > 0:
                samples = window_count
                observed = windows.percentile(slo.span, slo.percentile)
                result["window_s"] = windows.window_s
        result["samples"] = samples
        if samples == 0:
            result["insufficient_data"] = True
            return result
        if observed is None:
            observed = histogram.percentile(slo.percentile)
        result["observed"] = round(observed, 3)
        result["burn_ratio"] = round(observed / slo.target, 4)
    else:  # availability
        total = registry.counter("spans.total", labels).value
        errors = registry.counter("spans.errors", labels).value
        result["samples"] = int(total)
        if total == 0:
            result["insufficient_data"] = True
            return result
        observed = 1.0 - errors / total
        result["observed"] = round(observed, 6)
        result["burn_ratio"] = round((1.0 - observed) / (1.0 - slo.target), 4)
    if result["samples"] < slo.min_samples:
        # Too little traffic to judge: surface the numbers, stay ok.
        result["insufficient_data"] = True
        return result
    result["status"] = _status_of(result["burn_ratio"])
    return result


def evaluate(
    registry: MetricsRegistry,
    slos: tuple[SLO, ...] | list[SLO] | None = None,
    windows=None,
) -> dict:
    """Full health report: per-objective results plus the worst rollup.

    The shape is exactly what ``GET /health`` returns::

        {"status": "ok" | "degraded" | "failing",
         "objectives": [ ...evaluate_slo dicts, worst first... ]}

    ``windows`` switches latency objectives to rolling last-window
    percentiles (see :func:`evaluate_slo`).
    """
    chosen = tuple(slos) if slos is not None else DEFAULT_SLOS
    results = [evaluate_slo(slo, registry, windows=windows) for slo in chosen]
    results.sort(key=lambda r: (-_STATUS_RANK[r["status"]], -r["burn_ratio"]))
    overall = "ok"
    for result in results:
        if _STATUS_RANK[result["status"]] > _STATUS_RANK[overall]:
            overall = result["status"]
    return {"status": overall, "objectives": results}
