"""Rolling time-windowed latency distributions.

The registry's histograms (``repro.obs.metrics``) aggregate since
process start — correct for benchmark trajectories, useless under
sustained load, where "p95 over the last minute" is the question the
SLO burn ratios and ``/stats`` need to answer.  :class:`RollingWindows`
keeps, per key (span name), a ring of time-bucketed mini-histograms:
each observation lands in the bucket covering "now", buckets older than
the window are lazily recycled, and percentile queries merge the live
buckets.  Memory is fixed: ``n_buckets x len(bounds)`` counts per key.

Time is injectable: the constructor takes anything with a ``now()``
method (the ``repro.resilience.Clock`` seam, duck-typed so the
observability layer stays dependency-free) or a plain ``() -> float``
callable.  The process-wide instance (``obs.latency_windows()``) runs
on ``time.monotonic`` and is fed by the tracer — every finished span's
duration lands here under its span name, exactly like the cumulative
``span.duration_ms`` histograms.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_MS

#: Default window: the last 60 seconds, in 5-second buckets.
DEFAULT_WINDOW_S = 60.0
DEFAULT_BUCKET_S = 5.0


class _Slot:
    """One time bucket of one key's ring: a tiny fixed-bound histogram."""

    __slots__ = ("epoch", "counts", "count", "sum", "min", "max")

    def __init__(self, n_bounds: int) -> None:
        self.epoch = -1  # which bucket_s-sized interval this slot holds
        self.counts = [0] * (n_bounds + 1)  # +1 overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def recycle(self, epoch: int) -> None:
        # Only reached from RollingWindows.observe, under its _lock.
        self.epoch = epoch
        for i in range(len(self.counts)):
            self.counts[i] = 0  # devtools: allow[unlocked-mutation] caller holds RollingWindows._lock
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf


def _resolve_now(clock: object | None) -> Callable[[], float]:
    """Accept a Clock-shaped object, a bare callable, or ``None``."""
    if clock is None:
        return time.monotonic
    now = getattr(clock, "now", None)
    if callable(now):
        return now
    if callable(clock):
        return clock  # type: ignore[return-value]
    raise TypeError(f"clock must have .now() or be callable, got {clock!r}")


class RollingWindows:
    """Per-key rolling latency windows over an injectable clock.

    All methods are thread-safe under one internal lock; nothing
    blocking runs while it is held (pure in-memory bookkeeping), so the
    lock-order sanitizer sees it as a leaf.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        bucket_s: float = DEFAULT_BUCKET_S,
        clock: object | None = None,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        if window_s <= 0 or bucket_s <= 0 or bucket_s > window_s:
            raise ValueError(
                f"need 0 < bucket_s <= window_s, got {bucket_s}/{window_s}"
            )
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"bounds must be sorted and non-empty, got {bounds}")
        self.window_s = float(window_s)
        self.bucket_s = float(bucket_s)
        self.bounds = tuple(float(b) for b in bounds)
        self.n_buckets = int(math.ceil(window_s / bucket_s))
        self._now = _resolve_now(clock)
        self._rings: dict[str, list[_Slot]] = {}
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------

    def observe(self, key: str, value_ms: float) -> None:
        """Record one latency sample for ``key`` at the current time."""
        value = float(value_ms)
        epoch = int(self._now() // self.bucket_s)
        with self._lock:
            ring = self._rings.get(key)
            if ring is None:
                ring = [_Slot(len(self.bounds)) for _ in range(self.n_buckets)]
                self._rings[key] = ring
            slot = ring[epoch % self.n_buckets]
            if slot.epoch != epoch:
                slot.recycle(epoch)
            slot.count += 1
            slot.sum += value
            if value < slot.min:
                slot.min = value
            if value > slot.max:
                slot.max = value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    slot.counts[i] += 1
                    return
            slot.counts[-1] += 1

    # -- reading ------------------------------------------------------------

    def _live_slots(self, key: str) -> list[_Slot]:
        """Slots still inside the window; caller holds the lock."""
        ring = self._rings.get(key)
        if ring is None:
            return []
        min_epoch = int(self._now() // self.bucket_s) - self.n_buckets + 1
        return [slot for slot in ring if slot.epoch >= min_epoch and slot.count]

    def count(self, key: str) -> int:
        """Samples recorded for ``key`` inside the window."""
        with self._lock:
            return sum(slot.count for slot in self._live_slots(key))

    def percentile(self, key: str, q: float) -> float | None:
        """Interpolated ``q``-quantile of ``key`` over the window, or
        ``None`` with no samples.  Same pinned interpolation behaviour
        as :meth:`repro.obs.metrics.Histogram.percentile`."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            slots = self._live_slots(key)
            if not slots:
                return None
            merged = [0] * (len(self.bounds) + 1)
            for slot in slots:
                for i, c in enumerate(slot.counts):
                    merged[i] += c
            total = sum(slot.count for slot in slots)
            lo = min(slot.min for slot in slots)
            hi = max(slot.max for slot in slots)
        if q == 0.0:
            return lo
        rank = q * total
        cumulative = 0
        for i, in_bucket in enumerate(merged):
            if in_bucket == 0:
                continue
            if cumulative + in_bucket >= rank:
                if i == len(self.bounds):  # overflow bucket
                    return hi
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                fraction = (rank - cumulative) / in_bucket
                return min(max(lower + fraction * (upper - lower), lo), hi)
            cumulative += in_bucket
        return hi

    def summary(self, key: str) -> dict | None:
        """``{count,sum,min,max,p50,p95,p99,window_s}`` over the live
        window, or ``None`` when the window holds no samples."""
        with self._lock:
            slots = self._live_slots(key)
            if not slots:
                return None
            count = sum(slot.count for slot in slots)
            total = sum(slot.sum for slot in slots)
            lo = min(slot.min for slot in slots)
            hi = max(slot.max for slot in slots)
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "p50": self.percentile(key, 0.50),
            "p95": self.percentile(key, 0.95),
            "p99": self.percentile(key, 0.99),
            "window_s": self.window_s,
        }

    def summaries(self) -> dict[str, dict]:
        """Key -> :meth:`summary` for every key with live samples."""
        with self._lock:
            keys = sorted(self._rings)
        out: dict[str, dict] = {}
        for key in keys:
            summary = self.summary(key)
            if summary is not None:
                out[key] = summary
        return out

    def reset(self) -> None:
        """Drop every key's window (benchmark isolation)."""
        with self._lock:
            self._rings.clear()
