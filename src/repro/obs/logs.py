"""Structured logging that carries the active trace context.

Thin layer over stdlib :mod:`logging`: every record emitted through a
``tvdp.*`` logger gains ``trace_id`` and ``span_id`` fields from the
current :func:`~repro.obs.tracing.current_span`, so log lines can be
joined against exported spans.  Library code must log through
:func:`get_logger` rather than ``print`` — the ``no-print`` rule in
``repro.devtools`` enforces this.  CLI-style entry points whose stdout
*is* their user interface use :func:`console`, which routes through the
same logging machinery but renders bare messages.
"""

from __future__ import annotations

import logging
import sys
import threading

from repro.obs.tracing import current_span

_ROOT_NAME = "tvdp"
_FORMAT = (
    "%(asctime)s %(levelname)s %(name)s "
    "[trace=%(trace_id)s span=%(span_id)s] %(message)s"
)


class SpanContextFilter(logging.Filter):
    """Stamps the active span/trace id onto every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        span = current_span()
        record.trace_id = span.trace_id if span else "-"
        record.span_id = span.span_id if span else "-"
        return True


def _root() -> logging.Logger:
    root = logging.getLogger(_ROOT_NAME)
    if not any(isinstance(f, SpanContextFilter) for f in root.filters):
        root.addFilter(SpanContextFilter())
        # Library default: silent unless the host app configures handlers.
        root.addHandler(logging.NullHandler())
    return root


def get_logger(name: str) -> logging.Logger:
    """A ``tvdp.<name>`` logger with span-context injection installed."""
    _root()
    logger = logging.getLogger(f"{_ROOT_NAME}.{name}")
    if not any(isinstance(f, SpanContextFilter) for f in logger.filters):
        logger.addFilter(SpanContextFilter())
    return logger


def configure_logging(level: int | str = logging.INFO, stream=None) -> logging.Handler:
    """Attach a stream handler with the trace-aware format to the
    ``tvdp`` root (idempotent per stream) and set its level.  Returns
    the handler so callers/tests can detach it."""
    root = _root()
    root.setLevel(level)
    for handler in root.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            if stream is None or handler.stream is stream:
                handler.setLevel(level)
                return handler
    handler = logging.StreamHandler(stream)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler.addFilter(SpanContextFilter())
    root.addHandler(handler)
    return handler


_CONSOLE_NAME = "tvdp.console"
_console_lock = threading.Lock()


def console(name: str = "cli") -> logging.Logger:
    """A ``tvdp.console.<name>`` logger whose INFO lines render as bare
    messages on stdout — the sanctioned replacement for ``print()`` in
    entry points like the ``python -m repro`` guided tour.

    The console branch does not propagate to the ``tvdp`` root, so tour
    output never duplicates into an application's structured handlers;
    it still runs the :class:`SpanContextFilter` so ``%(trace_id)s``
    stays usable in a custom formatter.
    """
    with _console_lock:
        branch = logging.getLogger(_CONSOLE_NAME)
        if not branch.handlers:
            branch.propagate = False
            branch.setLevel(logging.INFO)
            handler = logging.StreamHandler(sys.stdout)
            handler.setFormatter(logging.Formatter("%(message)s"))
            handler.addFilter(SpanContextFilter())
            branch.addHandler(handler)
    return logging.getLogger(f"{_CONSOLE_NAME}.{name}")
