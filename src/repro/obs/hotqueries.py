"""Thread-safe top-K hot-query tracking by normalized query shape.

The platform normalizes every executed query to a literal-free *shape*
string (``repro.core.queries.query_shape`` — e.g.
``spatial(mode=scene,region)`` no matter which coordinates were asked
for) and records it here with its latency.  The tracker keeps a bounded
table of shapes with count/latency aggregates and answers "what is this
workload actually doing" at ``GET /debug/hot`` — the per-operator cost
visibility scale-out planning needs (hot shapes are what result caches,
request coalescing, and shard pruning will be sized against).

Bounding is space-saving-lite: the table grows to twice ``capacity``
and is then pruned back to ``capacity`` by (count, total latency), with
a deterministic tie-break on the shape string, so a heavy-tailed shape
mix cannot grow memory without bound while genuinely hot shapes are
never evicted.
"""

from __future__ import annotations

import threading


class HotQueryTracker:
    """Bounded shape -> {count, latency aggregates} table."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._stats: dict[str, dict] = {}
        self._evicted = 0
        self._lock = threading.Lock()

    def record(self, shape: str, duration_ms: float) -> None:
        """Count one execution of ``shape`` taking ``duration_ms``."""
        duration = float(duration_ms)
        with self._lock:
            entry = self._stats.get(shape)
            if entry is None:
                entry = {"count": 0, "total_ms": 0.0, "max_ms": 0.0, "last_ms": 0.0}
                self._stats[shape] = entry
            entry["count"] += 1
            entry["total_ms"] += duration
            entry["last_ms"] = duration
            if duration > entry["max_ms"]:
                entry["max_ms"] = duration
            if len(self._stats) > self.capacity * 2:
                self._prune()

    def _prune(self) -> None:
        """Keep the ``capacity`` hottest shapes; caller holds the lock."""
        ranked = sorted(
            self._stats.items(),
            key=lambda item: (-item[1]["count"], -item[1]["total_ms"], item[0]),
        )
        self._evicted += len(ranked) - self.capacity
        self._stats = dict(ranked[: self.capacity])

    def top(self, k: int = 10) -> list[dict]:
        """The ``k`` hottest shapes, most-executed first.

        Each record: ``{shape, count, total_ms, mean_ms, max_ms,
        last_ms}`` — ties break deterministically on the shape string.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        with self._lock:
            # Rank by count with the tie broken on the shape string
            # alone — total_ms is wall-clock noise, so letting it into
            # the order makes equal-count rankings flap across runs.
            ranked = sorted(
                self._stats.items(),
                key=lambda item: (-item[1]["count"], item[0]),
            )[:k]
        return [
            {
                "shape": shape,
                "count": entry["count"],
                "total_ms": round(entry["total_ms"], 3),
                "mean_ms": round(entry["total_ms"] / entry["count"], 3),
                "max_ms": round(entry["max_ms"], 3),
                "last_ms": round(entry["last_ms"], 3),
            }
            for shape, entry in ranked
        ]

    def evicted(self) -> int:
        """Shapes pruned so far (coverage caveat for ``/debug/hot``)."""
        with self._lock:
            return self._evicted

    def clear(self) -> None:
        with self._lock:
            self._stats.clear()
            self._evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)
