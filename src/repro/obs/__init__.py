"""Platform observability: metrics, tracing spans, structured logs.

One process-wide :class:`MetricsRegistry` and :class:`Tracer` (ring
buffer attached) back every instrumented code path — the same pattern
as the Prometheus client library.  The API layer serves the registry at
``GET /metrics``; benchmarks snapshot/diff it around measured phases;
``TVDP.reset_metrics()`` zeroes it between phases.

Typical use::

    from repro import obs

    log = obs.get_logger("myservice")
    with obs.span("myservice.do_thing", item=42):
        obs.metrics().counter("myservice.things").inc()
        log.info("did the thing")

Performance observability on top of the same core: ``obs.profile_scope``
/ ``obs.memory_scope`` attach cProfile / tracemalloc results to the
active span, ``obs.slow_spans()`` queries the worst-span exemplar log
(served at ``GET /debug/slow``), and ``obs.health()`` evaluates the
declarative SLOs in ``repro.obs.slo`` (served at ``GET /health``).

Set the ``TVDP_TRACE_JSONL`` environment variable (or call
:func:`enable_jsonl`) to also stream finished spans to a JSON-lines
file.
"""

from __future__ import annotations

import os
import threading

from repro.obs import slo
from repro.obs.accounting import (
    Budget,
    ResourceLedger,
    UsageTable,
    active_ledger,
    charge,
    charge_probes,
    ledger_scope,
    maybe_ledger_scope,
)
from repro.obs.hotqueries import HotQueryTracker
from repro.obs.logs import SpanContextFilter, configure_logging, console, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counters_delta,
)
from repro.obs.windows import RollingWindows
from repro.obs.profiling import (
    MemoryResult,
    ProfileResult,
    SlowSpanLog,
    memory_scope,
    profile_scope,
)
from repro.obs.tracing import (
    JsonlExporter,
    RingBufferExporter,
    Span,
    TraceContext,
    Tracer,
    current_span,
    current_traceparent,
    format_traceparent,
    parse_traceparent,
    span_tree,
)

__all__ = [
    "Budget",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "HotQueryTracker",
    "JsonlExporter",
    "MemoryResult",
    "MetricsRegistry",
    "ProfileResult",
    "ResourceLedger",
    "RingBufferExporter",
    "RollingWindows",
    "SlowSpanLog",
    "Span",
    "SpanContextFilter",
    "TraceContext",
    "Tracer",
    "UsageTable",
    "active_ledger",
    "charge",
    "charge_probes",
    "configure_logging",
    "console",
    "counters_delta",
    "current_span",
    "current_traceparent",
    "disable_jsonl",
    "enable_jsonl",
    "format_traceparent",
    "get_logger",
    "health",
    "hot_queries",
    "latency_windows",
    "ledger_scope",
    "maybe_ledger_scope",
    "memory_scope",
    "metrics",
    "parse_traceparent",
    "profile_scope",
    "reset",
    "ring_buffer",
    "slo",
    "slow_log",
    "slow_spans",
    "snapshot",
    "span",
    "span_tree",
    "tracer",
    "usage",
]

_registry = MetricsRegistry()
_ring = RingBufferExporter(capacity=4096)
_slow = SlowSpanLog(registry=_registry)
_windows = RollingWindows()
_hot = HotQueryTracker()
_tracer = Tracer(registry=_registry, exporters=[_ring, _slow], windows=_windows)
_usage = UsageTable(registry=_registry)
_jsonl: JsonlExporter | None = None
_jsonl_lock = threading.Lock()


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def latency_windows() -> RollingWindows:
    """The process-wide rolling latency windows (fed by the tracer:
    every finished span's duration, keyed by span name)."""
    return _windows


def hot_queries() -> HotQueryTracker:
    """The process-wide hot-query tracker (fed by ``TVDP.execute`` with
    normalized query shapes; served at ``GET /debug/hot``)."""
    return _hot


def usage() -> UsageTable:
    """The process-wide usage table: per-principal/shape/operation
    resource charges absorbed from request ledgers (served at
    ``GET /debug/resources``).  Configure an admission budget with
    ``obs.usage().set_budget(obs.Budget(...))`` or the
    ``TVDP_USAGE_BUDGET`` environment variable (cost units / 60 s)."""
    return _usage


# Public accessor mirroring metrics(); consumed by tests and debugging.
# devtools: allow[dead-code] — intentional API surface
def tracer() -> Tracer:
    """The process-wide tracer."""
    return _tracer


# Public accessor; tests and notebooks read recent spans through it.
# devtools: allow[dead-code] — intentional API surface
def ring_buffer() -> RingBufferExporter:
    """The tracer's in-memory exporter (recent finished spans)."""
    return _ring


def slow_log() -> SlowSpanLog:
    """The tracer's slow-span exemplar log (worst spans per operation)."""
    return _slow


def slow_spans(name: str | None = None, limit: int | None = None) -> list[dict]:
    """Worst-span exemplar records (see ``SlowSpanLog.slowest``)."""
    return _slow.slowest(name, limit)


def health(slos=None) -> dict:
    """Evaluate SLO objectives against the live registry (see
    ``repro.obs.slo.evaluate``; default objectives when ``slos`` is
    ``None``).  Latency objectives read the rolling last-60s windows
    when those hold samples, falling back to the since-process-start
    histograms on a cold window."""
    return slo.evaluate(_registry, slos, windows=_windows)


def span(name: str, remote_parent: TraceContext | None = None, **attrs: object):
    """Open a span on the default tracer (context manager).

    ``remote_parent`` (an extracted ``traceparent`` header's
    :class:`TraceContext`) joins a trace started in another process —
    see :meth:`Tracer.span`.
    """
    return _tracer.span(name, remote_parent=remote_parent, **attrs)


def snapshot() -> dict[str, dict]:
    """Current values of every metric (see ``MetricsRegistry.snapshot``)."""
    return _registry.snapshot()


def reset() -> None:
    """Zero all metrics and drop buffered spans, slow-span exemplars,
    rolling latency windows, and hot-query stats (benchmark isolation).

    Metric handles cached by instrumented modules stay valid.
    """
    _registry.reset()
    _ring.clear()
    _slow.clear()
    _windows.reset()
    _hot.clear()
    _usage.reset()


def enable_jsonl(path: str) -> JsonlExporter:
    """Stream finished spans to ``path`` as JSON lines (idempotent per
    path; an exporter for a different path replaces the previous one)."""
    global _jsonl
    with _jsonl_lock:
        if _jsonl is not None and _jsonl.path == str(path):
            return _jsonl
    # Open the file outside the lock — holding _jsonl_lock across IO
    # would stall every tracer attach/detach on a slow disk.
    exporter = JsonlExporter(path)
    with _jsonl_lock:
        if _jsonl is not None and _jsonl.path == str(path):
            current = _jsonl  # a concurrent enable for the same path won
        else:
            if _jsonl is not None:
                _detach_jsonl()
            _jsonl = exporter
            _tracer.add_exporter(exporter)
            current = exporter
    if current is not exporter:
        exporter.close()
    return current


# API symmetry with enable_jsonl; tests tear down stream exporters here.
# devtools: allow[dead-code] — intentional API surface
def disable_jsonl() -> None:
    """Detach and close the JSONL exporter, if one is active."""
    with _jsonl_lock:
        _detach_jsonl()


def _detach_jsonl() -> None:
    """Close and drop the active exporter; caller holds ``_jsonl_lock``."""
    global _jsonl
    if _jsonl is not None:
        _tracer.remove_exporter(_jsonl)
        _jsonl.close()
        _jsonl = None  # devtools: allow[module-mutable-state] caller holds _jsonl_lock


_env_path = os.environ.get("TVDP_TRACE_JSONL")
if _env_path:
    enable_jsonl(_env_path)

_env_budget = os.environ.get("TVDP_USAGE_BUDGET")
if _env_budget:
    try:
        _usage.set_budget(Budget(cost_per_window=float(_env_budget)))
    except ValueError:
        get_logger("obs").warning(
            "ignoring non-numeric TVDP_USAGE_BUDGET=%r", _env_budget
        )
