"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

The registry is the platform's single source of operational truth — the
paper's ``GET /stats`` endpoint grows into a full ``GET /metrics`` API
on top of it.  Everything here is dependency-free stdlib so the hot
paths (index probes, query execution) can afford to report into it.

Design notes
------------
* Metrics are identified by ``(name, labels)``; handles returned by
  :meth:`MetricsRegistry.counter` & co. are stable across
  :meth:`MetricsRegistry.reset`, so callers may cache them at module
  import and keep incrementing after a benchmark resets the values.
* Histograms use fixed upper-bound buckets (Prometheus-style) and
  estimate percentiles by linear interpolation inside the bucket,
  clamped to the observed min/max.
* Snapshots are plain nested dicts with flattened
  ``name{label="value"}`` keys, so diffing two snapshots (what a
  benchmark phase did) is a dict subtraction — see
  :func:`counters_delta`.
* Every metric and the registry itself are thread-safe: instrumented
  code runs on API worker threads, so increments and the get-or-create
  path take a per-object lock (the ``unlocked-mutation`` lint in
  ``repro.devtools`` enforces this for the whole module).
"""

from __future__ import annotations

import math
import threading

_LabelKey = tuple[tuple[str, str], ...]
_MetricKey = tuple[str, _LabelKey]

#: Default latency buckets (milliseconds): sub-millisecond index probes
#: through multi-second training runs.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0,
)


def _label_key(labels: dict[str, str] | None) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _flat_name(name: str, label_key: _LabelKey) -> str:
    if not label_key:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in label_key)
    return f"{name}{{{inner}}}"


def _prom_name(name: str) -> str:
    """Prometheus-legal metric name: ``query.spatial`` -> ``tvdp_query_spatial``."""
    sanitized = "".join(c if c.isalnum() else "_" for c in name)
    return f"tvdp_{sanitized}"


def _prom_escape(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote, and line feed must be ``\\\\``, ``\\"``,
    and ``\\n`` inside the quoted value."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self.value += amount

    def _reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Gauge:
    """Value that can go up and down (queue depths, index sizes)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def _reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Histogram:
    """Fixed-bucket distribution with interpolated percentiles.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count", "sum",
                 "min", "max", "_lock")

    def __init__(
        self,
        name: str,
        labels: _LabelKey = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be sorted and non-empty, got {buckets}")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +1 overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        # RLock: summary() calls percentile() with the lock already held.
        self._lock = threading.RLock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]) from bucket counts.

        Pinned interpolation behaviour (see ``tests/obs/test_metrics.py``):

        * an empty histogram returns ``0.0`` for every ``q``;
        * ``q=0`` returns the observed minimum and ``q=1`` the observed
          maximum, exactly;
        * quantiles landing in the overflow bucket (above the last
          bound) return the observed maximum — the bucket has no upper
          bound to interpolate towards;
        * everything else interpolates linearly inside its bucket and is
          clamped to the observed ``[min, max]``.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            if q == 0.0:
                return self.min
            rank = q * self.count
            cumulative = 0
            for i, in_bucket in enumerate(self.bucket_counts):
                if in_bucket == 0:
                    continue
                if cumulative + in_bucket >= rank:
                    if i == len(self.buckets):  # overflow bucket: no upper bound
                        return self.max
                    lower = self.buckets[i - 1] if i > 0 else 0.0
                    upper = self.buckets[i]
                    fraction = (rank - cumulative) / in_bucket
                    estimate = lower + fraction * (upper - lower)
                    return min(max(estimate, self.min), self.max)
                cumulative += in_bucket
            return self.max

    def summary(self) -> dict[str, float]:
        """Count, sum, extrema, and the operator percentiles."""
        with self._lock:
            if self.count == 0:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                        "p50": 0.0, "p95": 0.0, "p99": 0.0}
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "p50": self.percentile(0.50),
                "p95": self.percentile(0.95),
                "p99": self.percentile(0.99),
            }

    def state(self) -> dict:
        """Mergeable value dump (bucket counts + moments), the unit the
        scatter-gather coordinator ships back from shard workers."""
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "bucket_counts": list(self.bucket_counts),
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
            }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one
        (bucket-wise sum; bounds must match)."""
        if list(state["buckets"]) != list(self.buckets):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched buckets"
            )
        with self._lock:
            self.bucket_counts = [
                mine + theirs
                for mine, theirs in zip(self.bucket_counts, state["bucket_counts"])
            ]
            self.count += state["count"]
            self.sum += state["sum"]
            self.min = min(self.min, state["min"])
            self.max = max(self.max, state["max"])

    def _reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * (len(self.buckets) + 1)
            self.count = 0
            self.sum = 0.0
            self.min = math.inf
            self.max = -math.inf


class MetricsRegistry:
    """Name+labels-keyed store of all platform metrics.

    Get-or-create runs under a registry lock so two threads asking for
    the same ``(name, labels)`` always share one handle — two distinct
    handles would silently split (and lose) increments.
    """

    def __init__(self) -> None:
        self._counters: dict[_MetricKey, Counter] = {}
        self._gauges: dict[_MetricKey, Gauge] = {}
        self._histograms: dict[_MetricKey, Histogram] = {}
        self._lock = threading.Lock()

    # -- handles ------------------------------------------------------------

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        """Get-or-create a counter; the handle survives :meth:`reset`."""
        key = (name, _label_key(labels))
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter(name, key[1])
            return self._counters[key]

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        """Get-or-create a gauge."""
        key = (name, _label_key(labels))
        with self._lock:
            if key not in self._gauges:
                self._gauges[key] = Gauge(name, key[1])
            return self._gauges[key]

    def histogram(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        """Get-or-create a histogram (buckets fixed on first creation)."""
        key = (name, _label_key(labels))
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = Histogram(name, key[1], buckets)
            return self._histograms[key]

    def histograms(self, name: str | None = None) -> list[Histogram]:
        """All registered histograms, optionally filtered by name."""
        with self._lock:
            candidates = list(self._histograms.values())
        return [h for h in candidates if name is None or h.name == name]

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every metric *in place* — existing handles stay valid."""
        with self._lock:
            metrics = (*self._counters.values(), *self._gauges.values(),
                       *self._histograms.values())
        for metric in metrics:
            metric._reset()

    # -- export -------------------------------------------------------------

    def counter_values(self) -> dict[str, float]:
        """Flat ``name{labels}`` -> value map of the counters only.

        Cheaper than :meth:`snapshot` (no histogram summaries), which
        matters to callers that sample around every span — the slow-span
        exemplar log takes one of these at span start and finish.
        """
        with self._lock:
            counters = list(self._counters.values())
        return {_flat_name(c.name, c.labels): c.value for c in counters}

    def counter_records(self) -> list[dict]:
        """Every non-zero counter as ``{name, labels, value}`` — the
        wire format shard workers ship their registry deltas in (a
        worker's registry starts from zero, so its cumulative values
        *are* the delta the coordinator must merge)."""
        with self._lock:
            counters = list(self._counters.values())
        return [
            {"name": c.name, "labels": list(c.labels), "value": c.value}
            for c in counters
            if c.value
        ]

    def merge_counter_records(self, records: list[dict]) -> None:
        """Add shipped :meth:`counter_records` into this registry."""
        for record in records:
            self.counter(record["name"], dict(record["labels"])).inc(record["value"])

    def histogram_records(self) -> list[dict]:
        """Every non-empty histogram as ``{name, labels, state}``."""
        with self._lock:
            histograms = list(self._histograms.values())
        return [
            {"name": h.name, "labels": list(h.labels), "state": h.state()}
            for h in histograms
            if h.count
        ]

    def merge_histogram_records(self, records: list[dict]) -> None:
        """Bucket-sum shipped :meth:`histogram_records` into this
        registry (creating histograms with the shipped bounds)."""
        for record in records:
            state = record["state"]
            hist = self.histogram(
                record["name"],
                dict(record["labels"]),
                buckets=tuple(state["buckets"]),
            )
            hist.merge_state(state)

    def snapshot(self) -> dict[str, dict]:
        """JSON-compatible dump of every metric's current value."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {_flat_name(c.name, c.labels): c.value for c in counters},
            "gauges": {_flat_name(g.name, g.labels): g.value for g in gauges},
            "histograms": {
                _flat_name(h.name, h.labels): h.summary() for h in histograms
            },
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every metric.

        Counters/gauges render as single samples; histograms render the
        classic ``_bucket``/``_sum``/``_count`` triplet with cumulative
        ``le`` buckets.
        """
        lines: list[str] = []
        seen_types: set[tuple[str, str]] = set()

        def type_line(name: str, kind: str) -> None:
            if (name, kind) not in seen_types:
                lines.append(f"# TYPE {name} {kind}")
                seen_types.add((name, kind))

        def label_str(labels: _LabelKey, extra: str = "") -> str:
            parts = [f'{k}="{_prom_escape(v)}"' for k, v in labels]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        for counter in sorted(counters, key=lambda c: (c.name, c.labels)):
            name = _prom_name(counter.name)
            type_line(name, "counter")
            lines.append(f"{name}{label_str(counter.labels)} {counter.value:g}")
        for gauge in sorted(gauges, key=lambda g: (g.name, g.labels)):
            name = _prom_name(gauge.name)
            type_line(name, "gauge")
            lines.append(f"{name}{label_str(gauge.labels)} {gauge.value:g}")
        for hist in sorted(histograms, key=lambda h: (h.name, h.labels)):
            name = _prom_name(hist.name)
            type_line(name, "histogram")
            with hist._lock:
                bucket_counts = list(hist.bucket_counts)
                hist_sum, hist_count = hist.sum, hist.count
            cumulative = 0
            for bound, in_bucket in zip(hist.buckets, bucket_counts):
                cumulative += in_bucket
                le = f'le="{bound:g}"'
                lines.append(f"{name}_bucket{label_str(hist.labels, le)} {cumulative}")
            cumulative += bucket_counts[-1]
            inf = 'le="+Inf"'
            lines.append(f"{name}_bucket{label_str(hist.labels, inf)} {cumulative}")
            lines.append(f"{name}_sum{label_str(hist.labels)} {hist_sum:g}")
            lines.append(f"{name}_count{label_str(hist.labels)} {hist_count}")
        return "\n".join(lines) + ("\n" if lines else "")


def counters_delta(before: dict[str, dict], after: dict[str, dict]) -> dict[str, float]:
    """Counter increments between two :meth:`MetricsRegistry.snapshot`
    calls — the per-phase view benchmarks isolate with."""
    b = before.get("counters", {})
    a = after.get("counters", {})
    out: dict[str, float] = {}
    for key, value in a.items():
        delta = value - b.get(key, 0.0)
        if delta:
            out[key] = delta
    return out
