"""Per-request resource accounting: cost ledgers and the usage table.

Latency histograms say *how long*; this module says *who spent what*.
A :class:`ResourceLedger` is opened per unit of work (one API request
in ``Router.dispatch``, or one bare ``TVDP.execute`` when no request is
active) and meters the resources the work touches:

* ``rows_scanned``      — rows materialised by ``repro.db`` reads
* ``probes.<family>``   — index probe work per index family (lsh,
  oriented, inverted, rtree, visual_rtree)
* ``feature_bytes``     — feature-vector bytes touched
* ``catalog_lookups``   — classification-catalog resolutions
* ``mem_peak_kb``       — tracemalloc peak delta (only metered while
  tracemalloc is already tracing, so the hot path stays cheap)

The ledger rides a ``contextvars`` variable — instrumented code calls
the module-level :func:`charge` helpers, which are a near-no-op when no
ledger is active.  On close, the charges roll up into a
:class:`UsageTable` under three aggregation keys: **principal** (the
API key's label), **query shape** (``repro.core.queries.query_shape``),
and **operation** (route or platform entry point).

The table is thread-safe, mergeable (shard workers return their tables
for coordinator :meth:`UsageTable.merge` — the strategy is registered
in ``tools/shard_safety_manifest.json``), and picklable (the lock is
dropped and recreated, like the index structures).  A configurable
:class:`Budget` turns per-principal rolling spend into *would-shed*
dry-run flags — the admission-control signal the serving arc will act
on, surfaced at ``GET /debug/resources`` without actually shedding
anything yet.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.metrics import MetricsRegistry

#: Weight of one unit of each charge kind in the scalar cost used for
#: budgets and "top consumer" ranking.  ``probes.<family>`` keys share
#: the ``probes`` weight; memory is observability, not admission cost.
COST_WEIGHTS = {
    "rows_scanned": 1.0,
    "probes": 1.0,
    "feature_bytes": 1.0 / 1024.0,
    "catalog_lookups": 1.0,
    "mem_peak_kb": 0.0,
}

#: Principal recorded for work that did not come through the API.
LOCAL_PRINCIPAL = "local"

#: The ledger of the current execution context (mirrors the tracer's
#: ``_current_span``: per-context, never a cross-worker merge target).
_ledger: contextvars.ContextVar["ResourceLedger | None"] = contextvars.ContextVar(
    "tvdp_ledger", default=None
)


def cost_of(charges: dict[str, float]) -> float:
    """Scalar cost of a charge dict under :data:`COST_WEIGHTS`."""
    total = 0.0
    for kind, amount in charges.items():
        key = "probes" if kind.startswith("probes.") else kind
        total += COST_WEIGHTS.get(key, 0.0) * amount
    return total


@dataclass(slots=True)
class ResourceLedger:
    """Mutable charge sheet for one unit of work.

    Owned by the single execution context that opened it (like an open
    :class:`~repro.obs.tracing.Span`), so ``add`` needs no lock; the
    thread-safety boundary is :meth:`UsageTable.absorb`.  Plain data
    throughout — a shard worker can pickle its ledger and ship it back
    to the coordinator.  Slotted: one ledger is created per request, on
    the serving hot path.
    """

    principal: str = LOCAL_PRINCIPAL
    operation: str | None = None
    shape: str | None = None
    trace_id: str | None = None
    charges: dict[str, float] = field(default_factory=dict)
    _mem_baseline: float | None = None

    def add(self, kind: str, amount: float = 1.0) -> None:
        """Charge ``amount`` units of ``kind`` to this ledger."""
        # Owned by one context until closed, like Span.set.
        self.charges[kind] = (  # devtools: allow[unlocked-mutation]
            self.charges.get(kind, 0.0) + amount
        )

    def annotate(
        self,
        principal: str | None = None,
        operation: str | None = None,
        shape: str | None = None,
        trace_id: str | None = None,
    ) -> None:
        """Fill aggregation keys as they become known (auth knows the
        principal, the platform knows the shape, the span the trace)."""
        if principal is not None:
            self.principal = principal
        if operation is not None:
            self.operation = operation
        if shape is not None:
            self.shape = shape
        if trace_id is not None:
            self.trace_id = trace_id

    def cost(self) -> float:
        """Scalar cost of everything charged so far."""
        return cost_of(self.charges)

    def snapshot(self) -> dict:
        """JSON-compatible record of the ledger (picklable as-is)."""
        return {
            "principal": self.principal,
            "operation": self.operation,
            "shape": self.shape,
            "trace_id": self.trace_id,
            "charges": dict(self.charges),
            "cost": round(self.cost(), 6),
        }

    # -- memory metering ----------------------------------------------------

    def _open_mem(self) -> None:
        if tracemalloc.is_tracing():
            self._mem_baseline = float(tracemalloc.get_traced_memory()[0])

    def _close_mem(self) -> None:
        if self._mem_baseline is not None and tracemalloc.is_tracing():
            peak = float(tracemalloc.get_traced_memory()[1])
            delta_kb = max(0.0, peak - self._mem_baseline) / 1024.0
            if delta_kb:
                self.add("mem_peak_kb", delta_kb)


def active_ledger() -> "ResourceLedger | None":
    """The open ledger of the current execution context, if any."""
    return _ledger.get()


def charge(kind: str, amount: float = 1.0) -> None:
    """Charge the active ledger; a near-no-op when none is open (and
    zero-amount charges never materialise an entry)."""
    if amount:
        ledger = _ledger.get()
        if ledger is not None:
            ledger.add(kind, amount)


def charge_probes(family: str, count: float) -> None:
    """Charge index-probe work for one index family."""
    if count:
        ledger = _ledger.get()
        if ledger is not None:
            ledger.add(f"probes.{family}", count)


class ledger_scope:
    """Open a fresh ledger for the block and absorb it into ``table``
    on exit (exceptions included — failed work still cost something).

    A plain class-based context manager rather than
    ``@contextlib.contextmanager``: one of these opens per serving
    request, and skipping the generator machinery keeps the fixed
    accounting cost a small fraction of request handling (gated by
    ``benchmarks/bench_obs_overhead.py``).
    """

    __slots__ = ("ledger", "_table", "_token")

    def __init__(
        self,
        table: "UsageTable | None" = None,
        principal: str = LOCAL_PRINCIPAL,
        operation: str | None = None,
        shape: str | None = None,
    ) -> None:
        self._table = table
        self.ledger = ResourceLedger(
            principal=principal, operation=operation, shape=shape
        )

    def __enter__(self) -> ResourceLedger:
        self.ledger._open_mem()
        self._token = _ledger.set(self.ledger)
        return self.ledger

    def __exit__(self, exc_type, exc, tb) -> bool:
        _ledger.reset(self._token)
        self.ledger._close_mem()
        if self._table is not None:
            self._table.absorb(self.ledger)
        return False


@contextlib.contextmanager
def maybe_ledger_scope(
    table: "UsageTable | None" = None,
    principal: str = LOCAL_PRINCIPAL,
    operation: str | None = None,
) -> Iterator[ResourceLedger]:
    """Yield the active ledger, or open one for the block when none is
    active.  Nested units of work (hybrid sub-queries, platform calls
    under an API request) charge their enclosing ledger instead of
    fragmenting the bill."""
    current = _ledger.get()
    if current is not None:
        yield current
        return
    with ledger_scope(table=table, principal=principal, operation=operation) as ledger:
        yield ledger


@dataclass(frozen=True)
class Budget:
    """Admission budget: cost units allowed per rolling window."""

    cost_per_window: float
    window_s: float = 60.0


def _merge_aggregate(target: dict, incoming: dict) -> None:
    """Fold one aggregate row into another (charge-sum strategy)."""
    target["count"] += incoming["count"]
    target["cost"] += incoming["cost"]
    for kind, amount in incoming["charges"].items():
        target["charges"][kind] = target["charges"].get(kind, 0.0) + amount
    if incoming["exemplar"] is not None and (
        target["exemplar"] is None
        or incoming["exemplar"]["cost"] > target["exemplar"]["cost"]
    ):
        target["exemplar"] = dict(incoming["exemplar"])


class UsageTable:
    """Thread-safe roll-up of closed ledgers by principal/shape/operation.

    ``registry`` (optional) receives ``usage.*`` metrics on every
    absorb: per-principal charge counters, a scalar ``usage.cost``
    counter, a ``usage.rolling_cost`` gauge, and a ``usage.would_shed``
    counter when the configured :class:`Budget` is exceeded.  The
    worst charge per aggregate keeps an exemplar ``trace_id`` so a
    spike in the metrics can be followed straight to its trace tree.

    ``clock`` is injectable (seconds, monotone) for deterministic
    rolling-window tests; shard merging uses :meth:`merge` with the
    ``charge-sum`` strategy registered in the shard-safety manifest.
    """

    #: Resolution of the default rolling window, in buckets.
    BUCKETS = 12
    #: Window used for rolling spend when no budget is configured.
    DEFAULT_WINDOW_S = 60.0
    #: Spend is always bucketed at this fixed granularity so what-if
    #: budgets with a different ``window_s`` read the same history.
    _BUCKET_S = DEFAULT_WINDOW_S / BUCKETS
    #: Pruning horizon (buckets kept): 20 minutes of spend history.
    _MAX_BUCKETS = 240

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        budget: Budget | None = None,
        clock=None,
    ) -> None:
        self._registry = registry
        self._budget = budget
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._by_principal: dict[str, dict] = {}
        self._by_shape: dict[str, dict] = {}
        self._by_operation: dict[str, dict] = {}
        #: principal -> {bucket index -> cost} for the rolling window.
        self._spend: dict[str, dict[int, float]] = {}
        #: principal -> interned metric handles; registry lookups hash
        #: the label dict every call, which is most of the absorb cost
        #: on the serving hot path.  Handles survive registry.reset().
        self._metric_handles: dict[str, dict] = {}

    # -- pickling (locks cannot cross process boundaries) --------------------

    def __getstate__(self) -> dict:
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        # Handles to another process's registry/clock are meaningless.
        state["_registry"] = None
        state["_clock"] = None
        state["_metric_handles"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        if self._clock is None:
            self._clock = time.monotonic

    # -- configuration -------------------------------------------------------

    def set_budget(self, budget: Budget | None) -> None:
        """Install (or clear) the admission budget for would-shed flags."""
        with self._lock:
            self._budget = budget

    def budget(self) -> Budget | None:
        with self._lock:
            return self._budget

    # -- ingestion -----------------------------------------------------------

    @staticmethod
    def _blank() -> dict:
        return {"count": 0, "cost": 0.0, "charges": {}, "exemplar": None}

    def _fold(self, table: dict, key: str, ledger_row: dict) -> None:
        row = table.get(key)
        if row is None:
            row = table[key] = self._blank()
        _merge_aggregate(row, ledger_row)

    @staticmethod
    def _fold_ledger(
        table: dict, key: str, cost: float, charges: dict, exemplar: dict | None
    ) -> None:
        """One-ledger fold specialised for the absorb hot path: no
        intermediate aggregate dict, charges copied only on first sight
        of a key (caller holds the lock)."""
        row = table.get(key)
        if row is None:
            table[key] = {
                "count": 1,
                "cost": cost,
                "charges": dict(charges),
                "exemplar": dict(exemplar) if exemplar else None,
            }
            return
        row["count"] += 1
        row["cost"] += cost
        row_charges = row["charges"]
        for kind, amount in charges.items():
            row_charges[kind] = row_charges.get(kind, 0.0) + amount
        if exemplar is not None and (
            row["exemplar"] is None or exemplar["cost"] > row["exemplar"]["cost"]
        ):
            row["exemplar"] = dict(exemplar)

    def absorb(self, ledger: ResourceLedger) -> None:
        """Fold one closed ledger into the aggregates (thread-safe)."""
        cost = ledger.cost()
        charges = ledger.charges
        exemplar = (
            {"cost": cost, "trace_id": ledger.trace_id} if ledger.trace_id else None
        )
        with self._lock:
            self._fold_ledger(
                self._by_principal, ledger.principal, cost, charges, exemplar
            )
            if ledger.shape:
                self._fold_ledger(self._by_shape, ledger.shape, cost, charges, exemplar)
            if ledger.operation:
                self._fold_ledger(
                    self._by_operation, ledger.operation, cost, charges, exemplar
                )
            self._note_spend(ledger.principal, cost)
            budget = self._budget
            if budget is not None:
                rolling = self._rolling_locked(ledger.principal, budget.window_s)
                shed = rolling > budget.cost_per_window
            else:
                rolling, shed = 0.0, False
        self._emit_metrics(ledger, cost, rolling, shed, budget)

    def _note_spend(self, principal: str, cost: float) -> None:
        """Record spend in the fixed-granularity buckets (caller holds
        the lock)."""
        bucket = int(self._clock() / self._BUCKET_S)
        buckets = self._spend.setdefault(principal, {})
        if bucket in buckets:
            buckets[bucket] += cost
        else:
            # Prune only when a new bucket opens (once per _BUCKET_S),
            # so steady-state absorbs never scan the bucket map.
            buckets[bucket] = cost
            floor = bucket - self._MAX_BUCKETS
            for stale in [b for b in buckets if b <= floor]:
                del buckets[stale]

    def _rolling_locked(self, principal: str, window_s: float) -> float:
        """Spend of ``principal`` over the trailing ``window_s`` seconds
        (caller holds the lock)."""
        span = max(1, int(round(window_s / self._BUCKET_S)))
        floor = int(self._clock() / self._BUCKET_S) - span
        return sum(
            cost
            for bucket, cost in self._spend.get(principal, {}).items()
            if bucket > floor
        )

    def _handles(self, principal: str) -> dict:
        """Interned metric handles for one principal (lazy).  Called
        outside the table lock; a race rebuilds the same handles — the
        registry get-or-creates, so both writers intern one Counter."""
        handles = self._metric_handles.get(principal)
        if handles is None:
            labels = {"principal": principal}
            handles = {
                "requests": self._registry.counter("usage.requests", labels),
                "cost": self._registry.counter("usage.cost", labels),
                "rolling": self._registry.gauge("usage.rolling_cost", labels),
                "shed": self._registry.counter("usage.would_shed", labels),
                "kinds": {},
            }
            # Benign interning race: both writers build identical
            # handles from the get-or-create registry.
            self._metric_handles[principal] = handles  # devtools: allow[unlocked-mutation, thread-escape]
        return handles

    def _emit_metrics(
        self,
        ledger: ResourceLedger,
        cost: float,
        rolling: float,
        shed: bool,
        budget: Budget | None,
    ) -> None:
        if self._registry is None:
            return
        handles = self._handles(ledger.principal)
        handles["requests"].inc()
        handles["cost"].inc(cost)
        kinds = handles["kinds"]
        for kind, amount in ledger.charges.items():
            counter = kinds.get(kind)
            if counter is None:
                name = (
                    "usage.index_probes"
                    if kind.startswith("probes.")
                    else f"usage.{kind}"
                )
                counter = self._registry.counter(
                    name, {"principal": ledger.principal}
                )
                kinds[kind] = counter  # devtools: allow[unlocked-mutation]
            counter.inc(amount)
        if budget is not None:
            handles["rolling"].set(rolling)
            if shed:
                handles["shed"].inc()

    # -- shard merge ---------------------------------------------------------

    def merge(self, other: "UsageTable") -> None:
        """Coordinator merge: sum the other table's aggregates and
        rolling spend into this one (``charge-sum`` strategy)."""
        with other._lock:
            theirs = (
                {k: dict(v, charges=dict(v["charges"])) for k, v in t.items()}
                for t in (other._by_principal, other._by_shape, other._by_operation)
            )
            their_principal, their_shape, their_operation = theirs
            their_spend = {p: dict(b) for p, b in other._spend.items()}
        with self._lock:
            for table, incoming in (
                (self._by_principal, their_principal),
                (self._by_shape, their_shape),
                (self._by_operation, their_operation),
            ):
                for key, row in incoming.items():
                    self._fold(table, key, row)
            for principal, buckets in their_spend.items():
                mine = self._spend.setdefault(principal, {})
                for bucket, cost in buckets.items():
                    mine[bucket] = mine.get(bucket, 0.0) + cost

    # -- reporting -----------------------------------------------------------

    def rolling_cost(self, principal: str, window_s: float | None = None) -> float:
        """Current rolling-window spend of one principal, over the
        configured budget's window (or :data:`DEFAULT_WINDOW_S`) unless
        ``window_s`` overrides it."""
        if window_s is None:
            budget = self.budget()
            window_s = (
                budget.window_s if budget is not None else self.DEFAULT_WINDOW_S
            )
        with self._lock:
            return self._rolling_locked(principal, window_s)

    def would_shed(self, budget: Budget | None = None) -> list[str]:
        """Principals whose rolling spend exceeds the budget (dry run —
        nothing is actually shed).  ``budget`` overrides the configured
        one for what-if evaluation."""
        budget = budget or self.budget()
        if budget is None:
            return []
        return sorted(
            principal
            for principal in self.principals()
            if self.rolling_cost(principal, budget.window_s)
            > budget.cost_per_window
        )

    def principals(self) -> list[str]:
        with self._lock:
            return sorted(self._by_principal)

    @staticmethod
    def _rows(table: dict, top: int | None) -> list[dict]:
        ranked = sorted(
            table.items(), key=lambda item: (-item[1]["cost"], item[0])
        )
        if top is not None:
            ranked = ranked[:top]
        return [
            {
                "key": key,
                "count": row["count"],
                "cost": round(row["cost"], 6),
                "charges": {k: round(v, 6) for k, v in sorted(row["charges"].items())},
                "exemplar": row["exemplar"],
            }
            for key, row in ranked
        ]

    def report(self, top: int | None = 10, budget: Budget | None = None) -> dict:
        """Top consumers by principal/shape/operation plus budget and
        would-shed dry-run state (the ``GET /debug/resources`` payload)."""
        with self._lock:
            by_principal = self._rows(self._by_principal, top)
            by_shape = self._rows(self._by_shape, top)
            by_operation = self._rows(self._by_operation, top)
        effective = budget or self.budget()
        return {
            "by_principal": by_principal,
            "by_shape": by_shape,
            "by_operation": by_operation,
            "budget": (
                {
                    "cost_per_window": effective.cost_per_window,
                    "window_s": effective.window_s,
                    "overridden": budget is not None,
                }
                if effective is not None
                else None
            ),
            "rolling_cost": {
                p: round(
                    self.rolling_cost(
                        p, effective.window_s if effective is not None else None
                    ),
                    6,
                )
                for p in self.principals()
            },
            "would_shed": self.would_shed(budget),
        }

    def reset(self) -> None:
        """Drop all aggregates and rolling spend (benchmark isolation);
        the configured budget survives."""
        with self._lock:
            self._by_principal.clear()
            self._by_shape.clear()
            self._by_operation.clear()
            self._spend.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_principal)
