"""Span-attached profiling hooks and the slow-span exemplar log.

Three opt-in tools that close the gap between "this span was slow" and
"here is why":

* :func:`profile_scope` — run ``cProfile`` around a block and attach
  the top functions (by cumulative time) to the active span, so one
  slow request carries its own flame summary.
* :func:`memory_scope` — sample ``tracemalloc`` around a block and
  attach the peak/net allocation to the active span.
* :class:`SlowSpanLog` — an always-on exporter keeping the N *worst*
  finished spans per operation, each with its full ancestry and the
  counter increments (index probes, cache hits, ...) that happened
  while it was open.  Queryable via ``obs.slow_spans()`` and served at
  ``GET /debug/slow``.

Everything is stdlib; the profilers cost nothing unless their context
managers are entered, and the slow-span log costs one counters-only
snapshot per span (see ``MetricsRegistry.counter_values``).
"""

from __future__ import annotations

import contextlib
import contextvars
import cProfile
import pstats
import threading
import tracemalloc
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, current_span

#: How many exemplar spans the log keeps per operation name.
DEFAULT_SLOW_SPANS_PER_OP = 8

#: Guards against nested :func:`profile_scope` blocks: whether some
#: Python version raises on a second ``Profile.enable()`` varies, so
#: nesting is detected explicitly and the inner scope degrades.
_profile_active: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "tvdp_profile_active", default=False
)


@dataclass
class ProfileResult:
    """Filled when :func:`profile_scope` exits."""

    top: list[dict] = field(default_factory=list)
    enabled: bool = True


@dataclass
class MemoryResult:
    """Filled when :func:`memory_scope` exits (kilobytes)."""

    peak_kb: float = 0.0
    net_kb: float = 0.0


@contextlib.contextmanager
def profile_scope(
    top: int = 10, sort: str = "cumulative"
) -> Iterator[ProfileResult]:
    """Opt-in cProfile around a block, results attached to the span.

    Yields a :class:`ProfileResult` whose ``top`` list is populated on
    exit with ``{"func", "ncalls", "tottime_ms", "cumtime_ms"}`` rows.
    If the active span exists, the same rows land in its
    ``profile.top`` attribute (and ``profile.sort`` records the order).
    When another profiler is already installed (nested scopes, foreign
    tooling), the scope degrades to a no-op with ``enabled=False``.
    """
    result = ProfileResult()
    if _profile_active.get():  # nested scope: inner degrades
        result.enabled = False
        yield result
        return
    profiler = cProfile.Profile()
    try:
        profiler.enable()
    except ValueError:  # a foreign profiler is active
        result.enabled = False
        yield result
        return
    token = _profile_active.set(True)
    try:
        yield result
    finally:
        _profile_active.reset(token)
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats(sort)
        for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
            cc, nc, tt, ct, _ = stats.stats[func]  # type: ignore[attr-defined]
            filename, line, name = func
            result.top.append(
                {
                    "func": f"{filename}:{line}({name})",
                    "ncalls": nc,
                    "tottime_ms": round(tt * 1e3, 3),
                    "cumtime_ms": round(ct * 1e3, 3),
                }
            )
        span = current_span()
        if span is not None:
            span.set("profile.top", result.top)
            span.set("profile.sort", sort)


@contextlib.contextmanager
def memory_scope() -> Iterator[MemoryResult]:
    """Opt-in tracemalloc peak sampling attached to the active span.

    ``peak_kb`` is the block's peak traced allocation, ``net_kb`` the
    allocation still live at exit.  Composes with an outer tracemalloc
    session: if tracing is already on, the peak counter is reset for
    the block and tracing is left running on exit.
    """
    result = MemoryResult()
    already_tracing = tracemalloc.is_tracing()
    if already_tracing:
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    try:
        yield result
    finally:
        current, peak = tracemalloc.get_traced_memory()
        result.peak_kb = round(peak / 1024.0, 3)
        result.net_kb = round((current - before) / 1024.0, 3)
        if not already_tracing:
            tracemalloc.stop()
        span = current_span()
        if span is not None:
            span.set("mem.peak_kb", result.peak_kb)
            span.set("mem.net_kb", result.net_kb)


class SlowSpanLog:
    """Worst-N finished spans per operation, with why-was-it-slow data.

    Registered on the tracer as an exporter; its ``on_start`` hook
    snapshots the registry's counters when a span opens so ``export``
    can record the increments the span's work produced.  Exemplar
    records are the span's ``to_dict`` plus ``counter_deltas`` —
    ancestry is already on the span itself.

    Mutated from whichever threads run spans, so every public method
    takes the log's lock (the ``unlocked-mutation`` lint enforces this
    for ``repro.obs``).
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        per_op: int = DEFAULT_SLOW_SPANS_PER_OP,
    ) -> None:
        if per_op < 1:
            raise ValueError(f"per_op must be >= 1, got {per_op}")
        self.registry = registry
        self.per_op = per_op
        self._worst: dict[str, list[dict]] = {}  # name -> records, slowest first
        self._inflight: dict[str, dict[str, float]] = {}  # span_id -> counters
        self._lock = threading.Lock()

    # -- tracer hooks -------------------------------------------------------

    def on_start(self, span: Span) -> None:
        """Snapshot counters so :meth:`export` can diff them."""
        if self.registry is None:
            return
        before = self.registry.counter_values()
        with self._lock:
            self._inflight[span.span_id] = before

    def export(self, span: Span) -> None:
        """Admit the finished span if it is among its op's N worst."""
        with self._lock:
            before = self._inflight.pop(span.span_id, None)
        deltas: dict[str, float] = {}
        if before is not None and self.registry is not None:
            after = self.registry.counter_values()
            for name, value in after.items():
                if name.startswith("spans."):
                    continue  # tracer bookkeeping, not the span's work
                delta = value - before.get(name, 0.0)
                if delta:
                    deltas[name] = delta
        record = {**span.to_dict(), "counter_deltas": deltas}
        with self._lock:
            worst = self._worst.setdefault(span.name, [])
            worst.append(record)
            worst.sort(key=lambda r: -r["duration_ms"])
            del worst[self.per_op:]

    # -- queries ------------------------------------------------------------

    def slowest(self, name: str | None = None, limit: int | None = None) -> list[dict]:
        """Exemplar records, slowest first; one op or all ops merged."""
        with self._lock:
            if name is not None:
                records = list(self._worst.get(name, ()))
            else:
                records = [r for worst in self._worst.values() for r in worst]
        records.sort(key=lambda r: -r["duration_ms"])
        if limit is not None:
            records = records[:limit]
        return records

    def operations(self) -> list[str]:
        """Every span name with at least one exemplar."""
        with self._lock:
            return sorted(self._worst)

    def clear(self) -> None:
        """Drop all exemplars and in-flight snapshots (bench isolation)."""
        with self._lock:
            self._worst.clear()
            self._inflight.clear()
