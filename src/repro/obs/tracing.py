"""Span-based tracing with ``contextvars`` parent/child propagation.

``span("query.spatial", attrs...)`` opens a timed unit of work; spans
started inside it become children, so one API request produces a tree
(request -> platform -> index) that the ring-buffer exporter can
reassemble.  Span names follow the ``<service>.<operation>`` convention
documented in ``docs/observability.md``.

Finished spans are fanned out to exporters (in-memory ring buffer by
default, JSON-lines file on request) and — when the tracer is wired to
a :class:`~repro.obs.metrics.MetricsRegistry` — recorded as
``span.duration_ms{span=<name>}`` latency histograms plus
``spans.total``/``spans.errors`` counters.  That single wiring is what
lets ``GET /metrics`` report latency summaries for every instrumented
operation without separate timing code.

Exporters that also define an ``on_start(span)`` method are called when
a span *opens* — the slow-span exemplar log in ``repro.obs.profiling``
uses this to snapshot counters before the work runs, so it can report
probe-counter deltas per slow span.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.metrics import MetricsRegistry

_ids = itertools.count(1)
_id_lock = threading.Lock()

#: The innermost open span of the current execution context.
_current_span: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "tvdp_current_span", default=None
)


def _next_id(prefix: str) -> str:
    with _id_lock:
        return f"{prefix}{next(_ids):08x}"


def current_span() -> "Span | None":
    """The active span, if any (used by the structured logger)."""
    return _current_span.get()


@dataclass(frozen=True)
class TraceContext:
    """The W3C-style propagation payload: which trace, which parent.

    This is the *only* state that crosses a process/HTTP/device
    boundary — a frozen two-field record, trivially picklable so shard
    workers can continue a coordinator's trace.
    """

    trace_id: str
    span_id: str


#: Version prefix / flags of the ``traceparent`` header we emit.  The
#: real W3C format is ``00-<32 hex>-<16 hex>-<flags>``; our ids keep
#: their native ``t…``/``s…`` shape (no dashes, so parsing is exact).
_TRACEPARENT_VERSION = "00"
_TRACEPARENT_FLAGS = "01"


def format_traceparent(context: TraceContext) -> str:
    """``traceparent`` header value for a trace context."""
    return (
        f"{_TRACEPARENT_VERSION}-{context.trace_id}-"
        f"{context.span_id}-{_TRACEPARENT_FLAGS}"
    )


def parse_traceparent(header: object) -> TraceContext | None:
    """Inverse of :func:`format_traceparent`; ``None`` on anything
    malformed (a bad header must never fail the request it rode in on)."""
    if not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, _flags = parts
    if version != _TRACEPARENT_VERSION or not trace_id or not span_id:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


def current_traceparent() -> str | None:
    """``traceparent`` header for the active span, if one is open."""
    span = _current_span.get()
    if span is None:
        return None
    return format_traceparent(TraceContext(span.trace_id, span.span_id))


@dataclass
class Span:
    """One timed operation; mutable while open, exported when closed."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    attrs: dict = field(default_factory=dict)
    start_time: float = 0.0  # epoch seconds
    duration_ms: float = 0.0
    status: str = "ok"
    error: str | None = None
    #: Names of the ancestors, root first (computed at open time, when
    #: the parent chain is still alive — parents *finish* after their
    #: children, so it cannot be rebuilt from finished spans alone).
    ancestry: tuple[str, ...] = ()

    def set(self, key: str, value: object) -> None:
        """Attach/overwrite one attribute.

        A span is owned by the single execution context that opened it
        until :meth:`Tracer.span` closes it, so attribute writes need
        no lock.
        """
        self.attrs[key] = value  # devtools: allow[unlocked-mutation, thread-escape]

    def to_dict(self) -> dict:
        """JSON-compatible record of a finished span."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
            "ancestry": list(self.ancestry),
        }


class RingBufferExporter:
    """Keeps the most recent finished spans in memory for inspection.

    Spans finish on whichever thread ran them, so the buffer is
    lock-protected (deque appends are GIL-atomic today, but the lock
    also makes :meth:`spans` snapshots consistent and is what the
    ``unlocked-mutation`` lint can verify statically).
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self, name: str | None = None) -> list[Span]:
        """Finished spans, oldest first, optionally filtered by name."""
        with self._lock:
            buffered = list(self._spans)
        if name is None:
            return buffered
        return [s for s in buffered if s.name == name]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def span_tree(self, trace_id: str | None = None) -> list[dict]:
        """Nested parent/child view of buffered spans.

        Returns the root spans (no parent in the buffer) of the given
        trace — or of every trace — each with a ``children`` list,
        depth-first in completion order.
        """
        return span_tree(
            [s for s in self.spans() if trace_id is None or s.trace_id == trace_id]
        )


def span_tree(spans: list[Span]) -> list[dict]:
    """Build nested dicts from flat finished spans (see ``Span.to_dict``;
    each node gains a ``children`` key)."""
    nodes = {s.span_id: {**s.to_dict(), "children": []} for s in spans}
    roots: list[dict] = []
    for s in spans:
        node = nodes[s.span_id]
        parent = nodes.get(s.parent_id) if s.parent_id else None
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


class JsonlExporter:
    """Appends one JSON object per finished span to a file."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._file = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        # This lock exists precisely to serialise writes to the one
        # shared file handle; it nests inside nothing and nothing
        # nests inside it, so holding it across the write is the point.
        with self._lock:
            self._file.write(line + "\n")  # devtools: allow[lock-order] — see above
            self._file.flush()  # devtools: allow[lock-order] — see above

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


class Tracer:
    """Opens spans, propagates parentage, exports on close.

    ``windows`` (a :class:`repro.obs.windows.RollingWindows`, duck-typed
    to avoid an import cycle) additionally receives every finished
    span's duration under its span name, giving rolling last-minute
    percentiles next to the cumulative histograms.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        exporters: list | None = None,
        windows: object | None = None,
    ) -> None:
        self.registry = registry
        self.windows = windows
        self.exporters: list = list(exporters or [])
        self._exporters_lock = threading.Lock()

    def add_exporter(self, exporter: object) -> None:
        with self._exporters_lock:
            self.exporters.append(exporter)

    def remove_exporter(self, exporter: object) -> None:
        with self._exporters_lock:
            if exporter in self.exporters:
                self.exporters.remove(exporter)

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        remote_parent: TraceContext | None = None,
        **attrs: object,
    ) -> Iterator[Span]:
        """Open a child of the current span (or a new trace root).

        ``remote_parent`` joins this span to a trace started elsewhere
        (an extracted ``traceparent`` header): with no local parent the
        span continues the remote trace instead of minting a new root.
        A live local parent wins — in-process nesting is already exact,
        and in the in-process client/server case both name the same
        parent span anyway.
        """
        parent = _current_span.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
            ancestry: tuple[str, ...] = (*parent.ancestry, parent.name)
        elif remote_parent is not None:
            trace_id, parent_id = remote_parent.trace_id, remote_parent.span_id
            ancestry = ()
        else:
            trace_id, parent_id, ancestry = _next_id("t"), None, ()
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=_next_id("s"),
            parent_id=parent_id,
            attrs=dict(attrs),
            start_time=time.time(),
            ancestry=ancestry,
        )
        with self._exporters_lock:
            exporters = tuple(self.exporters)
        for exporter in exporters:
            on_start = getattr(exporter, "on_start", None)
            if on_start is not None:
                on_start(span)
        token = _current_span.set(span)
        t0 = time.perf_counter()
        try:
            yield span
        except Exception as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.duration_ms = (time.perf_counter() - t0) * 1e3
            _current_span.reset(token)
            self._finish(span)

    def _finish(self, span: Span) -> None:
        if self.registry is not None:
            labels = {"span": span.name}
            self.registry.histogram("span.duration_ms", labels).observe(span.duration_ms)
            self.registry.counter("spans.total", labels).inc()
            if span.status == "error":
                self.registry.counter("spans.errors", labels).inc()
        if self.windows is not None:
            self.windows.observe(span.name, span.duration_ms)
        with self._exporters_lock:
            exporters = tuple(self.exporters)
        for exporter in exporters:
            exporter.export(span)
