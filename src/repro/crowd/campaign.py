"""Spatial-crowdsourcing campaigns and tasks.

A campaign ("a participant [creates] a data collection campaign for
certain types of visual data at specific locations") owns a target
region, a coverage goal, and a stream of point tasks derived from
coverage gaps.  Tasks carry an optional required viewing direction so
under-covered cells get filled from the directions they lack.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.errors import CrowdError
from repro.geo.point import BoundingBox, GeoPoint
from repro.crowd.coverage import DIRECTION_BUCKETS, CoverageReport

_task_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Task:
    """One capture request: go to ``location``, photograph toward
    ``direction_deg`` (None = any direction)."""

    task_id: int
    location: GeoPoint
    direction_deg: float | None
    campaign_id: int
    reward: float = 1.0


@dataclass
class Campaign:
    """A proactive collection effort over a region."""

    campaign_id: int
    owner: str
    region: BoundingBox
    description: str = ""
    target_coverage: float = 0.9
    min_directions: int = 2
    reward_per_task: float = 1.0
    open_tasks: list[Task] = field(default_factory=list)
    completed_tasks: list[Task] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not (0.0 < self.target_coverage <= 1.0):
            raise CrowdError(
                f"target_coverage must be in (0, 1], got {self.target_coverage}"
            )
        # Task lists are mutated by concurrent API requests (task
        # regeneration vs capture completion); every access goes
        # through a method holding this lock.
        self._lock = threading.RLock()

    def generate_tasks(
        self, report: CoverageReport, max_tasks: int | None = None
    ) -> list[Task]:
        """Turn coverage gaps into tasks.

        Uncovered cells get an any-direction task at their centre;
        under-covered cells get one task per missing direction bucket
        (capped by ``max_tasks``, nearest gaps first in grid order).
        """
        tasks: list[Task] = []
        uncovered = {(c.row, c.col) for c in report.uncovered_cells()}
        for cell in report.uncovered_cells():
            tasks.append(
                Task(
                    task_id=next(_task_ids),
                    location=cell.box.center,
                    direction_deg=None,
                    campaign_id=self.campaign_id,
                    reward=self.reward_per_task,
                )
            )
        for cell in report.under_covered_cells():
            if (cell.row, cell.col) in uncovered:
                continue  # already queued as an any-direction task
            for bucket in report.missing_directions(cell):
                direction = (bucket + 0.5) * (360.0 / DIRECTION_BUCKETS)
                tasks.append(
                    Task(
                        task_id=next(_task_ids),
                        location=cell.box.center,
                        direction_deg=direction,
                        campaign_id=self.campaign_id,
                        reward=self.reward_per_task,
                    )
                )
        if max_tasks is not None:
            tasks = tasks[:max_tasks]
        with self._lock:
            self.open_tasks.extend(tasks)
        return tasks

    def regenerate_tasks(
        self, report: CoverageReport, max_tasks: int | None = None
    ) -> list[Task]:
        """Atomically replace the open task list from a fresh coverage
        report — concurrent captures never observe a half-built list."""
        with self._lock:
            self.open_tasks.clear()
            return self.generate_tasks(report, max_tasks=max_tasks)

    def drop_open_tasks(self) -> None:
        """Discard tasks nobody reached; the next round's coverage
        report regenerates what still matters."""
        with self._lock:
            self.open_tasks.clear()

    def find_open(self, task_id: int) -> Task | None:
        """The open task with ``task_id``, or ``None``."""
        with self._lock:
            return next(
                (t for t in self.open_tasks if t.task_id == task_id), None
            )

    def complete(self, task: Task) -> None:
        """Mark a task completed."""
        with self._lock:
            try:
                self.open_tasks.remove(task)
            except ValueError as exc:
                raise CrowdError(f"task {task.task_id} is not open") from exc
            self.completed_tasks.append(task)

    @property
    def total_reward_paid(self) -> float:
        """Reward disbursed so far."""
        with self._lock:
            return sum(task.reward for task in self.completed_tasks)
