"""Spatial coverage measurement of geo-tagged visual data.

Implements the paper's adequacy check (Section III): after collection,
"the adequacy of the collected data should be evaluated by estimating
its coverage by utilizing its associated spatial metadata ... using the
spatial measurement models that consider the spatial properties of the
images (e.g., the spatial extent of a view and viewing direction)"
(ref. [17]).

The region is rasterised into grid cells; a cell is *covered* when some
FOV sector contains its centre, and *direction-covered* when sectors
from enough distinct compass directions do — seeing a street corner
only from the north is not the same as seeing all of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CrowdError
from repro.geo.fov import FieldOfView
from repro.geo.point import BoundingBox
from repro.geo.regions import GridCell, RegionGrid

#: Number of direction buckets for direction-aware coverage.
DIRECTION_BUCKETS = 8


@dataclass(frozen=True)
class CoverageReport:
    """Result of measuring a set of FOVs against a region grid."""

    grid: RegionGrid
    cell_hits: dict[tuple[int, int], int]
    cell_directions: dict[tuple[int, int], frozenset[int]]
    min_directions: int

    @property
    def coverage_ratio(self) -> float:
        """Fraction of cells seen by at least one FOV."""
        return len(self.cell_hits) / len(self.grid)

    @property
    def directional_coverage_ratio(self) -> float:
        """Fraction of cells seen from >= ``min_directions`` distinct
        compass directions."""
        good = sum(
            1
            for dirs in self.cell_directions.values()
            if len(dirs) >= self.min_directions
        )
        return good / len(self.grid)

    def uncovered_cells(self) -> list[GridCell]:
        """Cells nobody has photographed yet."""
        return [
            cell
            for cell in self.grid.cells()
            if (cell.row, cell.col) not in self.cell_hits
        ]

    def under_covered_cells(self) -> list[GridCell]:
        """Cells covered, but from too few directions (plus uncovered)."""
        out = []
        for cell in self.grid.cells():
            dirs = self.cell_directions.get((cell.row, cell.col), frozenset())
            if len(dirs) < self.min_directions:
                out.append(cell)
        return out

    def missing_directions(self, cell: GridCell) -> list[int]:
        """Direction buckets (0..7) not yet observed for ``cell``."""
        seen = self.cell_directions.get((cell.row, cell.col), frozenset())
        return [b for b in range(DIRECTION_BUCKETS) if b not in seen]


def direction_bucket(direction_deg: float) -> int:
    """Map a bearing into one of the eight 45-degree buckets."""
    return int((direction_deg % 360.0) // (360.0 / DIRECTION_BUCKETS))


def measure_coverage(
    fovs: list[FieldOfView],
    region: BoundingBox,
    rows: int = 16,
    cols: int = 16,
    min_directions: int = 2,
) -> CoverageReport:
    """Rasterise FOVs over a grid and report coverage statistics."""
    if min_directions < 1 or min_directions > DIRECTION_BUCKETS:
        raise CrowdError(
            f"min_directions must be in [1, {DIRECTION_BUCKETS}], got {min_directions}"
        )
    grid = RegionGrid(region, rows, cols)
    hits: dict[tuple[int, int], int] = {}
    directions: dict[tuple[int, int], set[int]] = {}
    for fov in fovs:
        bucket = direction_bucket(fov.direction_deg)
        for cell in grid.cells_intersecting(fov.mbr()):
            if fov.contains_point(cell.box.center):
                key = (cell.row, cell.col)
                hits[key] = hits.get(key, 0) + 1
                directions.setdefault(key, set()).add(bucket)
    return CoverageReport(
        grid=grid,
        cell_hits=hits,
        cell_directions={k: frozenset(v) for k, v in directions.items()},
        min_directions=min_directions,
    )
