"""Task-assignment algorithms for spatial crowdsourcing.

Three strategies in the spirit of GeoCrowd (ref. [12]) and the
scalable distributed study (ref. [13]):

* ``greedy``  — repeatedly match the globally closest (worker, task)
  pair; strong quality, O(W*T) per match.
* ``nearest`` — each worker grabs their nearest unclaimed task in
  worker order; fast, slightly worse travel cost.
* ``partitioned`` — split the region into a grid of sub-problems and run
  greedy inside each partition; this is the "distributed" strategy that
  scales to city-level instances with near-greedy quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CrowdError
from repro.geo.geodesy import haversine_m
from repro.geo.point import BoundingBox
from repro.geo.regions import RegionGrid
from repro.crowd.campaign import Task
from repro.crowd.workers import Worker


@dataclass(frozen=True, slots=True)
class Assignment:
    """One matched pair with its travel cost."""

    worker: Worker
    task: Task
    distance_m: float


@dataclass(frozen=True)
class AssignmentResult:
    """All matches plus summary statistics."""

    assignments: list[Assignment]
    unassigned_tasks: list[Task]

    @property
    def total_distance_m(self) -> float:
        return sum(a.distance_m for a in self.assignments)

    @property
    def mean_distance_m(self) -> float:
        if not self.assignments:
            return 0.0
        return self.total_distance_m / len(self.assignments)


def _greedy_match(
    workers: list[Worker], tasks: list[Task], per_worker: int, max_distance_m: float
) -> tuple[list[Assignment], list[Task]]:
    budget = {w.worker_id: per_worker for w in workers}
    position = {w.worker_id: w.location for w in workers}
    open_tasks = list(tasks)
    matches: list[Assignment] = []
    while open_tasks and any(budget.values()):
        best: tuple[float, Worker, Task] | None = None
        for worker in workers:
            if budget[worker.worker_id] == 0:
                continue
            for task in open_tasks:
                distance = haversine_m(position[worker.worker_id], task.location)
                if distance > max_distance_m:
                    continue
                if best is None or distance < best[0]:
                    best = (distance, worker, task)
        if best is None:
            break
        distance, worker, task = best
        matches.append(Assignment(worker=worker, task=task, distance_m=distance))
        budget[worker.worker_id] -= 1
        position[worker.worker_id] = task.location
        open_tasks.remove(task)
    return matches, open_tasks


def assign_greedy(
    workers: list[Worker],
    tasks: list[Task],
    per_worker: int = 5,
    max_distance_m: float = float("inf"),
) -> AssignmentResult:
    """Globally greedy nearest-pair matching."""
    if per_worker < 1:
        raise CrowdError(f"per_worker must be >= 1, got {per_worker}")
    matches, leftover = _greedy_match(workers, tasks, per_worker, max_distance_m)
    return AssignmentResult(assignments=matches, unassigned_tasks=leftover)


def assign_nearest(
    workers: list[Worker],
    tasks: list[Task],
    per_worker: int = 5,
    max_distance_m: float = float("inf"),
) -> AssignmentResult:
    """Each worker (in id order) repeatedly claims its nearest task."""
    if per_worker < 1:
        raise CrowdError(f"per_worker must be >= 1, got {per_worker}")
    open_tasks = list(tasks)
    matches: list[Assignment] = []
    for worker in sorted(workers, key=lambda w: w.worker_id):
        location = worker.location
        for _ in range(per_worker):
            if not open_tasks:
                break
            nearest = min(open_tasks, key=lambda t: haversine_m(location, t.location))
            distance = haversine_m(location, nearest.location)
            if distance > max_distance_m:
                break
            matches.append(Assignment(worker=worker, task=nearest, distance_m=distance))
            location = nearest.location
            open_tasks.remove(nearest)
    return AssignmentResult(assignments=matches, unassigned_tasks=open_tasks)


def assign_partitioned(
    workers: list[Worker],
    tasks: list[Task],
    region: BoundingBox,
    partitions: int = 2,
    per_worker: int = 5,
    max_distance_m: float = float("inf"),
) -> AssignmentResult:
    """Grid-partitioned greedy: the distributed strategy of ref. [13].

    Workers and tasks are bucketed by partition cell; greedy runs
    independently per cell (parallelisable in a real deployment), and a
    final greedy pass over leftovers handles cross-partition matches.
    """
    if partitions < 1:
        raise CrowdError(f"partitions must be >= 1, got {partitions}")
    grid = RegionGrid(region, partitions, partitions)

    def bucket_of(point):
        cell = grid.cell_of(point)
        return (cell.row, cell.col) if cell else None

    worker_buckets: dict[object, list[Worker]] = {}
    task_buckets: dict[object, list[Task]] = {}
    for worker in workers:
        worker_buckets.setdefault(bucket_of(worker.location), []).append(worker)
    for task in tasks:
        task_buckets.setdefault(bucket_of(task.location), []).append(task)

    matches: list[Assignment] = []
    leftover_tasks: list[Task] = []
    used_budget: dict[int, int] = {w.worker_id: 0 for w in workers}
    for key, bucket_tasks in task_buckets.items():
        bucket_workers = worker_buckets.get(key, [])
        local, remaining = _greedy_match(
            bucket_workers, bucket_tasks, per_worker, max_distance_m
        )
        matches.extend(local)
        for assignment in local:
            used_budget[assignment.worker.worker_id] += 1
        leftover_tasks.extend(remaining)

    # Cross-partition cleanup with remaining budget.
    if leftover_tasks:
        residual_workers = [
            w for w in workers if used_budget[w.worker_id] < per_worker
        ]
        # Respect per-worker budgets already consumed.
        extra, still_open = _greedy_match(
            residual_workers,
            leftover_tasks,
            per_worker,
            max_distance_m,
        )
        trimmed: list[Assignment] = []
        for assignment in extra:
            wid = assignment.worker.worker_id
            if used_budget[wid] < per_worker:
                trimmed.append(assignment)
                used_budget[wid] += 1
            else:
                still_open.append(assignment.task)
        matches.extend(trimmed)
        leftover_tasks = still_open
    return AssignmentResult(assignments=matches, unassigned_tasks=leftover_tasks)
