"""Spatial crowdsourcing: campaigns, workers, assignment, coverage."""

from repro.crowd.coverage import (
    DIRECTION_BUCKETS,
    CoverageReport,
    direction_bucket,
    measure_coverage,
)
from repro.crowd.campaign import Campaign, Task
from repro.crowd.workers import Worker, WorkerPool
from repro.crowd.assignment import (
    Assignment,
    AssignmentResult,
    assign_greedy,
    assign_nearest,
    assign_partitioned,
)
from repro.crowd.iterate import (
    IterativeCampaignResult,
    RoundStats,
    run_iterative_campaign,
)

__all__ = [
    "DIRECTION_BUCKETS",
    "CoverageReport",
    "direction_bucket",
    "measure_coverage",
    "Task",
    "Campaign",
    "Worker",
    "WorkerPool",
    "Assignment",
    "AssignmentResult",
    "assign_greedy",
    "assign_nearest",
    "assign_partitioned",
    "IterativeCampaignResult",
    "RoundStats",
    "run_iterative_campaign",
]
