"""Simulated crowd workers with MediaQ-style capture behaviour.

Each worker has a position and capture hardware parameters; performing
a task moves the worker there and emits an FOV record with realistic
sensor noise (GPS jitter, compass error) — the metadata a MediaQ-like
mobile app would attach to the captured frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CrowdError
from repro.geo.fov import FieldOfView
from repro.geo.geodesy import destination_point, haversine_m, initial_bearing_deg
from repro.geo.point import BoundingBox, GeoPoint
from repro.crowd.campaign import Task


@dataclass
class Worker:
    """One crowd participant."""

    worker_id: int
    location: GeoPoint
    speed_mps: float = 1.4  # walking speed
    camera_angle_deg: float = 60.0
    camera_range_m: float = 120.0
    gps_noise_m: float = 5.0
    compass_noise_deg: float = 8.0
    #: Distance scale of task acceptance: acceptance probability decays
    #: as exp(-distance / acceptance_radius_m).  Crowd workers decline
    #: far-away tasks — the incentive reality refs [12]/[13] model.
    acceptance_radius_m: float = 2_000.0
    distance_travelled_m: float = 0.0
    captures: int = 0
    declined: int = 0

    def travel_time_to(self, point: GeoPoint) -> float:
        """Seconds to reach ``point`` at walking speed."""
        return haversine_m(self.location, point) / self.speed_mps

    def acceptance_probability(self, point: GeoPoint) -> float:
        """Probability this worker accepts a task at ``point``."""
        distance = haversine_m(self.location, point)
        return float(np.exp(-distance / max(self.acceptance_radius_m, 1e-9)))

    def accepts(self, task: Task, rng: np.random.Generator) -> bool:
        """Sample the accept/decline decision for a task offer."""
        if rng.random() < self.acceptance_probability(task.location):
            return True
        self.declined += 1
        return False

    def perform(self, task: Task, rng: np.random.Generator) -> FieldOfView:
        """Move to the task location and capture: returns the recorded
        FOV (with sensor noise applied)."""
        self.distance_travelled_m += haversine_m(self.location, task.location)
        self.location = task.location
        self.captures += 1
        noisy_camera = destination_point(
            task.location,
            float(rng.uniform(0.0, 360.0)),
            abs(float(rng.normal(0.0, self.gps_noise_m))),
        )
        if task.direction_deg is not None:
            direction = task.direction_deg
        elif noisy_camera != task.location:
            # "Photograph this spot": aim at the task location from
            # wherever GPS noise actually placed the camera.
            direction = initial_bearing_deg(noisy_camera, task.location)
        else:
            direction = float(rng.uniform(0.0, 360.0))
        noisy_direction = direction + float(rng.normal(0.0, self.compass_noise_deg))
        return FieldOfView(
            camera=noisy_camera,
            direction_deg=noisy_direction,
            angle_deg=self.camera_angle_deg,
            range_m=self.camera_range_m,
        )


@dataclass
class WorkerPool:
    """A population of workers scattered over a region."""

    workers: list[Worker] = field(default_factory=list)

    @classmethod
    def spawn(
        cls, n: int, region: BoundingBox, seed: int = 0, **worker_kwargs
    ) -> "WorkerPool":
        """Create ``n`` workers uniformly distributed over ``region``."""
        if n < 1:
            raise CrowdError(f"need at least 1 worker, got {n}")
        rng = np.random.default_rng(seed)
        workers = [
            Worker(
                worker_id=i + 1,
                location=GeoPoint(
                    float(rng.uniform(region.min_lat, region.max_lat)),
                    float(rng.uniform(region.min_lng, region.max_lng)),
                ),
                **worker_kwargs,
            )
            for i in range(n)
        ]
        return cls(workers=workers)

    def __len__(self) -> int:
        return len(self.workers)

    def total_distance_m(self) -> float:
        """Aggregate distance travelled by all workers."""
        return sum(w.distance_travelled_m for w in self.workers)
