"""Iterative spatial crowdsourcing toward a coverage target.

The paper's acquisition loop: collect, measure coverage, campaign for
the gaps, repeat — "iterative spatial crowdsourcing can be performed
towards assuring the sufficiency of the available data".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CrowdError
from repro.geo.fov import FieldOfView
from repro.crowd.assignment import assign_greedy
from repro.crowd.campaign import Campaign
from repro.crowd.coverage import measure_coverage
from repro.crowd.workers import WorkerPool


@dataclass(frozen=True)
class RoundStats:
    """What one campaign round achieved."""

    round_index: int
    tasks_issued: int
    tasks_completed: int
    coverage_ratio: float
    directional_coverage_ratio: float
    distance_travelled_m: float


@dataclass
class IterativeCampaignResult:
    """Full history of an iterative campaign."""

    campaign: Campaign
    fovs: list[FieldOfView]
    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def final_coverage(self) -> float:
        return self.rounds[-1].coverage_ratio if self.rounds else 0.0

    @property
    def total_tasks_completed(self) -> int:
        return sum(r.tasks_completed for r in self.rounds)


def run_iterative_campaign(
    campaign: Campaign,
    pool: WorkerPool,
    initial_fovs: list[FieldOfView] | None = None,
    grid_rows: int = 12,
    grid_cols: int = 12,
    max_rounds: int = 10,
    tasks_per_round: int | None = None,
    per_worker: int = 8,
    seed: int = 0,
    simulate_declines: bool = False,
) -> IterativeCampaignResult:
    """Run collect-measure-campaign rounds until the coverage target
    (or the round limit) is reached.

    Returns the collected FOVs (passively collected ones included) and
    per-round statistics — the series the acquisition bench plots.
    """
    if max_rounds < 1:
        raise CrowdError(f"max_rounds must be >= 1, got {max_rounds}")
    rng = np.random.default_rng(seed)
    fovs: list[FieldOfView] = list(initial_fovs or [])
    result = IterativeCampaignResult(campaign=campaign, fovs=fovs)

    for round_index in range(1, max_rounds + 1):
        report = measure_coverage(
            fovs,
            campaign.region,
            rows=grid_rows,
            cols=grid_cols,
            min_directions=campaign.min_directions,
        )
        if report.coverage_ratio >= campaign.target_coverage:
            break
        distance_before = pool.total_distance_m()
        tasks = campaign.generate_tasks(report, max_tasks=tasks_per_round)
        assignment = assign_greedy(pool.workers, tasks, per_worker=per_worker)
        completed = 0
        for match in assignment.assignments:
            if simulate_declines and not match.worker.accepts(match.task, rng):
                continue
            fov = match.worker.perform(match.task, rng)
            fovs.append(fov)
            campaign.complete(match.task)
            completed += 1
        # Tasks nobody reached stay open for the next round's report to
        # regenerate; drop them from the queue to avoid double-issuing.
        campaign.drop_open_tasks()
        after = measure_coverage(
            fovs,
            campaign.region,
            rows=grid_rows,
            cols=grid_cols,
            min_directions=campaign.min_directions,
        )
        result.rounds.append(
            RoundStats(
                round_index=round_index,
                tasks_issued=len(tasks),
                tasks_completed=completed,
                coverage_ratio=after.coverage_ratio,
                directional_coverage_ratio=after.directional_coverage_ratio,
                distance_travelled_m=pool.total_distance_m() - distance_before,
            )
        )
        if completed == 0:
            break  # no worker can make progress; avoid spinning
    return result
