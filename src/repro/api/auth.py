"""API-key management.

"Users can create API keys to use TVDP features."  Keys live in the
``api_keys`` table; every service request must present an active key.
"""

from __future__ import annotations

import hashlib
import secrets
import threading

from repro.errors import AuthenticationError, QueryError
from repro.db.database import Database


def principal_label(api_key: str | None) -> str:
    """Stable, non-secret label identifying the caller for accounting.

    Uses a key prefix rather than the full key so usage reports and
    ``usage.*`` metric labels never carry a whole credential;
    unauthenticated traffic (open routes) is pooled under
    ``"anonymous"``.
    """
    if not api_key:
        return "anonymous"
    return f"key:{api_key[:8]}"


class ApiKeyManager:
    """Issue, validate, and revoke API keys against the database."""

    def __init__(self, db: Database, deterministic_seed: int | None = None) -> None:
        self._db = db
        self._lock = threading.Lock()
        self._counter = 0
        self._seed = deterministic_seed

    def _generate(self) -> str:
        if self._seed is not None:
            # Deterministic keys for reproducible examples and tests;
            # the counter bump is atomic so concurrent issues never
            # mint the same key.
            with self._lock:
                self._counter += 1
                material = f"tvdp-{self._seed}-{self._counter}".encode()
            return hashlib.sha256(material).hexdigest()[:40]
        # API keys must be unpredictable; the seeded branch above
        # exists for reproducible runs.
        # devtools: allow[determinism] — entropy is the point here
        return secrets.token_hex(20)

    def issue(self, user_id: int, created_at: float = 0.0) -> str:
        """Create an active key for a user; returns the key string."""
        key = self._generate()
        self._db.insert(
            "api_keys",
            {
                "user_id": user_id,
                "key": key,
                "created_at": float(created_at),
                "active": True,
            },
        )
        return key

    def validate(self, key: str | None) -> int:
        """User id for an active key; raises AuthenticationError otherwise."""
        if not key:
            raise AuthenticationError("missing API key")
        rows = self._db.table("api_keys").find("key", key)
        if not rows or not rows[0]["active"]:
            raise AuthenticationError("invalid or revoked API key")
        return rows[0]["user_id"]

    def revoke(self, key: str) -> None:
        """Deactivate a key."""
        rows = self._db.table("api_keys").find("key", key)
        if not rows:
            raise QueryError("cannot revoke unknown key")
        self._db.table("api_keys").update(rows[0]["key_id"], {"active": False})

    def keys_of(self, user_id: int) -> list[str]:
        """Active keys belonging to a user."""
        return [
            row["key"]
            for row in self._db.table("api_keys").all_rows()
            if row["user_id"] == user_id and row["active"]
        ]
