"""Minimal in-process HTTP abstraction.

The real TVDP exposes RESTful web services; this environment has no
network, so requests and responses are plain objects dispatched through
a router with the same shape (methods, path templates with ``{param}``
segments, query params, JSON bodies, status codes).  Everything above
this module — service handlers, the client library — would port to a
real WSGI stack unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import APIError


@dataclass
class Request:
    """One API call."""

    method: str
    path: str
    params: dict = field(default_factory=dict)  # query parameters
    body: dict | None = None  # JSON payload
    api_key: str | None = None
    path_params: dict = field(default_factory=dict)  # filled by the router
    user_id: int | None = None  # filled by the auth layer


@dataclass(frozen=True)
class Response:
    """One API reply: status code plus JSON-compatible body."""

    status: int
    body: dict

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


Handler = Callable[[Request], Response]


def _match(template: str, path: str) -> dict | None:
    """Match ``/a/{x}/b`` templates; returns path params or ``None``."""
    t_parts = [p for p in template.split("/") if p]
    p_parts = [p for p in path.split("/") if p]
    if len(t_parts) != len(p_parts):
        return None
    params: dict = {}
    for t, p in zip(t_parts, p_parts):
        if t.startswith("{") and t.endswith("}"):
            params[t[1:-1]] = p
        elif t != p:
            return None
    return params


class Router:
    """Method+path-template dispatch with error mapping.

    Handler exceptions deriving from :class:`APIError` become their
    status code; anything else becomes a 500 (surfacing the message —
    acceptable for an in-process reproduction, not for production).
    """

    def __init__(self) -> None:
        self._routes: list[tuple[str, str, Handler]] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        """Register a handler for ``method template``."""
        self._routes.append((method.upper(), template, handler))

    def route(self, method: str, template: str) -> Callable[[Handler], Handler]:
        """Decorator form of :meth:`add`."""

        def decorator(handler: Handler) -> Handler:
            self.add(method, template, handler)
            return handler

        return decorator

    def routes(self) -> list[str]:
        """``"METHOD /template"`` strings for every registered route."""
        return sorted(f"{method} {template}" for method, template, _ in self._routes)

    def dispatch(self, request: Request) -> Response:
        """Find and invoke the matching handler."""
        method = request.method.upper()
        saw_path = False
        for route_method, template, handler in self._routes:
            params = _match(template, request.path)
            if params is None:
                continue
            saw_path = True
            if route_method != method:
                continue
            request.path_params = params
            try:
                return handler(request)
            except APIError as exc:
                return Response(status=exc.status, body={"error": exc.message})
            except Exception as exc:  # noqa: BLE001 - boundary translation
                return Response(status=500, body={"error": str(exc)})
        if saw_path:
            return Response(status=405, body={"error": f"method {method} not allowed"})
        return Response(status=404, body={"error": f"no route for {request.path}"})
