"""Minimal in-process HTTP abstraction.

The real TVDP exposes RESTful web services; this environment has no
network, so requests and responses are plain objects dispatched through
a router with the same shape (methods, path templates with ``{param}``
segments, query params, JSON bodies, status codes).  Everything above
this module — service handlers, the client library — would port to a
real WSGI stack unchanged.

The router doubles as the platform's per-request middleware: every
dispatch gets a request id, runs inside an ``http.request`` span, is
timed into an ``api.request_ms{method,route}`` histogram, and bumps
``api.requests{method,route,status}``; handler failures additionally
bump ``api.errors{route,exception}`` and come back as structured error
bodies (see :func:`error_body`).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.api.auth import principal_label
from repro.errors import APIError

_log = obs.get_logger("api.http")

_request_ids = itertools.count(1)
_request_id_lock = threading.Lock()


def new_request_id() -> str:
    """Process-unique request id attached to every dispatched request."""
    with _request_id_lock:
        return f"req-{next(_request_ids):06d}"


def error_body(
    message: str,
    exc_type: str,
    status: int,
    request_id: str | None,
    trace_id: str | None = None,
) -> dict:
    """The structured error envelope every failing route returns.

    ``trace_id`` links the error to its span tree so a failing call can
    be followed straight to ``GET /debug/trace/<trace_id>``.
    """
    return {
        "error": {
            "message": message,
            "type": exc_type,
            "status": status,
            "request_id": request_id,
            "trace_id": trace_id,
        }
    }


@dataclass
class Request:
    """One API call."""

    method: str
    path: str
    params: dict = field(default_factory=dict)  # query parameters
    body: dict | None = None  # JSON payload
    api_key: str | None = None
    headers: dict = field(default_factory=dict)  # e.g. traceparent
    path_params: dict = field(default_factory=dict)  # filled by the router
    user_id: int | None = None  # filled by the auth layer
    request_id: str | None = None  # filled by the middleware


@dataclass(frozen=True)
class Response:
    """One API reply: status code plus JSON-compatible body.

    Routes that speak a non-JSON wire format (the Prometheus text
    exposition) set ``text`` and a matching ``content_type``; ``body``
    stays an empty dict for those responses.
    """

    status: int
    body: dict
    content_type: str = "application/json"
    text: str | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


Handler = Callable[[Request], Response]


def _match(template: str, path: str) -> dict | None:
    """Match ``/a/{x}/b`` templates; returns path params or ``None``."""
    t_parts = [p for p in template.split("/") if p]
    p_parts = [p for p in path.split("/") if p]
    if len(t_parts) != len(p_parts):
        return None
    params: dict = {}
    for t, p in zip(t_parts, p_parts):
        if t.startswith("{") and t.endswith("}"):
            params[t[1:-1]] = p
        elif t != p:
            return None
    return params


class Router:
    """Method+path-template dispatch with error mapping and metrics.

    Handler exceptions deriving from :class:`APIError` become their
    status code; anything else becomes a 500 (surfacing the message —
    acceptable for an in-process reproduction, not for production).
    """

    def __init__(self) -> None:
        self._routes: list[tuple[str, str, Handler]] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        """Register a handler for ``method template``."""
        self._routes.append((method.upper(), template, handler))

    def route(self, method: str, template: str) -> Callable[[Handler], Handler]:
        """Decorator form of :meth:`add`."""

        def decorator(handler: Handler) -> Handler:
            self.add(method, template, handler)
            return handler

        return decorator

    def routes(self) -> list[str]:
        """``"METHOD /template"`` strings for every registered route."""
        return sorted(f"{method} {template}" for method, template, _ in self._routes)

    def dispatch(self, request: Request) -> Response:
        """Find and invoke the matching handler (with the middleware)."""
        if request.request_id is None:
            request.request_id = new_request_id()
        method = request.method.upper()
        # An inbound ``traceparent`` header joins this request to the
        # caller's trace; the ledger bills the whole dispatch (handler,
        # platform work, index probes) to the presented API key.
        remote_parent = obs.parse_traceparent(request.headers.get("traceparent"))
        with obs.ledger_scope(
            table=obs.usage(), principal=principal_label(request.api_key)
        ) as ledger:
            with obs.span(
                "http.request",
                remote_parent=remote_parent,
                method=method,
                path=request.path,
                request_id=request.request_id,
            ) as sp:
                ledger.annotate(trace_id=sp.trace_id)
                route_label, response = self._dispatch_inner(request, method, sp)
                sp.set("route", route_label)
                sp.set("status", response.status)
            # The route label is only known after matching; annotate
            # before the scope closes so the bill lands on the route.
            ledger.annotate(operation=f"{method} {route_label}")
        registry = obs.metrics()
        registry.counter(
            "api.requests",
            {"method": method, "route": route_label, "status": str(response.status)},
        ).inc()
        registry.histogram(
            "api.request_ms", {"method": method, "route": route_label}
        ).observe(sp.duration_ms)
        return response

    def _dispatch_inner(
        self, request: Request, method: str, sp: obs.Span
    ) -> tuple[str, Response]:
        """Route + invoke; returns the route label (template or a
        placeholder for unmatched paths) and the response."""
        saw_path = False
        for route_method, template, handler in self._routes:
            params = _match(template, request.path)
            if params is None:
                continue
            saw_path = True
            if route_method != method:
                continue
            request.path_params = params
            try:
                return template, handler(request)
            except APIError as exc:
                self._count_error(template, exc)
                return template, Response(
                    status=exc.status,
                    body=error_body(
                        exc.message, type(exc).__name__, exc.status,
                        request.request_id, trace_id=sp.trace_id,
                    ),
                )
            except Exception as exc:  # noqa: BLE001 - boundary translation
                self._count_error(template, exc)
                _log.exception(
                    "unhandled error on %s %s (%s)", method, template, request.request_id
                )
                return template, Response(
                    status=500,
                    body=error_body(
                        str(exc), type(exc).__name__, 500,
                        request.request_id, trace_id=sp.trace_id,
                    ),
                )
        if saw_path:
            return request.path, Response(
                status=405,
                body=error_body(
                    f"method {method} not allowed", "MethodNotAllowed", 405,
                    request.request_id, trace_id=sp.trace_id,
                ),
            )
        return "<unmatched>", Response(
            status=404,
            body=error_body(
                f"no route for {request.path}", "NotFound", 404,
                request.request_id, trace_id=sp.trace_id,
            ),
        )

    @staticmethod
    def _count_error(route: str, exc: Exception) -> None:
        obs.metrics().counter(
            "api.errors", {"route": route, "exception": type(exc).__name__}
        ).inc()
