"""Cross-platform client library for the TVDP API.

"More programming experienced users can directly access APIs through
cross-platform client libraries" — this is that library.  It speaks to
a :class:`~repro.api.service.TVDPService` instance in-process, but its
surface is exactly what an HTTP client would expose — including the
failure handling a real network client needs: transient errors and
server-side (5xx) responses retry with seeded backoff behind a shared
circuit breaker, while client errors (4xx) surface immediately and are
never retried.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import APIError, FaultInjected, TVDPError
from repro.api.http import Request, Response
from repro.api.service import TVDPService, image_to_payload
from repro.geo.fov import FieldOfView
from repro.imaging.image import Image
from repro.resilience import Clock, Retry, current_clock, get_breaker, inject

#: Fault-injection site for client request dispatch.
REQUEST_SITE = "api.request"

#: Errors a client request retries: injected chaos, link failures, and
#: 5xx responses (re-raised as :class:`APIError` inside the attempt; a
#: 4xx never reaches the retry loop).
_CLIENT_TRANSIENT = (APIError, FaultInjected, ConnectionError, TimeoutError)


def _error_message(response: Response) -> str:
    error = response.body.get("error", "API error")
    if isinstance(error, dict):  # structured envelope from the middleware
        message = error.get("message", "API error")
        request_id = error.get("request_id")
        if request_id:
            message = f"{message} (request {request_id})"
        return str(message)
    return str(error)


class TVDPClient:
    """Typed convenience wrapper over the service routes."""

    def __init__(
        self,
        service: TVDPService,
        api_key: str | None = None,
        clock: Clock | None = None,
        max_attempts: int = 3,
        seed: int = 0,
        breaker_name: str = "api.client",
    ) -> None:
        self._service = service
        self.api_key = api_key
        self._clock = clock
        self._max_attempts = max_attempts
        self._seed = seed
        self._breaker_name = breaker_name

    # -- transport --------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        params: dict | None = None,
    ) -> Response:
        """Dispatch one request and raise :class:`APIError` on failure,
        returning the raw response (non-JSON routes need its
        ``text``/``content_type``).

        Server-side failures (5xx, dead links, injected faults) retry
        through the client's circuit breaker; 4xx responses raise
        without a retry — repeating a bad request cannot fix it.
        """
        clock = current_clock(self._clock)
        breaker = get_breaker(
            self._breaker_name, failure_on=(TVDPError,), clock=self._clock
        )

        def one_attempt() -> Response:
            inject(REQUEST_SITE, clock)
            # Each attempt is one client span; the outbound traceparent
            # header is what a real HTTP client would put on the wire,
            # so the server's http.request span joins this trace even
            # across a process boundary.
            with obs.span("client.request", method=method, path=path) as sp:
                response: Response = self._service.handle(
                    Request(
                        method=method,
                        path=path,
                        body=body,
                        params=params or {},
                        api_key=self.api_key,
                        headers={"traceparent": obs.current_traceparent()},
                    )
                )
                sp.set("status", response.status)
            if response.status >= 500:
                raise APIError(response.status, _error_message(response))
            return response

        retry = Retry(
            max_attempts=self._max_attempts,
            base_delay_s=0.05,
            retry_on=_CLIENT_TRANSIENT,
            seed=self._seed,
            clock=clock,
            site=REQUEST_SITE,
        )
        response = retry.call(lambda: breaker.call(one_attempt))
        if not response.ok:
            raise APIError(response.status, _error_message(response))
        return response

    def _call(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        params: dict | None = None,
    ) -> dict:
        return self._request(method, path, body, params).body

    # -- account -----------------------------------------------------------------

    def register_user(self, name: str, role: str, organization: str | None = None) -> int:
        """Create a user; does not require a key."""
        body = self._call(
            "POST", "/users", {"name": name, "role": role, "organization": organization}
        )
        return body["user_id"]

    def create_key(self, user_id: int, adopt: bool = True) -> str:
        """Issue an API key; ``adopt=True`` uses it for future calls."""
        key = self._call("POST", "/keys", {"user_id": user_id})["api_key"]
        if adopt:
            self.api_key = key
        return key

    # -- data ---------------------------------------------------------------------

    def add_image(
        self,
        image: Image,
        fov: FieldOfView,
        captured_at: float,
        uploaded_at: float,
        keywords: tuple[str, ...] = (),
    ) -> dict:
        """API 1: upload one geo-tagged image."""
        return self._call(
            "POST",
            "/images",
            {
                "image": image_to_payload(image),
                "fov": fov.to_dict(),
                "captured_at": captured_at,
                "uploaded_at": uploaded_at,
                "keywords": list(keywords),
            },
        )

    def get_image(self, image_id: int, include_pixels: bool = False) -> dict:
        """API 3: download an image's metadata (and optionally pixels)."""
        return self._call(
            "GET",
            f"/images/{image_id}",
            params={"include_pixels": include_pixels} if include_pixels else {},
        )

    def search(self, query_spec: dict) -> list[dict]:
        """API 2: run any query; see the service docs for the spec."""
        return self._call("POST", "/search", query_spec)["results"]

    def get_features(self, extractor: str, image: Image | None = None, image_id: int | None = None) -> np.ndarray:
        """API 4: feature vector for an uploaded image or raw pixels."""
        body: dict = {}
        if image is not None:
            body["image"] = image_to_payload(image)
        if image_id is not None:
            body["image_id"] = image_id
        result = self._call("POST", f"/features/{extractor}", body)
        return np.array(result["vector"], dtype=np.float64)

    # -- models --------------------------------------------------------------------

    def devise_model(
        self,
        name: str,
        extractor: str,
        classification: str,
        classifier: str = "svm",
        description: str = "",
    ) -> str:
        """API 7: declare a new shared model."""
        return self._call(
            "POST",
            "/models",
            {
                "name": name,
                "extractor": extractor,
                "classification": classification,
                "classifier": classifier,
                "description": description,
            },
        )["model"]

    def train_model(self, name: str, source: str = "human", min_confidence: float = 0.0) -> int:
        """Train a devised model on the platform's annotations."""
        body = self._call(
            "POST",
            f"/models/{name}/train",
            {"source": source, "min_confidence": min_confidence},
        )
        return body["trained_on"]

    def predict(
        self,
        name: str,
        image: Image | None = None,
        image_id: int | None = None,
        vector: np.ndarray | None = None,
        annotate: bool = False,
    ) -> dict:
        """API 5: run a hosted model."""
        body: dict = {"annotate": annotate}
        if image is not None:
            body["image"] = image_to_payload(image)
        if image_id is not None:
            body["image_id"] = image_id
        if vector is not None:
            body["vector"] = np.asarray(vector, dtype=np.float64).tolist()
        return self._call("POST", f"/models/{name}/predict", body)

    def download_model(self, name: str) -> dict:
        """API 6: fetch a portable serialisation for edge execution."""
        return self._call("GET", f"/models/{name}/download")

    # -- annotations ------------------------------------------------------------------

    def define_classification(
        self, name: str, labels: list[str], description: str = ""
    ) -> int:
        """Create a shared label vocabulary."""
        body = self._call(
            "POST",
            "/classifications",
            {"name": name, "labels": labels, "description": description},
        )
        return body["classification_id"]

    def annotate(
        self,
        image_id: int,
        classification: str,
        label: str,
        confidence: float = 1.0,
        source: str = "human",
        annotator: str | None = None,
    ) -> int:
        """Attach a label to a stored image."""
        body = self._call(
            "POST",
            f"/images/{image_id}/annotations",
            {
                "classification": classification,
                "label": label,
                "confidence": confidence,
                "source": source,
                "annotator": annotator,
            },
        )
        return body["annotation_id"]

    def annotations_of(self, image_id: int) -> list[dict]:
        """Shared knowledge attached to one image."""
        return self._call("GET", f"/images/{image_id}/annotations")["annotations"]

    # -- crowdsourcing -----------------------------------------------------------------

    def create_campaign(self, region: dict, **settings) -> int:
        """Open a spatial-crowdsourcing campaign over a region dict
        (``min_lat``/``min_lng``/``max_lat``/``max_lng``)."""
        return self._call("POST", "/campaigns", {"region": region, **settings})[
            "campaign_id"
        ]

    def campaign_tasks(self, campaign_id: int, max_tasks: int | None = None) -> dict:
        """Coverage report + open tasks for a campaign's gaps."""
        params = {"max_tasks": max_tasks} if max_tasks else {}
        return self._call("GET", f"/campaigns/{campaign_id}/tasks", params=params)

    def submit_capture(
        self,
        campaign_id: int,
        task_id: int,
        image: Image,
        fov: FieldOfView,
        captured_at: float,
    ) -> dict:
        """Fulfil one campaign task with a capture."""
        return self._call(
            "POST",
            f"/campaigns/{campaign_id}/captures",
            {
                "task_id": task_id,
                "image": image_to_payload(image),
                "fov": fov.to_dict(),
                "captured_at": captured_at,
            },
        )

    def stats(self) -> dict:
        """Platform statistics."""
        return self._call("GET", "/stats")

    def metrics(self, prometheus: bool = False) -> dict | str:
        """Observability: the platform's metrics registry snapshot, or
        the Prometheus text exposition when ``prometheus=True`` (served
        as ``text/plain; version=0.0.4``, not a JSON envelope)."""
        if prometheus:
            response = self._request(
                "GET", "/metrics", params={"format": "prometheus"}
            )
            return response.text or ""
        return self._call("GET", "/metrics")["metrics"]

    def health(self) -> dict:
        """SLO health report: ``{"status", "objectives"}`` with
        per-objective burn ratios (see ``repro.obs.slo``)."""
        return self._call("GET", "/health")

    def slow_spans(self, op: str | None = None, limit: int | None = None) -> dict:
        """Slow-span exemplars from ``GET /debug/slow`` (worst spans per
        operation with ancestry and probe-counter deltas)."""
        params: dict = {}
        if op is not None:
            params["op"] = op
        if limit is not None:
            params["limit"] = limit
        return self._call("GET", "/debug/slow", params=params)

    def hot_queries(self, limit: int | None = None) -> dict:
        """Hot-query report from ``GET /debug/hot``: normalized query
        shapes ranked by frequency then total time."""
        params = {"limit": limit} if limit is not None else {}
        return self._call("GET", "/debug/hot", params=params)

    def resources(
        self,
        top: int | None = None,
        budget: float | None = None,
        window_s: float | None = None,
    ) -> dict:
        """Resource-usage report from ``GET /debug/resources``: top
        consumers by principal/shape/operation, rolling spend, and
        would-shed dry-run flags.  ``budget``/``window_s`` evaluate a
        what-if admission budget without configuring one."""
        params: dict = {}
        if top is not None:
            params["top"] = top
        if budget is not None:
            params["budget"] = budget
        if window_s is not None:
            params["window_s"] = window_s
        return self._call("GET", "/debug/resources", params=params)

    def trace(self, trace_id: str) -> dict:
        """Reassembled span tree for one trace from ``GET
        /debug/trace/{trace_id}`` (404 once evicted from the ring
        buffer)."""
        return self._call("GET", f"/debug/trace/{trace_id}")

    def explain(self, query_spec: dict, analyze: bool = True) -> dict:
        """EXPLAIN (ANALYZE) a search query spec via ``GET
        /debug/explain``: ``{"plan": <nested dict>, "rendered": <str>}``
        with per-node rows/timing/probe deltas when ``analyze``."""
        return self._call(
            "GET",
            "/debug/explain",
            body=query_spec,
            params={"analyze": "1" if analyze else "0"},
        )
