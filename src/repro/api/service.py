"""The TVDP REST service: the paper's seven common APIs over a router.

Routes (all except user creation require an API key):

* ``POST /users``                       — register a participant
* ``POST /keys``                        — issue an API key
* ``POST /images``                      — (1) add new data
* ``POST /search``                      — (2) search datasets
* ``GET  /images/{id}``                 — (3) download data/metadata
* ``POST /features/{extractor}``        — (4) get visual features
* ``POST /models/{name}/predict``       — (5) use ML models
* ``GET  /models/{name}/download``      — (6) download ML models
* ``POST /models``                      — (7) devise new ML models
* ``POST /models/{name}/train``         — train a devised model
* ``GET  /stats``                       — platform statistics

Plus the Acquisition/Analysis extensions:

* ``POST /classifications``             — define a label vocabulary
* ``POST /images/{id}/annotations``     — attach a label
* ``GET  /images/{id}/annotations``     — read shared knowledge
* ``POST /campaigns``                   — open a crowdsourcing campaign
* ``GET  /campaigns/{id}/tasks``        — tasks for current coverage gaps
* ``POST /campaigns/{id}/captures``     — submit a task's capture

Observability:

* ``GET  /metrics``                     — metrics snapshot (JSON by
  default; ``?format=prometheus`` for the text exposition format,
  served as ``text/plain; version=0.0.4``)
* ``GET  /health``                      — SLO evaluation: overall
  ``ok|degraded|failing`` plus per-objective burn ratios
* ``GET  /debug/slow``                  — slow-span exemplars (worst
  spans per operation with ancestry and probe-counter deltas;
  ``?op=<span name>`` and ``?limit=<n>`` filter)
* ``GET  /debug/hot``                   — hot-query report: normalized
  query shapes ranked by frequency then total time (``?limit=<n>``)
* ``GET  /debug/explain``               — EXPLAIN for a query spec in
  the request body; ``?analyze=1`` (the default) also executes it and
  fills per-plan-node rows, timing, and probe-counter deltas
* ``GET  /debug/resources``             — resource accounting: top
  consumers by principal/query shape/operation, rolling spend, and
  budget would-shed dry-run flags (``?top=``, ``?budget=``,
  ``?window_s=`` for what-if budgets)
* ``GET  /debug/trace/{trace_id}``      — the reassembled span tree of
  one trace (404 once evicted from the ring buffer)
"""

from __future__ import annotations

import threading

import numpy as np

from repro import obs
from repro.errors import APIError, FeatureError, QueryError, TVDPError
from repro.api.auth import ApiKeyManager
from repro.api.http import Request, Response, Router, error_body, new_request_id
from repro.api.modelstore import ModelRecord, ModelStore, serialize_classifier
from repro.core.platform import TVDP
from repro.crowd.campaign import Campaign
from repro.crowd.coverage import measure_coverage
from repro.core.queries import (
    CategoricalQuery,
    HybridQuery,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    VisualQuery,
)
from repro.geo.fov import FieldOfView
from repro.geo.point import BoundingBox, GeoPoint
from repro.imaging.image import Image
from repro.ml.linear import LogisticRegression
from repro.ml.svm import LinearSVM

_log = obs.get_logger("api.service")

#: What untrusted payload parsing can legitimately raise: missing keys,
#: wrong shapes/types, bad numeric values, and domain validation errors.
#: Anything else (AttributeError, MemoryError, ...) is a bug and must
#: propagate to the router's 500 boundary handler instead of being
#: rebranded as a client error.
_PAYLOAD_ERRORS = (KeyError, TypeError, ValueError, TVDPError)


def image_to_payload(image: Image) -> dict:
    """JSON-compatible encoding of an image (8-bit nested lists)."""
    return {"pixels_u8": image.to_uint8().tolist()}


def image_from_payload(payload: dict) -> Image:
    """Inverse of :func:`image_to_payload`."""
    if "pixels_u8" not in payload:
        raise APIError(400, "image payload missing 'pixels_u8'")
    try:
        return Image.from_uint8(np.array(payload["pixels_u8"], dtype=np.uint8))
    except _PAYLOAD_ERRORS as exc:
        _log.debug("rejected image payload", exc_info=True)
        raise APIError(400, f"bad image payload: {exc}") from exc


_CLASSIFIER_FACTORIES = {
    "svm": lambda: LinearSVM(epochs=40),
    "logistic_regression": lambda: LogisticRegression(epochs=60),
}


class TVDPService:
    """HTTP-style facade over a :class:`TVDP` platform instance."""

    def __init__(self, platform: TVDP, deterministic_keys: bool = False) -> None:
        self.platform = platform
        self.keys = ApiKeyManager(
            platform.db, deterministic_seed=0 if deterministic_keys else None
        )
        self.models = ModelStore()
        self.router = Router()
        # Campaign registry is mutated by concurrent requests; id
        # allocation and insertion happen together under this lock.
        self._lock = threading.RLock()
        self._campaigns: dict[int, Campaign] = {}
        self._next_campaign_id = 1
        self._register_routes()

    # -- plumbing ---------------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Entry point: authenticate (except open routes) and dispatch."""
        if request.request_id is None:
            request.request_id = new_request_id()
        open_routes = {
            ("POST", "/users"),
            ("POST", "/keys"),
            ("GET", "/metrics"),
            ("GET", "/health"),  # load balancers probe without credentials
        }
        if (request.method.upper(), request.path) not in open_routes:
            try:
                request.user_id = self.keys.validate(request.api_key)
            except APIError as exc:
                obs.metrics().counter(
                    "api.errors",
                    {"route": request.path, "exception": type(exc).__name__},
                ).inc()
                return Response(
                    status=exc.status,
                    body=error_body(
                        exc.message,
                        type(exc).__name__,
                        exc.status,
                        request.request_id,
                    ),
                )
        return self.router.dispatch(request)

    def _body(self, request: Request) -> dict:
        if request.body is None:
            raise APIError(400, "request body required")
        return request.body

    def _register_routes(self) -> None:
        route = self.router.route
        route("POST", "/users")(self._create_user)
        route("POST", "/keys")(self._create_key)
        route("POST", "/images")(self._add_image)
        route("GET", "/images/{image_id}")(self._get_image)
        route("POST", "/search")(self._search)
        route("POST", "/features/{extractor}")(self._features)
        route("POST", "/models")(self._devise_model)
        route("POST", "/models/{name}/train")(self._train_model)
        route("POST", "/models/{name}/predict")(self._predict)
        route("GET", "/models/{name}/download")(self._download_model)
        route("GET", "/stats")(self._stats)
        route("GET", "/metrics")(self._metrics)
        route("GET", "/health")(self._health)
        route("GET", "/debug/slow")(self._debug_slow)
        route("GET", "/debug/hot")(self._debug_hot)
        route("GET", "/debug/explain")(self._debug_explain)
        route("GET", "/debug/resources")(self._debug_resources)
        route("GET", "/debug/trace/{trace_id}")(self._debug_trace)
        route("POST", "/classifications")(self._define_classification)
        route("POST", "/images/{image_id}/annotations")(self._add_annotation)
        route("GET", "/images/{image_id}/annotations")(self._list_annotations)
        route("GET", "/routes")(self._list_routes)
        route("POST", "/campaigns")(self._create_campaign)
        route("GET", "/campaigns/{campaign_id}/tasks")(self._campaign_tasks)
        route("POST", "/campaigns/{campaign_id}/captures")(self._campaign_capture)

    # -- open routes ------------------------------------------------------------

    def _create_user(self, request: Request) -> Response:
        body = self._body(request)
        if "name" not in body or "role" not in body:
            raise APIError(400, "user needs 'name' and 'role'")
        user_id = self.platform.add_user(
            body["name"], body["role"], body.get("organization")
        )
        return Response(201, {"user_id": user_id})

    def _create_key(self, request: Request) -> Response:
        body = self._body(request)
        if "user_id" not in body:
            raise APIError(400, "'user_id' required")
        try:
            key = self.keys.issue(int(body["user_id"]))
        except TVDPError as exc:
            raise APIError(404, str(exc)) from exc
        return Response(201, {"api_key": key})

    # -- API 1: add new data -------------------------------------------------------

    def _add_image(self, request: Request) -> Response:
        body = self._body(request)
        for required in ("image", "fov", "captured_at", "uploaded_at"):
            if required not in body:
                raise APIError(400, f"missing field {required!r}")
        try:
            fov = FieldOfView.from_dict(body["fov"])
        except _PAYLOAD_ERRORS as exc:
            _log.debug("rejected fov payload", exc_info=True)
            raise APIError(400, f"bad fov: {exc}") from exc
        receipt = self.platform.upload_image(
            image=image_from_payload(body["image"]),
            fov=fov,
            captured_at=float(body["captured_at"]),
            uploaded_at=float(body["uploaded_at"]),
            keywords=tuple(body.get("keywords", ())),
            uploader_id=request.user_id,
        )
        return Response(
            201 if not receipt.deduplicated else 200,
            {"image_id": receipt.image_id, "deduplicated": receipt.deduplicated},
        )

    # -- API 3: download data -----------------------------------------------------

    def _get_image(self, request: Request) -> Response:
        try:
            image_id = int(request.path_params["image_id"])
        except ValueError as exc:
            raise APIError(400, "image id must be an integer") from exc
        try:
            row = self.platform.db.table("images").get(image_id)
        except TVDPError as exc:
            raise APIError(404, str(exc)) from exc
        body: dict = {"metadata": row}
        if request.params.get("include_pixels"):
            body["image"] = image_to_payload(self.platform.image(image_id))
        return Response(200, body)

    # -- API 2: search --------------------------------------------------------------

    def _parse_query(self, spec: dict) -> object:
        kind = spec.get("type")
        try:
            if kind == "spatial":
                region = (
                    BoundingBox.from_dict(spec["region"]) if "region" in spec else None
                )
                point = (
                    GeoPoint.from_dict(spec["point"]) if "point" in spec else None
                )
                return SpatialQuery(
                    region=region,
                    point=point,
                    radius_m=spec.get("radius_m"),
                    mode=spec.get("mode", "scene"),
                    direction_deg=spec.get("direction_deg"),
                    direction_tolerance_deg=spec.get("direction_tolerance_deg", 45.0),
                )
            if kind == "visual":
                example = (
                    image_from_payload(spec["example"]) if "example" in spec else None
                )
                vector = (
                    np.array(spec["vector"], dtype=np.float64)
                    if "vector" in spec
                    else None
                )
                return VisualQuery(
                    extractor_name=spec["extractor"],
                    example=example,
                    vector=vector,
                    k=int(spec.get("k", 10)),
                    max_distance=spec.get("max_distance"),
                )
            if kind == "categorical":
                return CategoricalQuery(
                    classification=spec["classification"],
                    labels=tuple(spec["labels"]),
                    min_confidence=float(spec.get("min_confidence", 0.0)),
                    source=spec.get("source"),
                )
            if kind == "textual":
                return TextualQuery(
                    text=spec["text"], match=spec.get("match", "any")
                )
            if kind == "temporal":
                return TemporalQuery(
                    start=spec.get("start"),
                    end=spec.get("end"),
                    field=spec.get("field", "timestamp_capturing"),
                )
            if kind == "hybrid":
                return HybridQuery(
                    queries=tuple(self._parse_query(s) for s in spec["queries"])
                )
        except (KeyError, QueryError, TVDPError) as exc:
            raise APIError(400, f"bad query: {exc}") from exc
        raise APIError(400, f"unknown query type {kind!r}")

    def _search(self, request: Request) -> Response:
        query = self._parse_query(self._body(request))
        try:
            results = self.platform.execute(query)
        except QueryError as exc:
            raise APIError(409, str(exc)) from exc
        return Response(
            200,
            {
                "results": [
                    {"image_id": r.image_id, "score": r.score} for r in results
                ]
            },
        )

    # -- API 4: get visual features ---------------------------------------------------

    def _features(self, request: Request) -> Response:
        extractor_name = request.path_params["extractor"]
        body = self._body(request)
        try:
            extractor = self.platform.features.get(extractor_name)
        except FeatureError as exc:
            raise APIError(404, str(exc)) from exc
        if "image" in body:
            vector = extractor.extract(image_from_payload(body["image"]))
        elif "image_id" in body:
            try:
                vector = self.platform.feature_vector(
                    int(body["image_id"]), extractor_name
                )
            except TVDPError as exc:
                raise APIError(404, str(exc)) from exc
        else:
            raise APIError(400, "provide 'image' or 'image_id'")
        return Response(200, {"vector": vector.tolist(), "dimension": len(vector)})

    # -- APIs 5-7: models ----------------------------------------------------------------

    def _devise_model(self, request: Request) -> Response:
        body = self._body(request)
        for required in ("name", "extractor", "classification", "classifier"):
            if required not in body:
                raise APIError(400, f"missing field {required!r}")
        if body["classifier"] not in _CLASSIFIER_FACTORIES:
            raise APIError(
                400,
                f"unknown classifier {body['classifier']!r}; "
                f"available: {sorted(_CLASSIFIER_FACTORIES)}",
            )
        if body["extractor"] not in self.platform.features:
            raise APIError(404, f"unknown extractor {body['extractor']!r}")
        record = ModelRecord(
            name=body["name"],
            extractor_name=body["extractor"],
            classification=body["classification"],
            owner_id=request.user_id,
            classifier=_CLASSIFIER_FACTORIES[body["classifier"]](),
            description=body.get("description", ""),
        )
        self.models.register(record)
        return Response(201, {"model": record.name})

    def _train_model(self, request: Request) -> Response:
        record = self.models.get(request.path_params["name"])
        body = self._body(request)
        source = body.get("source", "human")
        min_confidence = float(body.get("min_confidence", 0.0))
        labels = self.platform.catalog.labels(record.classification)
        X_rows, y_rows = [], []
        for label in labels:
            hits = self.platform.annotations.images_with_label(
                record.classification, (label,), min_confidence, source=source
            )
            for image_id in hits:
                vector = self.platform.feature_vector(image_id, record.extractor_name)
                X_rows.append(vector)
                y_rows.append(label)
        if len(set(y_rows)) < 2:
            raise APIError(
                409, "need annotated images from at least two labels to train"
            )
        X = np.vstack(X_rows)
        y = np.array(y_rows)
        record.train(X, y)
        return Response(200, {"model": record.name, "trained_on": int(X.shape[0])})

    def _predict(self, request: Request) -> Response:
        record = self.models.get(request.path_params["name"])
        body = self._body(request)
        if "image" in body:
            extractor = self.platform.features.get(record.extractor_name)
            vector = extractor.extract(image_from_payload(body["image"]))
        elif "vector" in body:
            vector = np.array(body["vector"], dtype=np.float64)
        elif "image_id" in body:
            vector = self.platform.feature_vector(
                int(body["image_id"]), record.extractor_name
            )
        else:
            raise APIError(400, "provide 'image', 'vector', or 'image_id'")
        try:
            label, confidence = record.predict_one(vector)
        except TVDPError as exc:
            raise APIError(409, f"model not ready: {exc}") from exc
        annotated = False
        if body.get("annotate") and "image_id" in body:
            self.platform.annotations.annotate(
                int(body["image_id"]),
                record.classification,
                str(label),
                confidence=confidence,
                source="machine",
                annotator=record.name,
            )
            annotated = True
        return Response(
            200,
            {"label": str(label), "confidence": confidence, "annotated": annotated},
        )

    def _download_model(self, request: Request) -> Response:
        record = self.models.get(request.path_params["name"])
        payload = serialize_classifier(record.classifier)
        payload["extractor"] = record.extractor_name
        payload["classification"] = record.classification
        return Response(200, payload)

    # -- classifications & annotations --------------------------------------------------

    def _define_classification(self, request: Request) -> Response:
        body = self._body(request)
        if "name" not in body or "labels" not in body:
            raise APIError(400, "classification needs 'name' and 'labels'")
        try:
            cid = self.platform.catalog.define(
                body["name"],
                list(body["labels"]),
                description=body.get("description", ""),
                owner_id=request.user_id,
            )
        except QueryError as exc:
            raise APIError(400, str(exc)) from exc
        return Response(201, {"classification_id": cid})

    def _add_annotation(self, request: Request) -> Response:
        body = self._body(request)
        try:
            image_id = int(request.path_params["image_id"])
        except ValueError as exc:
            raise APIError(400, "image id must be an integer") from exc
        for required in ("classification", "label"):
            if required not in body:
                raise APIError(400, f"missing field {required!r}")
        try:
            annotation_id = self.platform.annotations.annotate(
                image_id,
                body["classification"],
                body["label"],
                confidence=float(body.get("confidence", 1.0)),
                source=body.get("source", "human"),
                annotator=body.get("annotator"),
                created_at=float(body.get("created_at", 0.0)),
                bbox=body.get("bbox"),
            )
        except (QueryError, TVDPError) as exc:
            raise APIError(400, str(exc)) from exc
        return Response(201, {"annotation_id": annotation_id})

    def _list_annotations(self, request: Request) -> Response:
        try:
            image_id = int(request.path_params["image_id"])
        except ValueError as exc:
            raise APIError(400, "image id must be an integer") from exc
        annotations = self.platform.annotations.annotations_of(image_id)
        return Response(
            200,
            {
                "annotations": [
                    {
                        "annotation_id": a.annotation_id,
                        "classification": a.classification,
                        "label": a.label,
                        "confidence": a.confidence,
                        "source": a.source,
                        "annotator": a.annotator,
                    }
                    for a in annotations
                ]
            },
        )

    def _list_routes(self, request: Request) -> Response:
        """API discovery: every route the service exposes."""
        return Response(200, {"routes": self.router.routes()})

    # -- crowdsourcing campaigns ---------------------------------------------------------

    def _create_campaign(self, request: Request) -> Response:
        body = self._body(request)
        if "region" not in body:
            raise APIError(400, "campaign needs a 'region'")
        with self._lock:
            try:
                region = BoundingBox.from_dict(body["region"])
                campaign = Campaign(
                    campaign_id=self._next_campaign_id,
                    owner=str(request.user_id),
                    region=region,
                    description=body.get("description", ""),
                    target_coverage=float(body.get("target_coverage", 0.9)),
                    min_directions=int(body.get("min_directions", 1)),
                    reward_per_task=float(body.get("reward_per_task", 1.0)),
                )
            except _PAYLOAD_ERRORS as exc:
                _log.debug("rejected campaign spec", exc_info=True)
                raise APIError(400, f"bad campaign spec: {exc}") from exc
            self._campaigns[campaign.campaign_id] = campaign
            self._next_campaign_id += 1
        return Response(201, {"campaign_id": campaign.campaign_id})

    def _get_campaign(self, request: Request) -> Campaign:
        try:
            campaign_id = int(request.path_params["campaign_id"])
        except ValueError as exc:
            raise APIError(400, "campaign id must be an integer") from exc
        with self._lock:
            if campaign_id not in self._campaigns:
                raise APIError(404, f"no campaign {campaign_id}")
            return self._campaigns[campaign_id]

    def _campaign_tasks(self, request: Request) -> Response:
        """Tasks for the campaign region's *current* coverage gaps,
        measured over everything the platform has already indexed."""
        campaign = self._get_campaign(request)
        fovs = [
            self.platform.fov(row["image_id"])
            for row in self.platform.db.table("image_fov").all_rows()
        ]
        in_region = [f for f in fovs if campaign.region.intersects(f.mbr())]
        report = measure_coverage(
            in_region,
            campaign.region,
            rows=int(request.params.get("rows", 8)),
            cols=int(request.params.get("cols", 8)),
            min_directions=campaign.min_directions,
        )
        max_tasks = request.params.get("max_tasks")
        tasks = campaign.regenerate_tasks(
            report, max_tasks=int(max_tasks) if max_tasks else None
        )
        return Response(
            200,
            {
                "coverage": report.coverage_ratio,
                "target": campaign.target_coverage,
                "tasks": [
                    {
                        "task_id": t.task_id,
                        "lat": t.location.lat,
                        "lng": t.location.lng,
                        "direction_deg": t.direction_deg,
                        "reward": t.reward,
                    }
                    for t in tasks
                ],
            },
        )

    def _campaign_capture(self, request: Request) -> Response:
        """Submit one capture fulfilling a campaign task: the image is
        uploaded like any other and the task is paid out."""
        campaign = self._get_campaign(request)
        body = self._body(request)
        for required in ("task_id", "image", "fov", "captured_at"):
            if required not in body:
                raise APIError(400, f"missing field {required!r}")
        task = campaign.find_open(int(body["task_id"]))
        if task is None:
            raise APIError(404, f"no open task {body['task_id']} in campaign")
        try:
            fov = FieldOfView.from_dict(body["fov"])
        except _PAYLOAD_ERRORS as exc:
            _log.debug("rejected fov payload", exc_info=True)
            raise APIError(400, f"bad fov: {exc}") from exc
        receipt = self.platform.upload_image(
            image=image_from_payload(body["image"]),
            fov=fov,
            captured_at=float(body["captured_at"]),
            uploaded_at=float(body.get("uploaded_at", body["captured_at"])),
            uploader_id=request.user_id,
        )
        campaign.complete(task)
        return Response(
            201,
            {
                "image_id": receipt.image_id,
                "deduplicated": receipt.deduplicated,
                "reward": task.reward,
            },
        )

    # -- stats ------------------------------------------------------------------------

    def _stats(self, request: Request) -> Response:
        stats = self.platform.stats()
        stats["models"] = self.models.names()
        return Response(200, stats)

    def _metrics(self, request: Request) -> Response:
        """Observability endpoint: the process-wide metrics registry.

        JSON by default; ``?format=prometheus`` returns the bare text
        exposition with the scrape content type Prometheus expects
        (``text/plain; version=0.0.4``) instead of a JSON envelope.
        """
        registry = obs.metrics()
        if request.params.get("format") == "prometheus":
            return Response(
                200,
                {},
                content_type="text/plain; version=0.0.4",
                text=registry.render_prometheus(),
            )
        return Response(
            200,
            {
                "metrics": registry.snapshot(),
                "prometheus": registry.render_prometheus(),
            },
        )

    def _health(self, request: Request) -> Response:
        """SLO evaluation over the live registry (see ``repro.obs.slo``),
        plus every registered circuit breaker's live state.

        Always a 200 — the payload's ``status`` field carries
        ``ok|degraded|failing`` so probes distinguish "service down"
        (no response) from "service unhealthy" (failing objectives).
        An open breaker alone degrades the report: traffic is being
        shed even if the SLO windows have not burned through yet.
        """
        from repro.resilience import breaker_states

        report = obs.health()
        breakers = breaker_states()
        report["breakers"] = breakers
        if report["status"] == "ok" and any(
            b["state"] == "open" for b in breakers.values()
        ):
            report["status"] = "degraded"
        return Response(200, report)

    def _debug_slow(self, request: Request) -> Response:
        """Slow-span exemplars: the worst spans per operation, each with
        its ancestry and the counter increments its work produced."""
        op = request.params.get("op")
        limit = request.params.get("limit")
        try:
            parsed_limit = int(limit) if limit is not None else None
        except ValueError as exc:
            raise APIError(400, "limit must be an integer") from exc
        if parsed_limit is not None and parsed_limit < 1:
            raise APIError(400, "limit must be >= 1")
        return Response(
            200,
            {
                "operations": obs.slow_log().operations(),
                "slow": obs.slow_spans(op, parsed_limit),
            },
        )

    def _debug_hot(self, request: Request) -> Response:
        """Hot-query report: the workload's normalized query shapes
        ranked by frequency then total time (see
        ``repro.core.queries.query_shape``)."""
        limit = request.params.get("limit")
        try:
            parsed_limit = int(limit) if limit is not None else 10
        except ValueError as exc:
            raise APIError(400, "limit must be an integer") from exc
        if parsed_limit < 1:
            raise APIError(400, "limit must be >= 1")
        tracker = obs.hot_queries()
        return Response(
            200,
            {
                "hot": tracker.top(parsed_limit),
                "tracked": len(tracker),
                "evicted": tracker.evicted(),
            },
        )

    def _debug_resources(self, request: Request) -> Response:
        """Resource accounting: top consumers by principal, query
        shape, and operation, with rolling spend and would-shed
        dry-run flags.

        ``?top=<n>`` bounds each ranking (default 10).  ``?budget=<cost>``
        (optionally with ``?window_s=<s>``, default 60) evaluates a
        what-if admission budget against the recorded spend without
        configuring one — nothing is ever actually shed here.
        """
        top = request.params.get("top")
        try:
            parsed_top = int(top) if top is not None else 10
        except ValueError as exc:
            raise APIError(400, "top must be an integer") from exc
        if parsed_top < 1:
            raise APIError(400, "top must be >= 1")
        override = None
        budget_param = request.params.get("budget")
        if budget_param is not None:
            try:
                cost_per_window = float(budget_param)
                window_s = float(request.params.get("window_s", 60.0))
            except ValueError as exc:
                raise APIError(400, "budget and window_s must be numeric") from exc
            if cost_per_window < 0 or window_s <= 0:
                raise APIError(400, "budget must be >= 0 and window_s > 0")
            override = obs.Budget(cost_per_window=cost_per_window, window_s=window_s)
        return Response(200, obs.usage().report(top=parsed_top, budget=override))

    def _debug_trace(self, request: Request) -> Response:
        """The full span tree of one trace, reassembled from the ring
        buffer of finished spans; 404 once the trace has been evicted
        (the buffer keeps the most recent spans only)."""
        trace_id = request.path_params["trace_id"]
        roots = obs.ring_buffer().span_tree(trace_id)
        if not roots:
            raise APIError(
                404, f"trace {trace_id!r} not in the ring buffer (evicted or unknown)"
            )
        span_count = len(
            [s for s in obs.ring_buffer().spans() if s.trace_id == trace_id]
        )
        return Response(
            200, {"trace_id": trace_id, "spans": span_count, "roots": roots}
        )

    def _debug_explain(self, request: Request) -> Response:
        """EXPLAIN (ANALYZE) a query spec without returning its results.

        The body is the same query spec ``POST /search`` takes.  With
        ``?analyze=1`` (the default) the query is executed and every
        plan node carries actual rows, elapsed time, and probe-counter
        deltas; ``?analyze=0`` returns the bare access-path plan.
        """
        from repro.core.planner import explain

        query = self._parse_query(self._body(request))
        analyze = request.params.get("analyze", "1") not in ("0", "false", "no")
        try:
            plan = explain(self.platform, query, analyze=analyze)
        except QueryError as exc:
            raise APIError(409, str(exc)) from exc
        return Response(
            200,
            {
                "analyze": analyze,
                "plan": plan.to_dict(),
                "rendered": plan.render(),
            },
        )
