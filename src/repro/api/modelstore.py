"""Shared ML-model registry with download support.

Backs the paper's API items 5-7: collaborators *use* hosted models,
*download* them for offline edge execution, and *devise* new ones by
declaring input (feature extractor) and output (classification) specs
and training on the platform's annotated data.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import APIError
from repro.ml.linear import LogisticRegression
from repro.ml.svm import LinearSVM, _BinarySVM

_log = obs.get_logger("api.modelstore")


@dataclass
class ModelRecord:
    """One shared model: its I/O contract plus the fitted estimator."""

    name: str
    extractor_name: str
    classification: str
    owner_id: int | None
    classifier: object
    description: str = ""
    metrics: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Training and metric updates may race with concurrent
        # predictions on the same shared record.
        self._lock = threading.RLock()

    def train(self, X: np.ndarray, y: np.ndarray) -> None:
        """Fit the classifier under a ``model.train`` span and record
        training-set size both as shared-model metadata and metrics."""
        with self._lock, obs.span(
            "model.train", model=self.name, samples=int(X.shape[0])
        ):
            self.classifier.fit(X, y)
            self.metrics["training_samples"] = int(X.shape[0])
        obs.metrics().counter("model.train_runs", {"model": self.name}).inc()
        obs.metrics().counter("model.train_samples", {"model": self.name}).inc(
            int(X.shape[0])
        )
        _log.info("trained model %s on %d samples", self.name, int(X.shape[0]))

    def predict_one(self, vector: np.ndarray) -> tuple[str, float]:
        """One inference under a ``model.predict`` span; returns
        ``(label, confidence)`` (confidence 1.0 when the classifier has
        no probability estimate)."""
        with obs.span("model.predict", model=self.name):
            label = self.classifier.predict(vector[np.newaxis, :])[0]
            confidence = 1.0
            if hasattr(self.classifier, "predict_proba"):
                confidence = float(
                    self.classifier.predict_proba(vector[np.newaxis, :]).max()
                )
        obs.metrics().counter("model.predictions", {"model": self.name}).inc()
        return str(label), confidence


def serialize_classifier(classifier: object) -> dict:
    """Portable dict form of a fitted classifier (for model download).

    Linear models serialise exactly; other classifier families would
    need their own codecs and are reported as non-portable.
    """
    if isinstance(classifier, LogisticRegression):
        if classifier.weights_ is None:
            raise APIError(409, "model is not fitted")
        return {
            "type": "LogisticRegression",
            "classes": classifier.classes_.tolist(),
            "weights": classifier.weights_.tolist(),
            "bias": classifier.bias_.tolist(),
        }
    if isinstance(classifier, LinearSVM):
        if classifier._machines is None:
            raise APIError(409, "model is not fitted")
        return {
            "type": "LinearSVM",
            "classes": classifier.classes_.tolist(),
            "machines": [
                {"w": m.w.tolist(), "b": m.b} for m in classifier._machines
            ],
        }
    raise APIError(
        501, f"model type {type(classifier).__name__} is not downloadable"
    )


def deserialize_classifier(data: dict) -> object:
    """Inverse of :func:`serialize_classifier` (edge-side loading)."""
    kind = data.get("type")
    if kind == "LogisticRegression":
        model = LogisticRegression()
        model.classes_ = np.array(data["classes"])
        model.weights_ = np.array(data["weights"], dtype=np.float64)
        model.bias_ = np.array(data["bias"], dtype=np.float64)
        return model
    if kind == "LinearSVM":
        model = LinearSVM()
        model.classes_ = np.array(data["classes"])
        model._machines = []
        for machine_data in data["machines"]:
            machine = _BinarySVM(model.l2, model.epochs, model.batch_size, model.seed)
            machine.w = np.array(machine_data["w"], dtype=np.float64)
            machine.b = float(machine_data["b"])
            model._machines.append(machine)
        return model
    raise APIError(400, f"unknown serialized model type {kind!r}")


class ModelStore:
    """Name-keyed registry of shared models."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._models: dict[str, ModelRecord] = {}

    def register(self, record: ModelRecord) -> None:
        with self._lock:
            if record.name in self._models:
                raise APIError(409, f"model {record.name!r} already exists")
            self._models[record.name] = record

    def get(self, name: str) -> ModelRecord:
        with self._lock:
            if name not in self._models:
                raise APIError(404, f"no model named {name!r}")
            return self._models[name]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models
