"""API layer: key auth, in-process REST router, service, client."""

from repro.api.auth import ApiKeyManager
from repro.api.http import Request, Response, Router
from repro.api.modelstore import (
    ModelRecord,
    ModelStore,
    deserialize_classifier,
    serialize_classifier,
)
from repro.api.service import TVDPService, image_from_payload, image_to_payload
from repro.api.client import TVDPClient

__all__ = [
    "ApiKeyManager",
    "Request",
    "Response",
    "Router",
    "ModelRecord",
    "ModelStore",
    "serialize_classifier",
    "deserialize_classifier",
    "TVDPService",
    "image_to_payload",
    "image_from_payload",
    "TVDPClient",
]
