"""Registry of feature extractors, keyed by their stable names.

The platform's ``get visual features`` API and the DB's
``Image_Visual_Features`` rows both refer to extractors by name;
the registry is the single place that mapping lives.
"""

from __future__ import annotations

from repro.errors import FeatureError
from repro.features.base import FeatureExtractor


class FeatureRegistry:
    """Name -> extractor mapping with duplicate protection."""

    def __init__(self) -> None:
        self._extractors: dict[str, FeatureExtractor] = {}

    def register(self, extractor: FeatureExtractor) -> None:
        """Add an extractor; names must be unique."""
        if extractor.name in self._extractors:
            raise FeatureError(f"extractor {extractor.name!r} already registered")
        self._extractors[extractor.name] = extractor

    def get(self, name: str) -> FeatureExtractor:
        """Look up by name; raises on unknown names."""
        if name not in self._extractors:
            raise FeatureError(
                f"unknown extractor {name!r}; registered: {sorted(self._extractors)}"
            )
        return self._extractors[name]

    def names(self) -> list[str]:
        """Sorted registered names."""
        return sorted(self._extractors)

    def __contains__(self, name: str) -> bool:
        return name in self._extractors

    def __len__(self) -> int:
        return len(self._extractors)
