"""Colour-histogram feature extractor (paper's weakest feature)."""

from __future__ import annotations

import numpy as np

from repro.imaging.color import PAPER_HSV_BINS, hsv_histogram
from repro.imaging.image import Image


class ColorHistogramExtractor:
    """HSV per-channel histogram with the paper's 20/20/10 bin split."""

    def __init__(self, bins: tuple[int, int, int] = PAPER_HSV_BINS) -> None:
        self.bins = bins
        self.name = f"color_hsv_{bins[0]}_{bins[1]}_{bins[2]}"

    def extract(self, image: Image) -> np.ndarray:
        """Normalised 50-D (by default) HSV histogram."""
        return hsv_histogram(image, bins=self.bins, normalize=True)

    def dimension(self) -> int:
        return sum(self.bins)
