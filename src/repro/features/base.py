"""Feature-extractor protocol.

The paper's data model stores per-image visual feature vectors of
several named types (``Image_Visual_Features`` entity); every extractor
here produces a fixed-dimension vector for one image so the Analysis
service can mix and match them.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro import obs
from repro.errors import FeatureError
from repro.imaging.image import Image

_BATCH_VECTORS = obs.metrics().counter("features.batch_vectors")


@runtime_checkable
class FeatureExtractor(Protocol):
    """Structural interface of all visual feature extractors."""

    #: Stable identifier stored in the DB alongside each vector.
    name: str

    def extract(self, image: Image) -> np.ndarray:
        """A 1-D float feature vector for ``image``."""
        ...

    def dimension(self) -> int:
        """Length of the vectors :meth:`extract` produces."""
        ...


def extract_batch(extractor: FeatureExtractor, images: list[Image]) -> np.ndarray:
    """Stack per-image features into an (n, d) matrix."""
    if not images:
        raise FeatureError("extract_batch needs at least one image")
    with obs.span(
        "features.extract_batch", extractor=extractor.name, images=len(images)
    ):
        rows = [extractor.extract(image) for image in images]
    dims = {row.shape for row in rows}
    if len(dims) != 1:
        raise FeatureError(f"inconsistent feature shapes from {extractor.name}: {dims}")
    _BATCH_VECTORS.inc(len(rows))
    return np.vstack(rows)
