"""SIFT-BoW: bag of visual words over SIFT-style local descriptors.

Follows the paper's recipe: detect keypoints, extract descriptors,
cluster a training corpus of descriptors with kMeans into a visual
vocabulary (the paper uses 1000 words over 80% of the dataset), then
represent each image as a normalised histogram of word occurrences.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError
from repro.imaging.descriptors import DESCRIPTOR_DIM, extract_descriptors
from repro.imaging.image import Image
from repro.imaging.keypoints import dense_keypoints, detect_keypoints
from repro.ml.kmeans import KMeans
from repro.ml.knn import pairwise_sq_distances


def image_descriptors(
    image: Image, max_keypoints: int = 60, min_keypoints: int = 12
) -> np.ndarray:
    """Local descriptors for one image: DoG keypoints, densified with a
    lattice when the detector fires too sparsely (low-texture scenes)."""
    keypoints = detect_keypoints(image, max_keypoints=max_keypoints)
    if len(keypoints) < min_keypoints:
        stride = max(8, min(image.height, image.width) // 5)
        keypoints = keypoints + dense_keypoints(image, stride=stride)
    return extract_descriptors(image, keypoints)


class BowVocabulary:
    """A visual-word dictionary built by kMeans over descriptors."""

    def __init__(self, n_words: int = 64, seed: int = 0, max_descriptors: int = 20_000) -> None:
        if n_words < 2:
            raise FeatureError(f"vocabulary needs >= 2 words, got {n_words}")
        self.n_words = n_words
        self.seed = seed
        self.max_descriptors = max_descriptors
        self.words_: np.ndarray | None = None

    def fit(self, images: list[Image]) -> "BowVocabulary":
        """Build the vocabulary from a training corpus."""
        if not images:
            raise FeatureError("cannot build a vocabulary from zero images")
        pools = [p for p in (image_descriptors(image) for image in images) if p.shape[0] > 0]
        if not pools:
            raise FeatureError("no descriptors could be extracted from the corpus")
        descriptors = np.vstack(pools)
        if descriptors.shape[0] < self.n_words:
            raise FeatureError(
                f"only {descriptors.shape[0]} descriptors for {self.n_words} words; "
                "use more images or a smaller vocabulary"
            )
        if descriptors.shape[0] > self.max_descriptors:
            rng = np.random.default_rng(self.seed)
            keep = rng.choice(descriptors.shape[0], self.max_descriptors, replace=False)
            descriptors = descriptors[keep]
        kmeans = KMeans(k=self.n_words, max_iter=30, seed=self.seed)
        kmeans.fit(descriptors)
        self.words_ = kmeans.centroids_
        return self

    def assign(self, descriptors: np.ndarray) -> np.ndarray:
        """Nearest visual word per descriptor row."""
        if self.words_ is None:
            raise FeatureError("vocabulary not fitted")
        if descriptors.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        if descriptors.shape[1] != DESCRIPTOR_DIM:
            raise FeatureError(
                f"descriptors must be {DESCRIPTOR_DIM}-D, got {descriptors.shape[1]}"
            )
        return pairwise_sq_distances(descriptors, self.words_).argmin(axis=1)


class BowExtractor:
    """Bag-of-words image encoder over a fitted vocabulary."""

    def __init__(self, vocabulary: BowVocabulary) -> None:
        if vocabulary.words_ is None:
            raise FeatureError("BowExtractor requires a fitted vocabulary")
        self.vocabulary = vocabulary
        self.name = f"sift_bow_{vocabulary.n_words}"

    def extract(self, image: Image) -> np.ndarray:
        """L1-normalised visual-word histogram (zero vector for images
        with no describable texture)."""
        descriptors = image_descriptors(image)
        histogram = np.zeros(self.vocabulary.n_words, dtype=np.float64)
        words = self.vocabulary.assign(descriptors)
        if words.shape[0] > 0:
            counts = np.bincount(words, minlength=self.vocabulary.n_words)
            histogram = counts / counts.sum()
        return histogram

    def dimension(self) -> int:
        return self.vocabulary.n_words
