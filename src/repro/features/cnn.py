"""CNN-style feature extractor built from fixed convolutional banks.

The paper fine-tunes Caffe / MobileNet / Inception networks.  Without
pretrained weights (offline environment) we use the classic scattering
/ random-features result: a fixed two-stage convolutional pyramid —
Gabor first layer, seeded random second layer, ReLU nonlinearities,
pooling, and spatially pooled colour moments — yields rich, layout-
sensitive features that dominate colour histograms and BoW exactly the
way learned CNN features do in Fig. 6.

The architecture (channels, depth, input size) is parameterised so the
edge-computing cost models can instantiate "MobileNetV1-like" vs
"InceptionV3-like" variants with different FLOP budgets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import FeatureError
from repro.imaging.filters import (
    avg_pool2d,
    convolve2d,
    gabor_bank,
    max_pool2d,
    resize_bilinear,
)
from repro.imaging.image import Image


@dataclass(frozen=True, slots=True)
class CnnConfig:
    """Architecture knobs for the fixed conv feature extractor."""

    input_size: int = 48
    stage1_filters: int = 8
    stage2_filters: int = 16
    kernel_size: int = 3
    pool: int = 2
    grid: int = 4
    seed: int = 7

    def __post_init__(self) -> None:
        if self.input_size < 16:
            raise FeatureError(f"input_size must be >= 16, got {self.input_size}")
        if self.kernel_size % 2 == 0 or self.kernel_size < 3:
            raise FeatureError("kernel_size must be odd and >= 3")
        if self.stage1_filters < 1 or self.stage2_filters < 1:
            raise FeatureError("filter counts must be positive")
        if self.pool < 1 or self.grid < 1:
            raise FeatureError("pool and grid must be positive")


class CnnFeatureExtractor:
    """Two-stage fixed convolutional network producing global features.

    Pipeline per image::

        resize -> gray conv (Gabor bank) -> ReLU -> maxpool   (stage 1)
               -> random 3x3 conv mixing stage-1 maps -> ReLU -> maxpool

    Head (all concatenated, then L2-normalised):

    * stage-2 maps: ``grid x grid`` average pooling + global max & mean
      per map (texture strength *and* layout);
    * stage-1 maps: ``grid x grid`` average pooling (oriented-edge
      layout at higher resolution);
    * colour: ``grid x grid`` mean-RGB pooling.

    Output dimension:
    ``stage2*(grid**2+2) + stage1*grid**2 + 3*grid**2``.
    """

    def __init__(self, config: CnnConfig | None = None) -> None:
        self.config = config or CnnConfig()
        cfg = self.config
        self.name = f"cnn_s{cfg.input_size}_f{cfg.stage1_filters}x{cfg.stage2_filters}"
        orientations = max(cfg.stage1_filters // 2, 1)
        bank = gabor_bank(size=7, orientations=orientations, wavelengths=(3.0, 6.0))
        self._stage1 = bank[: cfg.stage1_filters]
        if len(self._stage1) < cfg.stage1_filters:
            raise FeatureError(
                f"gabor bank too small for {cfg.stage1_filters} stage-1 filters"
            )
        rng = np.random.default_rng(cfg.seed)
        # Stage-2 filters mix all stage-1 maps: (out, in, k, k).
        scale = 1.0 / math.sqrt(cfg.stage1_filters * cfg.kernel_size**2)
        self._stage2 = rng.normal(
            0.0,
            scale,
            (cfg.stage2_filters, cfg.stage1_filters, cfg.kernel_size, cfg.kernel_size),
        )

    def dimension(self) -> int:
        cfg = self.config
        return (
            cfg.stage2_filters * (cfg.grid**2 + 2)
            + cfg.stage1_filters * cfg.grid**2
            + 3 * cfg.grid**2
        )

    def flops_estimate(self) -> int:
        """Rough multiply-accumulate count per image — consumed by the
        edge-computing cost models."""
        cfg = self.config
        s1 = cfg.input_size**2 * cfg.stage1_filters * 7 * 7
        size2 = cfg.input_size // cfg.pool
        s2 = size2**2 * cfg.stage2_filters * cfg.stage1_filters * cfg.kernel_size**2
        return int(s1 + s2)

    def extract(self, image: Image) -> np.ndarray:
        """L2-normalised deep-style feature vector for ``image``."""
        cfg = self.config
        resized = resize_bilinear(image.pixels, cfg.input_size, cfg.input_size)
        gray = 0.299 * resized[..., 0] + 0.587 * resized[..., 1] + 0.114 * resized[..., 2]

        # Stage 1: Gabor conv + ReLU + max pool.
        maps1 = []
        for kernel in self._stage1:
            response = np.maximum(convolve2d(gray, kernel, "same"), 0.0)
            maps1.append(max_pool2d(response, cfg.pool))
        stack1 = np.stack(maps1)  # (f1, s, s)

        # Stage 2: random mixing conv + ReLU + max pool.
        maps2 = []
        for out_filter in self._stage2:
            acc = np.zeros_like(stack1[0])
            for in_map, kernel in zip(stack1, out_filter):
                acc += convolve2d(in_map, kernel, "same")
            maps2.append(max_pool2d(np.maximum(acc, 0.0), cfg.pool))

        # Head: stage-2 layout + global stats, stage-1 layout, colour layout.
        parts = []
        for feature_map in maps2:
            cell = max(feature_map.shape[0] // cfg.grid, 1)
            pooled = avg_pool2d(feature_map, cell)[: cfg.grid, : cfg.grid]
            parts.append(pooled.ravel())
            parts.append(np.array([feature_map.max(), feature_map.mean()]))
        for feature_map in maps1:
            cell = max(feature_map.shape[0] // cfg.grid, 1)
            pooled = avg_pool2d(feature_map, cell)[: cfg.grid, : cfg.grid]
            parts.append(pooled.ravel())
        color_cell = max(cfg.input_size // cfg.grid, 1)
        for channel in range(3):
            pooled = avg_pool2d(resized[..., channel], color_cell)[: cfg.grid, : cfg.grid]
            parts.append(pooled.ravel())

        vector = np.concatenate(parts)
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 1e-12 else vector


#: Named configs mirroring the paper's transfer-learning model zoo.
MOBILENET_V1_LIKE = CnnConfig(input_size=32, stage1_filters=6, stage2_filters=12, seed=11)
MOBILENET_V2_LIKE = CnnConfig(input_size=32, stage1_filters=8, stage2_filters=16, seed=12)
INCEPTION_V3_LIKE = CnnConfig(input_size=48, stage1_filters=8, stage2_filters=24, seed=13)
