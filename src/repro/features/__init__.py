"""Visual feature extraction: colour histogram, SIFT-BoW, CNN."""

from repro.features.base import FeatureExtractor, extract_batch
from repro.features.color_histogram import ColorHistogramExtractor
from repro.features.bow import BowExtractor, BowVocabulary, image_descriptors
from repro.features.cnn import (
    INCEPTION_V3_LIKE,
    MOBILENET_V1_LIKE,
    MOBILENET_V2_LIKE,
    CnnConfig,
    CnnFeatureExtractor,
)
from repro.features.registry import FeatureRegistry

__all__ = [
    "FeatureExtractor",
    "extract_batch",
    "ColorHistogramExtractor",
    "BowVocabulary",
    "BowExtractor",
    "image_descriptors",
    "CnnConfig",
    "CnnFeatureExtractor",
    "MOBILENET_V1_LIKE",
    "MOBILENET_V2_LIKE",
    "INCEPTION_V3_LIKE",
    "FeatureRegistry",
]
