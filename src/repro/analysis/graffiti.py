"""Graffiti study: a second, independent analysis over the same data.

"We performed separate learning to identify graffiti using the same
dataset and annotated the dataset with the results.  In this way,
various visual analysis can be performed, and their results are
annotated and shared" — the dataset collected for street cleanliness
serves a completely different question at zero collection cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import TVDPError
from repro.datasets.lasan import LasanRecord
from repro.features.base import FeatureExtractor, extract_batch
from repro.ml.metrics import f1_score
from repro.ml.model_selection import train_test_split
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import LinearSVM
from repro.core.platform import TVDP

GRAFFITI_LABELS = ("graffiti", "no_graffiti")


@dataclass(frozen=True)
class GraffitiStudyResult:
    """Outcome of the binary graffiti classification."""

    f1: float
    n_train: int
    n_test: int
    positive_rate: float


def run_graffiti_study(
    records: list[LasanRecord],
    extractor: FeatureExtractor,
    make_classifier: Callable[[], object] = lambda: LinearSVM(epochs=40),
    test_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[GraffitiStudyResult, object, StandardScaler]:
    """Train graffiti-vs-none on the cleanliness corpus.

    Returns the result plus the fitted classifier and scaler so the
    platform can machine-annotate the rest of the corpus.
    """
    if not records:
        raise TVDPError("need records for the graffiti study")
    labels = np.array(
        [GRAFFITI_LABELS[0] if r.has_graffiti else GRAFFITI_LABELS[1] for r in records]
    )
    if len(set(labels.tolist())) < 2:
        raise TVDPError("corpus has only one graffiti class; increase graffiti_prob")
    X = extract_batch(extractor, [record.image for record in records])
    scaler = StandardScaler()
    X = scaler.fit_transform(X)
    X_train, X_test, y_train, y_test = train_test_split(
        X, labels, test_fraction=test_fraction, seed=seed
    )
    model = make_classifier()
    model.fit(X_train, y_train)
    score = f1_score(y_test, model.predict(X_test), average="macro")
    return (
        GraffitiStudyResult(
            f1=score,
            n_train=int(X_train.shape[0]),
            n_test=int(X_test.shape[0]),
            positive_rate=float(np.mean(labels == GRAFFITI_LABELS[0])),
        ),
        model,
        scaler,
    )


def annotate_graffiti(
    platform: TVDP,
    image_ids: list[int],
    extractor: FeatureExtractor,
    model: object,
    scaler: StandardScaler,
    annotator: str = "graffiti_svm",
) -> int:
    """Machine-annotate stored images with graffiti labels, making the
    result reusable knowledge for any other platform participant."""
    if "graffiti" not in platform.catalog.names():
        platform.catalog.define(
            "graffiti", list(GRAFFITI_LABELS), description="graffiti presence"
        )
    written = 0
    for image_id in image_ids:
        vector = scaler.transform(
            extractor.extract(platform.image(image_id))[np.newaxis, :]
        )
        label = str(model.predict(vector)[0])
        confidence = 1.0
        if hasattr(model, "predict_proba"):
            confidence = float(model.predict_proba(vector).max())
        platform.annotations.annotate(
            image_id,
            "graffiti",
            label,
            confidence=confidence,
            source="machine",
            annotator=annotator,
        )
        written += 1
    return written
