"""Disaster data platform: drone-based wildfire monitoring.

Implements the paper's future-work direction end to end: fast aerial
acquisition (drone lawnmower sweeps with per-frame FOVs), automatic
event detection (a fast chromatic screen plus a trained classifier),
and situation awareness (a per-cell condition map, the fire-front box,
and sweep-over-sweep spread estimation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TVDPError
from repro.geo.fov import FieldOfView
from repro.geo.geodesy import destination_point, haversine_m, initial_bearing_deg
from repro.geo.point import BoundingBox, GeoPoint
from repro.geo.regions import RegionGrid
from repro.imaging.aerial import AERIAL_CLASSES, fire_pixel_fraction, render_aerial_scene
from repro.imaging.image import Image


# ---------------------------------------------------------------------------
# Acquisition: drone survey planning & simulation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DroneCapture:
    """One aerial frame: FOV (nadir-ish), time, tile pixels, truth label."""

    fov: FieldOfView
    timestamp: float
    image: Image
    true_label: str


def plan_lawnmower(
    region: BoundingBox, rows: int, speed_mps: float = 15.0, capture_interval_s: float = 2.0
) -> list[tuple[GeoPoint, float]]:
    """Boustrophedon waypoints: ``(location, heading)`` pairs covering
    the region in ``rows`` east-west passes."""
    if rows < 1:
        raise TVDPError(f"rows must be >= 1, got {rows}")
    step_m = speed_mps * capture_interval_s
    waypoints: list[tuple[GeoPoint, float]] = []
    dlat = (region.max_lat - region.min_lat) / rows
    for row in range(rows):
        lat = region.min_lat + (row + 0.5) * dlat
        eastbound = row % 2 == 0
        start = GeoPoint(lat, region.min_lng if eastbound else region.max_lng)
        end = GeoPoint(lat, region.max_lng if eastbound else region.min_lng)
        heading = initial_bearing_deg(start, end)
        total = haversine_m(start, end)
        position = start
        travelled = 0.0
        while travelled <= total:
            waypoints.append((position, heading))
            position = destination_point(position, heading, step_m)
            travelled += step_m
    return waypoints


@dataclass
class WildfireGroundTruth:
    """The actual fire: ignition points that grow over time.

    A cell is ``fire`` within ``radius(t)`` of an ignition point,
    ``smoke`` within ``smoke_margin`` beyond that, else ``normal``.
    """

    ignitions: list[GeoPoint]
    growth_mps: float = 0.4
    initial_radius_m: float = 150.0
    smoke_margin_m: float = 400.0

    def radius_at(self, t: float) -> float:
        return self.initial_radius_m + self.growth_mps * t

    def label_at(self, point: GeoPoint, t: float) -> str:
        radius = self.radius_at(t)
        nearest = min(haversine_m(point, ign) for ign in self.ignitions)
        if nearest <= radius:
            return "fire"
        if nearest <= radius + self.smoke_margin_m:
            return "smoke"
        return "normal"


def fly_survey(
    region: BoundingBox,
    truth: WildfireGroundTruth,
    start_time: float,
    rows: int = 6,
    tile_size: int = 40,
    camera_range_m: float = 220.0,
    seed: int = 0,
) -> list[DroneCapture]:
    """Execute one sweep: captures at every waypoint, tiles rendered
    from the fire ground truth at the capture instant."""
    rng = np.random.default_rng(seed)
    captures: list[DroneCapture] = []
    waypoints = plan_lawnmower(region, rows=rows)
    t = start_time
    for position, heading in waypoints:
        label = truth.label_at(position, t)
        image = render_aerial_scene(label, rng, size=tile_size)
        fov = FieldOfView(
            camera=position,
            direction_deg=heading,
            angle_deg=90.0,  # wide nadir-ish gimbal
            range_m=camera_range_m,
        )
        captures.append(
            DroneCapture(fov=fov, timestamp=t, image=image, true_label=label)
        )
        t += 2.0
    return captures


# ---------------------------------------------------------------------------
# Analysis: event detection & situation awareness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FireEvent:
    """One automatic detection: where, when, how confident."""

    location: GeoPoint
    timestamp: float
    label: str
    confidence: float


def detect_events(
    captures: list[DroneCapture],
    classifier: object | None = None,
    extractor: object | None = None,
    fire_threshold: float = 0.01,
) -> list[FireEvent]:
    """Screen every capture for fire/smoke.

    Default mode is the fast chromatic screen (edge-executable); when a
    trained ``classifier`` + ``extractor`` pair is supplied, it refines
    the call (the paper's pattern: cheap screen on the edge, model on
    the server).
    """
    events: list[FireEvent] = []
    for capture in captures:
        fraction = fire_pixel_fraction(capture.image)
        if classifier is not None and extractor is not None:
            vector = extractor.extract(capture.image)[np.newaxis, :]
            label = str(classifier.predict(vector)[0])
            confidence = 1.0
            if hasattr(classifier, "predict_proba"):
                confidence = float(classifier.predict_proba(vector).max())
        elif fraction >= fire_threshold:
            label, confidence = "fire", min(1.0, 0.5 + 10.0 * fraction)
        else:
            continue
        if label in ("fire", "smoke"):
            events.append(
                FireEvent(
                    location=capture.fov.midpoint(),
                    timestamp=capture.timestamp,
                    label=label,
                    confidence=confidence,
                )
            )
    return events


@dataclass(frozen=True)
class SituationReport:
    """Grid-level awareness after one sweep."""

    grid: RegionGrid
    cell_states: dict[tuple[int, int], str]
    events: tuple[FireEvent, ...]
    fire_front: BoundingBox | None

    @property
    def burning_cells(self) -> int:
        return sum(1 for state in self.cell_states.values() if state == "fire")

    @property
    def affected_fraction(self) -> float:
        affected = sum(1 for s in self.cell_states.values() if s != "normal")
        return affected / len(self.grid)


def situation_report(
    region: BoundingBox,
    events: list[FireEvent],
    rows: int = 10,
    cols: int = 10,
) -> SituationReport:
    """Aggregate events onto a grid and box the fire front."""
    grid = RegionGrid(region, rows, cols)
    states: dict[tuple[int, int], str] = {}
    fire_points: list[GeoPoint] = []
    for event in events:
        cell = grid.cell_of(event.location)
        if cell is None:
            continue
        key = (cell.row, cell.col)
        if event.label == "fire":
            states[key] = "fire"
            fire_points.append(event.location)
        elif states.get(key) != "fire":
            states[key] = "smoke"
    front = BoundingBox.from_points(fire_points) if fire_points else None
    return SituationReport(
        grid=grid, cell_states=states, events=tuple(events), fire_front=front
    )


def estimate_spread(
    earlier: SituationReport, later: SituationReport, dt_s: float
) -> dict[str, float]:
    """Sweep-over-sweep spread estimate: burning-cell growth and front
    expansion rate in m/s (the awareness number responders plan with)."""
    if dt_s <= 0:
        raise TVDPError(f"dt_s must be positive, got {dt_s}")
    growth_cells = later.burning_cells - earlier.burning_cells
    front_growth_mps = 0.0
    if earlier.fire_front is not None and later.fire_front is not None:
        earlier_span = haversine_m(
            GeoPoint(earlier.fire_front.min_lat, earlier.fire_front.min_lng),
            GeoPoint(earlier.fire_front.max_lat, earlier.fire_front.max_lng),
        )
        later_span = haversine_m(
            GeoPoint(later.fire_front.min_lat, later.fire_front.min_lng),
            GeoPoint(later.fire_front.max_lat, later.fire_front.max_lng),
        )
        front_growth_mps = (later_span - earlier_span) / (2.0 * dt_s)
    return {
        "burning_cells_delta": float(growth_cells),
        "front_growth_mps": front_growth_mps,
        "affected_fraction_delta": later.affected_fraction - earlier.affected_fraction,
    }


def ingest_survey(
    platform,
    captures: list[DroneCapture],
    events: list[FireEvent] | None = None,
    uploader_id: int | None = None,
    classification: str = "aerial_condition",
) -> list[int]:
    """Store a drone survey in the platform as shared knowledge.

    Tiles become geo-tagged images; detections become machine
    annotations under an ``aerial_condition`` classification — so the
    disaster data flows through the same translational machinery as
    street imagery ("efficient translation of newly learned
    information", the paper's disaster-platform requirement).
    """
    from repro.imaging.aerial import AERIAL_CLASSES

    if classification not in platform.catalog.names():
        platform.catalog.define(
            classification, list(AERIAL_CLASSES), description="drone tile condition"
        )
    if events is None:
        events = detect_events(captures)
    events_by_time = {e.timestamp: e for e in events}
    image_ids = []
    for capture in captures:
        receipt = platform.upload_image(
            capture.image,
            capture.fov,
            captured_at=capture.timestamp,
            uploaded_at=capture.timestamp + 30.0,  # near-real-time uplink
            uploader_id=uploader_id,
        )
        image_ids.append(receipt.image_id)
        event = events_by_time.get(capture.timestamp)
        label = event.label if event is not None else "normal"
        confidence = event.confidence if event is not None else 0.8
        platform.annotations.annotate(
            receipt.image_id,
            classification,
            label,
            confidence=confidence,
            source="machine",
            annotator="wildfire_monitor",
            created_at=capture.timestamp,
        )
    return image_ids


def detection_quality(
    captures: list[DroneCapture], events: list[FireEvent]
) -> dict[str, float]:
    """Recall/precision of event detection against the ground truth
    labels baked into the captures (fire tiles only)."""
    truth_fire = {
        (c.fov.camera.lat, c.fov.camera.lng)
        for c in captures
        if c.true_label == "fire"
    }
    if not captures:
        raise TVDPError("no captures to score")
    detected_fire_tiles = set()
    for event in events:
        if event.label != "fire":
            continue
        # Map the event back to the nearest capture's camera point.
        nearest = min(
            captures, key=lambda c: haversine_m(c.fov.midpoint(), event.location)
        )
        detected_fire_tiles.add((nearest.fov.camera.lat, nearest.fov.camera.lng))
    true_positive = len(detected_fire_tiles & truth_fire)
    recall = true_positive / len(truth_fire) if truth_fire else 1.0
    precision = (
        true_positive / len(detected_fire_tiles) if detected_fire_tiles else 1.0
    )
    return {"recall": recall, "precision": precision, "fire_tiles": float(len(truth_fire))}
