"""Key-frame selection for panorama generation (paper ref. [6]).

Kim et al.'s W2GIS 2014 work selects, from crowdsourced geo-tagged
video, a minimal set of frames whose FOVs jointly cover the full circle
of directions around a point of interest — the inputs a panorama
stitcher needs.  We reproduce the selection stage: a greedy set cover
over direction buckets using the platform's Oriented R-tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TVDPError
from repro.geo.geodesy import angular_difference_deg, initial_bearing_deg, haversine_m
from repro.geo.point import GeoPoint
from repro.core.platform import TVDP

#: Angular resolution of coverage buckets (degrees).
BUCKET_DEG = 30.0


@dataclass(frozen=True)
class PanoramaSelection:
    """Chosen frames and the directions they cover."""

    point: GeoPoint
    image_ids: tuple[int, ...]
    covered_buckets: frozenset[int]
    total_buckets: int

    @property
    def coverage(self) -> float:
        """Fraction of the full circle covered."""
        return len(self.covered_buckets) / self.total_buckets


def _buckets_covered(platform: TVDP, image_id: int, point: GeoPoint) -> set[int]:
    """Direction buckets (as seen *from the point*) this image covers.

    The relevant direction for a panorama at ``point`` is the bearing
    from the point to the camera — that is where this image's pixels
    sit in the panorama.  An image contributes a wedge proportional to
    its angular extent as seen from the point.
    """
    fov = platform.fov(image_id)
    if not fov.contains_point(point):
        return set()
    bearing = initial_bearing_deg(point, fov.camera)
    distance = haversine_m(point, fov.camera)
    # Angular half-extent of the camera's view as seen from the point;
    # nearby wide shots cover a bigger wedge of the panorama.
    half_extent = min(90.0, fov.angle_deg / 2.0 + 3_000.0 / max(distance, 10.0))
    total = int(360.0 / BUCKET_DEG)
    covered = set()
    for bucket in range(total):
        center = (bucket + 0.5) * BUCKET_DEG
        if angular_difference_deg(center, bearing) <= half_extent:
            covered.add(bucket)
    return covered


def select_panorama_frames(
    platform: TVDP,
    point: GeoPoint,
    max_frames: int = 12,
) -> PanoramaSelection:
    """Greedy set cover: repeatedly take the stored image adding the
    most uncovered direction buckets around ``point``."""
    if max_frames < 1:
        raise TVDPError(f"max_frames must be >= 1, got {max_frames}")
    candidates = platform._spatial.search_point(point.lat, point.lng)
    total = int(360.0 / BUCKET_DEG)
    coverage = {
        image_id: _buckets_covered(platform, image_id, point)
        for image_id in candidates
    }
    coverage = {i: b for i, b in coverage.items() if b}

    chosen: list[int] = []
    covered: set[int] = set()
    while coverage and len(chosen) < max_frames and len(covered) < total:
        image_id, buckets = max(
            coverage.items(), key=lambda pair: (len(pair[1] - covered), -pair[0])
        )
        gain = buckets - covered
        if not gain:
            break
        chosen.append(image_id)
        covered |= buckets
        del coverage[image_id]
    return PanoramaSelection(
        point=point,
        image_ids=tuple(chosen),
        covered_buckets=frozenset(covered),
        total_buckets=total,
    )
