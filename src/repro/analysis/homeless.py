"""Homeless-encampment study: translational reuse of annotations.

The paper's flagship translational example: street-cleanliness
classification produces "encampment" annotations; the Homeless
Coordinator reuses them — with *no new learning* — to count tents and
cluster their locations (Fig. 9 discussion, studies 1-3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import TVDPError
from repro.geo.geodesy import meters_per_degree
from repro.geo.point import BoundingBox, GeoPoint
from repro.ml.dbscan import DBSCAN, NOISE
from repro.core.platform import TVDP


@dataclass(frozen=True)
class TentCluster:
    """One spatial cluster of encampment sightings."""

    cluster_id: int
    size: int
    centroid: GeoPoint
    bbox: BoundingBox
    image_ids: tuple[int, ...]
    #: Convex-hull footprint of the sightings in square meters (0.0 for
    #: clusters of fewer than three non-collinear points).
    hull_area_m2: float = 0.0


def _hull_area_m2(local_coords: np.ndarray) -> float:
    """Convex-hull area of (n, 2) local-meter coordinates."""
    if local_coords.shape[0] < 3:
        return 0.0
    from scipy.spatial import ConvexHull, QhullError

    try:
        # For 2-D inputs, Qhull's "volume" is the polygon area.
        return float(ConvexHull(local_coords).volume)
    except QhullError:
        return 0.0  # collinear points span no area


@dataclass(frozen=True)
class HomelessReport:
    """Output of the tent-clustering study."""

    total_sightings: int
    clusters: tuple[TentCluster, ...]
    noise_sightings: int

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def largest_cluster_size(self) -> int:
        return max((c.size for c in self.clusters), default=0)


def _to_local_meters(points: list[GeoPoint]) -> np.ndarray:
    """Project lat/lng to a local tangent plane in meters (adequate at
    city scale for density clustering)."""
    lat0 = sum(p.lat for p in points) / len(points)
    lng0 = sum(p.lng for p in points) / len(points)
    m_lat, m_lng = meters_per_degree(lat0)
    return np.array([[(p.lat - lat0) * m_lat, (p.lng - lng0) * m_lng] for p in points])


def cluster_encampments(
    platform: TVDP,
    classification: str = "street_cleanliness",
    label: str = "encampment",
    min_confidence: float = 0.5,
    eps_m: float = 250.0,
    min_samples: int = 3,
) -> HomelessReport:
    """Cluster encampment-annotated image locations with DBSCAN.

    Pure annotation reuse: reads labels written by *any* prior analysis
    (human or machine) and runs spatial clustering — no image pixels,
    no model training.
    """
    if eps_m <= 0:
        raise TVDPError(f"eps_m must be positive, got {eps_m}")
    sightings = platform.annotations.label_locations(
        classification, label, min_confidence=min_confidence
    )
    if not sightings:
        return HomelessReport(total_sightings=0, clusters=(), noise_sightings=0)
    image_ids = [image_id for image_id, _ in sightings]
    points = [point for _, point in sightings]
    coords = _to_local_meters(points)
    labels = DBSCAN(eps=eps_m, min_samples=min_samples).fit_predict(coords)

    clusters = []
    for cluster_id in sorted(set(labels.tolist()) - {NOISE}):
        members = [i for i, l in enumerate(labels) if l == cluster_id]
        member_points = [points[i] for i in members]
        clusters.append(
            TentCluster(
                cluster_id=cluster_id,
                size=len(members),
                centroid=GeoPoint(
                    sum(p.lat for p in member_points) / len(members),
                    sum(p.lng for p in member_points) / len(members),
                ),
                bbox=BoundingBox.from_points(member_points),
                image_ids=tuple(image_ids[i] for i in members),
                hull_area_m2=_hull_area_m2(coords[members]),
            )
        )
    return HomelessReport(
        total_sightings=len(sightings),
        clusters=tuple(sorted(clusters, key=lambda c: -c.size)),
        noise_sightings=int(np.sum(labels == NOISE)),
    )


def compare_periods(
    before: HomelessReport, after: HomelessReport, match_radius_m: float = 400.0
) -> dict[str, object]:
    """Week-over-week movement summary (the paper's study 1-2: weekly
    changes and spatial movement of encampments).

    Clusters are matched greedily by centroid proximity; unmatched
    clusters count as appeared/disappeared.
    """
    if match_radius_m <= 0:
        raise TVDPError(f"match_radius_m must be positive, got {match_radius_m}")
    from repro.geo.geodesy import haversine_m

    remaining = list(after.clusters)
    matches = []
    for old in before.clusters:
        best, best_distance = None, math.inf
        for new in remaining:
            distance = haversine_m(old.centroid, new.centroid)
            if distance < best_distance:
                best, best_distance = new, distance
        if best is not None and best_distance <= match_radius_m:
            matches.append(
                {
                    "before_id": old.cluster_id,
                    "after_id": best.cluster_id,
                    "moved_m": best_distance,
                    "size_change": best.size - old.size,
                }
            )
            remaining.remove(best)
    matched_before = {m["before_id"] for m in matches}
    return {
        "matched": matches,
        "disappeared": [
            c.cluster_id for c in before.clusters if c.cluster_id not in matched_before
        ],
        "appeared": [c.cluster_id for c in remaining],
        "sightings_change": after.total_sightings - before.total_sightings,
    }
