"""Smart-city application studies built on the platform."""

from repro.analysis.cleanliness import (
    DEFAULT_CLASSIFIERS,
    GridCellResult,
    best_cell,
    build_feature_suite,
    feature_matrices,
    per_category_f1,
    run_classifier_grid,
)
from repro.analysis.homeless import (
    HomelessReport,
    TentCluster,
    cluster_encampments,
    compare_periods,
)
from repro.analysis.graffiti import (
    GRAFFITI_LABELS,
    GraffitiStudyResult,
    annotate_graffiti,
    run_graffiti_study,
)
from repro.analysis.disaster import (
    DroneCapture,
    FireEvent,
    SituationReport,
    WildfireGroundTruth,
    detect_events,
    detection_quality,
    estimate_spread,
    fly_survey,
    ingest_survey,
    plan_lawnmower,
    situation_report,
)
from repro.analysis.panorama import PanoramaSelection, select_panorama_frames

__all__ = [
    "DEFAULT_CLASSIFIERS",
    "GridCellResult",
    "build_feature_suite",
    "feature_matrices",
    "run_classifier_grid",
    "best_cell",
    "per_category_f1",
    "TentCluster",
    "HomelessReport",
    "cluster_encampments",
    "compare_periods",
    "GRAFFITI_LABELS",
    "GraffitiStudyResult",
    "run_graffiti_study",
    "annotate_graffiti",
    "DroneCapture",
    "WildfireGroundTruth",
    "plan_lawnmower",
    "fly_survey",
    "FireEvent",
    "detect_events",
    "SituationReport",
    "situation_report",
    "estimate_spread",
    "detection_quality",
    "ingest_survey",
    "PanoramaSelection",
    "select_panorama_frames",
]
