"""Street-cleanliness classification study (paper Section VII-A).

Reproduces the experimental protocol behind Figs. 6 and 7: extract the
three visual feature types, train a grid of classifiers, and report
macro F1 per (feature, classifier) pair plus per-category F1 for the
winning classifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import TVDPError
from repro.datasets.lasan import LasanRecord
from repro.features.base import FeatureExtractor, extract_batch
from repro.features.bow import BowExtractor, BowVocabulary
from repro.features.cnn import CnnFeatureExtractor
from repro.features.color_histogram import ColorHistogramExtractor
from repro.ml.boosting import AdaBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import f1_score, precision_recall_f1
from repro.ml.model_selection import cross_val_predict, train_test_split
from repro.ml.naive_bayes import GaussianNB
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import LinearSVM
from repro.ml.tree import DecisionTreeClassifier

#: The classifier grid of Fig. 6 (factories, so every run is fresh).
DEFAULT_CLASSIFIERS: dict[str, Callable[[], object]] = {
    "svm": lambda: LinearSVM(epochs=40),
    "logistic_regression": lambda: LogisticRegression(epochs=60),
    "knn": lambda: KNeighborsClassifier(k=7),
    "decision_tree": lambda: DecisionTreeClassifier(max_depth=10),
    "naive_bayes": lambda: GaussianNB(var_smoothing=1e-6),
    "random_forest": lambda: RandomForestClassifier(n_trees=15, max_depth=10),
    "adaboost": lambda: AdaBoostClassifier(n_estimators=20, max_depth=2),
}


def build_feature_suite(
    records: list[LasanRecord],
    bow_words: int = 48,
    vocab_fraction: float = 0.8,
    seed: int = 0,
) -> dict[str, FeatureExtractor]:
    """The paper's three extractors, with the BoW vocabulary fitted on
    ``vocab_fraction`` of the corpus (the paper uses 80%)."""
    if not records:
        raise TVDPError("need records to build the feature suite")
    n_vocab = max(int(len(records) * vocab_fraction), 1)
    vocabulary = BowVocabulary(n_words=bow_words, seed=seed).fit(
        [record.image for record in records[:n_vocab]]
    )
    return {
        "color_histogram": ColorHistogramExtractor(),
        "sift_bow": BowExtractor(vocabulary),
        "cnn": CnnFeatureExtractor(),
    }


def feature_matrices(
    records: list[LasanRecord], extractors: dict[str, FeatureExtractor]
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Standardised (X, y) per feature name."""
    labels = np.array([record.label for record in records])
    images = [record.image for record in records]
    out = {}
    for name, extractor in extractors.items():
        X = extract_batch(extractor, images)
        out[name] = (StandardScaler().fit_transform(X), labels)
    return out


@dataclass(frozen=True)
class GridCellResult:
    """Macro F1 of one (feature, classifier) pair."""

    feature: str
    classifier: str
    f1: float


def run_classifier_grid(
    matrices: dict[str, tuple[np.ndarray, np.ndarray]],
    classifiers: dict[str, Callable[[], object]] | None = None,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> list[GridCellResult]:
    """Fig. 6: train every classifier on every feature type.

    Uses the paper's 80/20 protocol: fit on 80%, score macro F1 on the
    held-out 20%.
    """
    classifiers = classifiers or DEFAULT_CLASSIFIERS
    results = []
    for feature_name, (X, y) in matrices.items():
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_fraction=test_fraction, seed=seed
        )
        for clf_name, factory in classifiers.items():
            model = factory()
            model.fit(X_train, y_train)
            score = f1_score(y_test, model.predict(X_test), average="macro")
            results.append(
                GridCellResult(feature=feature_name, classifier=clf_name, f1=score)
            )
    return results


def best_cell(results: list[GridCellResult]) -> GridCellResult:
    """Highest-F1 grid cell."""
    if not results:
        raise TVDPError("empty grid")
    return max(results, key=lambda cell: cell.f1)


def per_category_f1(
    X: np.ndarray,
    y: np.ndarray,
    make_classifier: Callable[[], object],
    n_splits: int = 10,
    seed: int = 0,
) -> dict[str, float]:
    """Fig. 7: per-class F1 using out-of-fold predictions (the paper's
    10-fold cross-validation)."""
    predictions = cross_val_predict(make_classifier, X, y, n_splits=n_splits, seed=seed)
    per_class = precision_recall_f1(y, predictions)
    return {str(label): scores[2] for label, scores in per_class.items()}
