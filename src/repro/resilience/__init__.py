"""Resilience layer: composable failure policies + deterministic chaos.

TVDP's production posture treats partial failure as the normal case —
dead Raspberry Pis mid-campaign, flaky uplinks, interrupted persistence
writes.  This package provides the two halves of surviving that:

* **Policies** (:mod:`repro.resilience.policies`) — :class:`Retry` with
  seeded exponential backoff, post-hoc :class:`Timeout`,
  :class:`CircuitBreaker` with closed/open/half-open isolation,
  :class:`Fallback` degradation, stacked via :func:`resilient` /
  :func:`execute`.  Per-name breakers live in a process registry
  (:func:`get_breaker`, surfaced at ``GET /health``).
* **Faults** (:mod:`repro.resilience.faults`) — :class:`FaultPlan`
  scripts error/latency/corruption faults per call-site on a seeded,
  exactly-reproducible schedule, activated via a contextvar so tests
  and ``python -m repro --chaos`` inject failures with zero
  monkeypatching.

Both halves share the injectable :class:`Clock`
(:mod:`repro.resilience.clock`): under a :class:`ManualClock`, retry
storms, breaker recovery windows, and injected latency all play out in
simulated time — the whole resilience test suite runs without a single
real ``time.sleep``.

See ``docs/resilience.md`` for policy semantics and chaos-test recipes.
"""

from repro.resilience.clock import Clock, ManualClock, SystemClock
from repro.resilience.faults import (
    SEED_ENV_VAR,
    FaultEvent,
    FaultPlan,
    FaultRule,
    active_plan,
    corrupt,
    current_clock,
    inject,
    seed_from_env,
)
from repro.resilience.policies import (
    DEFAULT_TRANSIENT,
    CircuitBreaker,
    Fallback,
    Retry,
    Timeout,
    backoff_delays,
    breaker_states,
    execute,
    get_breaker,
    reset_breakers,
    resilient,
)

__all__ = [
    "DEFAULT_TRANSIENT",
    "SEED_ENV_VAR",
    "CircuitBreaker",
    "Clock",
    "Fallback",
    "FaultEvent",
    "FaultPlan",
    "FaultRule",
    "ManualClock",
    "Retry",
    "SystemClock",
    "Timeout",
    "active_plan",
    "backoff_delays",
    "breaker_states",
    "corrupt",
    "current_clock",
    "execute",
    "get_breaker",
    "inject",
    "reset_breakers",
    "resilient",
    "seed_from_env",
]
