"""Injectable time for every resilience code path.

Backoff delays, breaker recovery windows, timeout measurement, and
injected latency faults all go through a :class:`Clock`, never through
``time`` directly.  That single seam is what makes the whole resilience
layer testable in zero wall-clock time: tests (and ``python -m repro
--chaos``) install a :class:`ManualClock` whose ``sleep`` merely
advances a virtual timestamp, so a thousand retries with exponential
backoff "take" minutes of simulated time and microseconds of real time.
The ``no-sleep`` devtools lint enforces the seam — :class:`SystemClock`
holds the library's only sanctioned ``time.sleep`` call.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """What the resilience layer needs from time: read it, spend it."""

    def now(self) -> float:
        """Current time in seconds (monotonic; epoch is unspecified)."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds``."""
        ...


class SystemClock:
    """Real wall-clock time — the production default."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)  # devtools: allow[no-sleep] the one sanctioned sleep


class ManualClock:
    """Virtual time: ``sleep`` advances ``now`` instantly.

    ``slept`` accumulates every sleep request, so tests can assert on
    the *simulated* cost of a retry schedule (e.g. "the backoff spent
    less than its budget") without a single real pause.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.slept = 0.0

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {seconds}")
        self._now += seconds
        self.slept += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without counting it as slept (an external
        event happening later — e.g. a breaker recovery window elapsing
        between requests)."""
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards: {seconds}")
        self._now += seconds
