"""Composable resilience policies: Retry, Timeout, CircuitBreaker, Fallback.

Each policy wraps one callable-of-no-args via ``policy.call(fn)``;
:func:`resilient` stacks several into a decorator, outermost first::

    @resilient(Fallback([]), Retry(max_attempts=4, site="db.load"))
    def load():
        ...

    # or ad hoc, without decorating:
    result = execute(lambda: client.search(spec), Retry(site="api.request"))

Everything time-shaped — backoff sleeps, breaker recovery windows,
timeout measurement — goes through the injectable :class:`Clock`
resolved by :func:`repro.resilience.faults.current_clock`, so chaos
tests run whole retry storms in zero wall-clock time.  All policies
report into ``repro.obs``: ``resilience.retries{site=}``,
``resilience.breaker_open{breaker=}`` and
``resilience.breaker_rejected{breaker=}`` counters, a
``resilience.breaker_state{breaker=}`` gauge (0 closed / 1 half-open /
2 open), ``resilience.timeouts{site=}``, ``resilience.fallbacks{site=}``
— and annotate the active span with retry/fault metadata so slow-span
exemplars show *why* an operation took many attempts.
"""

from __future__ import annotations

import functools
import random
import threading
from typing import Callable, TypeVar

from repro import obs
from repro.errors import (
    CallTimeoutError,
    CircuitOpenError,
    FaultInjected,
    ResilienceError,
    RetryBudgetExceeded,
)
from repro.resilience.clock import Clock
from repro.resilience.faults import current_clock

T = TypeVar("T")

#: What a retry treats as transient when the caller doesn't say:
#: injected faults, post-hoc timeouts, and OS-level connectivity errors.
DEFAULT_TRANSIENT: tuple[type[BaseException], ...] = (
    FaultInjected,
    CallTimeoutError,
    ConnectionError,
    TimeoutError,
)

_log = obs.get_logger("resilience")


def backoff_delays(
    max_attempts: int,
    base_delay_s: float = 0.05,
    factor: float = 2.0,
    max_delay_s: float = 5.0,
    budget_s: float = 30.0,
    jitter: float = 0.25,
    seed: int = 0,
) -> list[float]:
    """The deterministic backoff schedule a :class:`Retry` will follow.

    Delay ``k`` starts from ``min(max_delay_s, base * factor**k)``,
    shrinks by up to ``jitter`` (a seeded fraction — full-jitter's
    thundering-herd spread without its non-determinism), and is then
    floored at the previous delay, so the realised sequence is monotone
    non-decreasing *by construction*.  The schedule stops early rather
    than emit a delay that would push the cumulative total past
    ``budget_s`` — both invariants are pinned by property tests for
    arbitrary seeds.
    """
    if max_attempts < 1:
        raise ResilienceError(f"max_attempts must be >= 1, got {max_attempts}")
    if base_delay_s < 0 or max_delay_s < 0 or budget_s < 0:
        raise ResilienceError("delays and budget must be >= 0")
    if factor < 1.0:
        raise ResilienceError(f"factor must be >= 1, got {factor}")
    if not (0.0 <= jitter < 1.0):
        raise ResilienceError(f"jitter must be in [0, 1), got {jitter}")
    rng = random.Random(f"backoff:{seed}")
    delays: list[float] = []
    total = 0.0
    previous = 0.0
    for k in range(max_attempts - 1):
        raw = min(max_delay_s, base_delay_s * factor**k)
        jittered = raw * (1.0 - jitter * rng.random())
        delay = max(previous, jittered)
        if total + delay > budget_s:
            break
        delays.append(delay)
        total += delay
        previous = delay
    return delays


class Retry:
    """Retry transient failures with seeded exponential backoff.

    ``max_attempts`` caps total tries; the backoff *budget* caps total
    simulated sleep, whichever bites first.  Non-retryable exceptions
    propagate untouched; when the schedule is exhausted the last error
    re-raises as-is (``reraise=True``, the default — callers keep their
    exception contract) or wrapped in :class:`RetryBudgetExceeded`.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_s: float = 0.05,
        factor: float = 2.0,
        max_delay_s: float = 5.0,
        budget_s: float = 30.0,
        jitter: float = 0.25,
        seed: int = 0,
        retry_on: tuple[type[BaseException], ...] = DEFAULT_TRANSIENT,
        retryable: Callable[[BaseException], bool] | None = None,
        reraise: bool = True,
        clock: Clock | None = None,
        site: str = "call",
    ) -> None:
        self.site = site
        self.retry_on = retry_on
        self.retryable = retryable
        self.reraise = reraise
        self.clock = clock
        self.delays = backoff_delays(
            max_attempts=max_attempts,
            base_delay_s=base_delay_s,
            factor=factor,
            max_delay_s=max_delay_s,
            budget_s=budget_s,
            jitter=jitter,
            seed=seed,
        )

    def call(self, fn: Callable[[], T]) -> T:
        clock = current_clock(self.clock)
        retries = obs.metrics().counter("resilience.retries", {"site": self.site})
        attempt = 0
        while True:
            try:
                result = fn()
            except self.retry_on as exc:
                if self.retryable is not None and not self.retryable(exc):
                    raise
                if attempt >= len(self.delays):
                    _log.warning(
                        "%s: giving up after %d attempt(s): %s",
                        self.site, attempt + 1, exc,
                    )
                    if self.reraise:
                        raise
                    raise RetryBudgetExceeded(
                        f"{self.site}: retry schedule exhausted after "
                        f"{attempt + 1} attempt(s)",
                        last_error=exc,
                    ) from exc
                delay = self.delays[attempt]
                attempt += 1
                retries.inc()
                span = obs.current_span()
                if span is not None:
                    span.set("retries", attempt)
                    span.set("retry_error", type(exc).__name__)
                _log.debug(
                    "%s: attempt %d failed (%s); backing off %.3fs",
                    self.site, attempt, exc, delay,
                )
                # Deliberately blocking on the request path: backoff
                # delays come from a fixed, finite schedule, so a
                # handler waits at most the retry budget — the bounded
                # degradation the resilience layer exists to provide.
                clock.sleep(delay)  # devtools: allow[blocking-in-handler]
            else:
                if attempt:
                    span = obs.current_span()
                    if span is not None:
                        span.set("retries", attempt)
                return result


class Timeout:
    """Post-hoc timeout: measure the call through the clock, fail it if
    the limit was exceeded.

    In-process synchronous calls cannot be preempted portably, so this
    policy cannot *shorten* a slow call — it converts one into a typed,
    retryable :class:`CallTimeoutError` after the fact, which is exactly
    the contract retries and breakers need.  Under a fault plan's
    :class:`ManualClock`, injected latency advances the clock and trips
    this deterministically.
    """

    def __init__(
        self, limit_s: float, clock: Clock | None = None, site: str = "call"
    ) -> None:
        if limit_s <= 0:
            raise ResilienceError(f"timeout limit must be positive, got {limit_s}")
        self.limit_s = limit_s
        self.clock = clock
        self.site = site

    def call(self, fn: Callable[[], T]) -> T:
        clock = current_clock(self.clock)
        started = clock.now()
        result = fn()
        elapsed = clock.now() - started
        if elapsed > self.limit_s:
            obs.metrics().counter("resilience.timeouts", {"site": self.site}).inc()
            span = obs.current_span()
            if span is not None:
                span.set("timeout_s", self.limit_s)
            raise CallTimeoutError(self.limit_s, elapsed)
        return result


#: Gauge encoding of breaker states.
_STATE_VALUES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


class CircuitBreaker:
    """Closed / open / half-open failure isolation with injectable time.

    ``failure_threshold`` consecutive failures trip the breaker open;
    open calls fast-fail with :class:`CircuitOpenError` (no load on the
    struggling dependency) until ``recovery_time_s`` has elapsed on the
    clock, after which up to ``half_open_max_probes`` probe calls run —
    one probe success closes the circuit, one probe failure re-opens it.
    The machine can *only* reach closed from half-open, never straight
    from open; :attr:`transitions` records every edge so tests can check
    that invariant.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        recovery_time_s: float = 30.0,
        half_open_max_probes: int = 1,
        failure_on: tuple[type[BaseException], ...] = (Exception,),
        clock: Clock | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ResilienceError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time_s < 0:
            raise ResilienceError(
                f"recovery_time_s must be >= 0, got {recovery_time_s}"
            )
        if half_open_max_probes < 1:
            raise ResilienceError(
                f"half_open_max_probes must be >= 1, got {half_open_max_probes}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self.half_open_max_probes = half_open_max_probes
        self.failure_on = failure_on
        self.clock = clock
        self.state = "closed"
        self.failures = 0  # consecutive, while closed
        self.opened_at = 0.0
        self.probes_in_flight = 0
        self.transitions: list[tuple[str, str, float]] = []  # (from, to, at)
        self._lock = threading.Lock()
        self._gauge = obs.metrics().gauge(
            "resilience.breaker_state", {"breaker": name}
        )
        self._opened = obs.metrics().counter(
            "resilience.breaker_open", {"breaker": name}
        )
        self._rejected = obs.metrics().counter(
            "resilience.breaker_rejected", {"breaker": name}
        )

    def _transition(self, to: str, now: float) -> None:
        """Move to ``to``; caller holds the lock."""
        self.transitions.append((self.state, to, now))
        self.state = to
        self._gauge.set(_STATE_VALUES[to])
        if to == "open":
            self.opened_at = now
            self._opened.inc()
        elif to == "half_open":
            self.probes_in_flight = 0
        elif to == "closed":
            self.failures = 0

    def _admit(self, now: float) -> None:
        """Gatekeeper: raise :class:`CircuitOpenError` or admit the call
        (counting half-open probes).  Caller holds the lock."""
        if self.state == "open":
            waited = now - self.opened_at
            if waited < self.recovery_time_s:
                self._rejected.inc()
                raise CircuitOpenError(self.name, self.recovery_time_s - waited)
            self._transition("half_open", now)
        if self.state == "half_open":
            if self.probes_in_flight >= self.half_open_max_probes:
                self._rejected.inc()
                raise CircuitOpenError(self.name, 0.0)
            self.probes_in_flight += 1

    def call(self, fn: Callable[[], T]) -> T:
        clock = current_clock(self.clock)
        with self._lock:
            self._admit(clock.now())
            probing = self.state == "half_open"
        try:
            result = fn()
        except self.failure_on:
            with self._lock:
                now = clock.now()
                if self.state == "half_open":
                    self._transition("open", now)
                elif self.state == "closed":
                    self.failures += 1
                    if self.failures >= self.failure_threshold:
                        self._transition("open", now)
            raise
        with self._lock:
            if self.state == "half_open":
                self._transition("closed", clock.now())
            elif probing:
                # Closed by a concurrent probe while we ran; nothing to do.
                pass
            else:
                self.failures = 0
        return result

    def snapshot(self) -> dict[str, object]:
        """State summary for ``GET /health``."""
        with self._lock:
            return {
                "state": self.state,
                "failures": self.failures,
                "failure_threshold": self.failure_threshold,
                "recovery_time_s": self.recovery_time_s,
                "trips": len([t for t in self.transitions if t[1] == "open"]),
            }


class Fallback:
    """Degrade gracefully: swallow a failure, return a substitute.

    ``fallback`` is either a plain value or a one-argument callable
    receiving the exception; ``catch`` bounds what gets absorbed (never
    swallow programming errors by default — only platform failures).
    """

    def __init__(
        self,
        fallback: object,
        catch: tuple[type[BaseException], ...] = (ResilienceError,),
        site: str = "call",
    ) -> None:
        self.fallback = fallback
        self.catch = catch
        self.site = site

    def call(self, fn: Callable[[], T]) -> object:
        try:
            return fn()
        except self.catch as exc:
            obs.metrics().counter("resilience.fallbacks", {"site": self.site}).inc()
            span = obs.current_span()
            if span is not None:
                span.set("fallback", type(exc).__name__)
            _log.info("%s: degraded to fallback after %s", self.site, exc)
            if callable(self.fallback):
                return self.fallback(exc)
            return self.fallback


def resilient(*policies: object) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Stack policies around a function, outermost first.

    ``resilient(Fallback(x), Retry(), Timeout(1.0))`` means: the timeout
    judges each individual attempt, the retry re-runs timed-out/failed
    attempts, and the fallback absorbs whatever survives the retries.
    """

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> T:
            def run(index: int) -> T:
                if index == len(policies):
                    return fn(*args, **kwargs)
                policy = policies[index]
                return policy.call(lambda: run(index + 1))  # type: ignore[attr-defined]

            return run(0)

        return wrapper

    return decorate


def execute(fn: Callable[[], T], *policies: object) -> T:
    """Run one thunk under a policy stack (ad-hoc :func:`resilient`)."""
    return resilient(*policies)(fn)()


# -- breaker registry (what GET /health surfaces) ----------------------------

_breakers: dict[str, CircuitBreaker] = {}
_breakers_lock = threading.Lock()


def get_breaker(
    name: str,
    failure_threshold: int = 5,
    recovery_time_s: float = 30.0,
    half_open_max_probes: int = 1,
    failure_on: tuple[type[BaseException], ...] = (Exception,),
    clock: Clock | None = None,
) -> CircuitBreaker:
    """Get-or-create a named breaker in the process-wide registry.

    Parameters apply on first creation only; later callers share the
    same instance (two breakers under one name would defeat the point —
    each would see only half the failures).
    """
    with _breakers_lock:
        breaker = _breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                name,
                failure_threshold=failure_threshold,
                recovery_time_s=recovery_time_s,
                half_open_max_probes=half_open_max_probes,
                failure_on=failure_on,
                clock=clock,
            )
            _breakers[name] = breaker
        return breaker


def breaker_states() -> dict[str, dict[str, object]]:
    """Snapshot of every registered breaker (``GET /health`` payload)."""
    with _breakers_lock:
        breakers = dict(_breakers)
    return {name: breaker.snapshot() for name, breaker in sorted(breakers.items())}


def reset_breakers() -> None:
    """Drop every registered breaker (test/benchmark isolation)."""
    with _breakers_lock:
        _breakers.clear()
