"""Deterministic fault injection, scripted per call-site.

A :class:`FaultPlan` is a *script* of failures: each :class:`FaultRule`
targets one call-site name (``"edge.transfer"``, ``"db.save"``,
``"api.request"``...) and fires either on explicit 1-based call indexes
(``at_calls={1, 3}``) or stochastically at a ``rate`` drawn from a
per-rule RNG seeded from ``(plan seed, site, kind, rule index)`` — so a
plan with the same seed and rules produces byte-identical schedules on
every run, on every machine.  That is what lets the chaos suite assert
exact outcomes instead of flaky probabilities.

Plans activate through a ``contextvars.ContextVar``::

    plan = FaultPlan(seed=7)
    plan.kill("edge.transfer", rate=0.3)
    plan.delay("api.request", latency_s=0.2, rate=0.5)
    with plan.activate():
        run_campaign_round(...)        # faults fire inside, no monkeypatching
    assert plan.summary()["edge.transfer"]["error"] > 0

Instrumented call-sites opt in with one line — ``faults.inject(site)``
before the work and, for payload-corruption sites,
``value = faults.corrupt(site, value)`` after it.  With no active plan
both are near-free no-ops, so the hooks stay in production code paths
(``python -m repro --chaos`` activates a plan over the normal CLI).

Latency faults spend time through the plan's :class:`Clock` — a
:class:`ManualClock` by default, so injected slowness is *simulated*
and the test suite never really sleeps.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import random
import threading
from dataclasses import dataclass
from typing import Callable, Iterator

from repro import obs
from repro.errors import FaultInjected, ResilienceError
from repro.resilience.clock import Clock, ManualClock, SystemClock

#: Environment variable the chaos tooling reads its seed from.
SEED_ENV_VAR = "REPRO_FAULT_SEED"

VALID_KINDS = ("error", "latency", "corrupt")

#: The active plan for the current execution context (None = no chaos).
_active_plan: contextvars.ContextVar["FaultPlan | None"] = contextvars.ContextVar(
    "tvdp_fault_plan", default=None
)


def seed_from_env(default: int = 0) -> int:
    """The chaos seed: ``$REPRO_FAULT_SEED`` or ``default``."""
    raw = os.environ.get(SEED_ENV_VAR)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ResilienceError(
            f"{SEED_ENV_VAR} must be an integer, got {raw!r}"
        ) from exc


def _default_corruption(value: object) -> object:
    """Garble a payload in a way downstream parsers will notice."""
    if isinstance(value, str):
        return value[: len(value) // 2] + "\x00<<corrupted>>\x00"
    if isinstance(value, bytes):
        return value[: len(value) // 2] + b"\x00<<corrupted>>\x00"
    return None


@dataclass(frozen=True)
class FaultRule:
    """One scripted failure mode at one call-site."""

    site: str
    kind: str  # "error" | "latency" | "corrupt"
    rate: float = 1.0  # per-call probability when at_calls is None
    at_calls: frozenset[int] = frozenset()  # explicit 1-based call indexes
    max_faults: int | None = None  # stop firing after this many injections
    error: Callable[[str, int], BaseException] | None = None  # error kind only
    latency_s: float = 0.0  # latency kind only
    corruption: Callable[[object], object] | None = None  # corrupt kind only

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ResilienceError(
                f"unknown fault kind {self.kind!r}; use one of {VALID_KINDS}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ResilienceError(f"rate must be in [0, 1], got {self.rate}")
        if self.kind == "latency" and self.latency_s < 0:
            raise ResilienceError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.max_faults is not None and self.max_faults < 1:
            raise ResilienceError(f"max_faults must be >= 1, got {self.max_faults}")
        if any(index < 1 for index in self.at_calls):
            raise ResilienceError("at_calls indexes are 1-based; got an index < 1")


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One fault the plan actually injected (the reproducibility log)."""

    site: str
    kind: str
    call_index: int  # 1-based index of the call at this (site, kind)


class FaultPlan:
    """A seeded, scripted schedule of faults, activatable per context.

    Thread-safe: call counters and the event log are guarded, so a plan
    can sit over API worker threads exactly like production chaos
    tooling would.
    """

    def __init__(self, seed: int = 0, clock: Clock | None = None) -> None:
        self.seed = int(seed)
        #: The clock injected latency is spent through and the default
        #: clock for policies running under this plan.  ManualClock by
        #: default: chaos time is simulated time.
        self.clock: Clock = clock if clock is not None else ManualClock()
        self._rules: list[FaultRule] = []
        self._rngs: list[random.Random] = []
        self._calls: dict[tuple[str, str], int] = {}  # (site, kind) -> count
        self._fired: dict[int, int] = {}  # rule index -> injections so far
        self._events: list[FaultEvent] = []
        self._lock = threading.Lock()

    # -- scripting ----------------------------------------------------------

    def add(self, rule: FaultRule) -> "FaultPlan":
        """Append one rule; returns self for chaining."""
        with self._lock:
            index = len(self._rules)
            self._rules.append(rule)
            # Deterministic per-rule stream: independent of every other
            # rule's draws, stable across runs and platforms.
            self._rngs.append(
                random.Random(f"{self.seed}:{rule.site}:{rule.kind}:{index}")
            )
        return self

    def kill(
        self,
        site: str,
        rate: float = 1.0,
        at_calls: frozenset[int] | set[int] = frozenset(),
        max_faults: int | None = None,
        error: Callable[[str, int], BaseException] | None = None,
    ) -> "FaultPlan":
        """Script error faults (default: raise :class:`FaultInjected`)."""
        return self.add(
            FaultRule(
                site=site,
                kind="error",
                rate=rate,
                at_calls=frozenset(at_calls),
                max_faults=max_faults,
                error=error,
            )
        )

    def delay(
        self,
        site: str,
        latency_s: float,
        rate: float = 1.0,
        at_calls: frozenset[int] | set[int] = frozenset(),
        max_faults: int | None = None,
    ) -> "FaultPlan":
        """Script latency faults (spent through :attr:`clock`)."""
        return self.add(
            FaultRule(
                site=site,
                kind="latency",
                rate=rate,
                at_calls=frozenset(at_calls),
                max_faults=max_faults,
                latency_s=latency_s,
            )
        )

    def garble(
        self,
        site: str,
        rate: float = 1.0,
        at_calls: frozenset[int] | set[int] = frozenset(),
        max_faults: int | None = None,
        corruption: Callable[[object], object] | None = None,
    ) -> "FaultPlan":
        """Script payload-corruption faults (sites that call
        :func:`corrupt` on their payloads)."""
        return self.add(
            FaultRule(
                site=site,
                kind="corrupt",
                rate=rate,
                at_calls=frozenset(at_calls),
                max_faults=max_faults,
                corruption=corruption,
            )
        )

    # -- activation ---------------------------------------------------------

    @contextlib.contextmanager
    def activate(self) -> Iterator["FaultPlan"]:
        """Make this plan the context's active plan."""
        token = _active_plan.set(self)
        try:
            yield self
        finally:
            _active_plan.reset(token)

    # -- execution (called via the module-level hooks) ----------------------

    def _matching(self, site: str, kinds: tuple[str, ...]) -> list[int]:
        return [
            i
            for i, rule in enumerate(self._rules)
            if rule.site == site and rule.kind in kinds
        ]

    def _decide(self, rule_index: int, call_index: int) -> bool:
        """Does rule ``rule_index`` fire on this call?  Caller holds the
        lock.  The RNG is drawn *every* stochastic call so schedules stay
        aligned with call counts regardless of earlier rule outcomes."""
        rule = self._rules[rule_index]
        fired = self._fired.get(rule_index, 0)
        if rule.at_calls:
            triggered = call_index in rule.at_calls
        else:
            draw = self._rngs[rule_index].random()
            triggered = draw < rule.rate
        if triggered and rule.max_faults is not None and fired >= rule.max_faults:
            return False
        if triggered:
            self._fired[rule_index] = fired + 1
        return triggered

    def _record(self, site: str, kind: str, call_index: int) -> None:
        """Log + meter one injection.  Caller holds the lock."""
        self._events.append(FaultEvent(site=site, kind=kind, call_index=call_index))
        obs.metrics().counter(
            "resilience.faults", {"site": site, "kind": kind}
        ).inc()
        span = obs.current_span()
        if span is not None:
            span.set("fault", kind)
            span.set("fault_site", site)

    def inject(self, site: str, clock: Clock | None = None) -> None:
        """Apply error/latency rules for one call at ``site``."""
        sleep_s = 0.0
        error: BaseException | None = None
        with self._lock:
            call_index = self._calls.get((site, "call"), 0) + 1
            self._calls[(site, "call")] = call_index
            for rule_index in self._matching(site, ("error", "latency")):
                rule = self._rules[rule_index]
                if not self._decide(rule_index, call_index):
                    continue
                self._record(site, rule.kind, call_index)
                if rule.kind == "latency":
                    sleep_s += rule.latency_s
                elif error is None:  # first error rule wins
                    factory = rule.error
                    error = (
                        factory(site, call_index)
                        if factory is not None
                        else FaultInjected(site, call_index)
                    )
        if sleep_s > 0.0:
            (clock or self.clock).sleep(sleep_s)
        if error is not None:
            raise error

    def corrupt(self, site: str, value: object) -> object:
        """Apply corruption rules for one payload at ``site``."""
        with self._lock:
            call_index = self._calls.get((site, "corrupt"), 0) + 1
            self._calls[(site, "corrupt")] = call_index
            for rule_index in self._matching(site, ("corrupt",)):
                rule = self._rules[rule_index]
                if not self._decide(rule_index, call_index):
                    continue
                self._record(site, "corrupt", call_index)
                transform = rule.corruption or _default_corruption
                value = transform(value)
        return value

    # -- introspection ------------------------------------------------------

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """Every injection so far, in order."""
        with self._lock:
            return tuple(self._events)

    def calls(self, site: str) -> int:
        """How many :func:`inject` calls ``site`` has seen."""
        with self._lock:
            return self._calls.get((site, "call"), 0)

    def summary(self) -> dict[str, dict[str, int]]:
        """``site -> {kind -> injections}`` rollup of :attr:`events`."""
        out: dict[str, dict[str, int]] = {}
        for event in self.events:
            out.setdefault(event.site, {}).setdefault(event.kind, 0)
            out[event.site][event.kind] += 1
        return out


# -- module-level hooks (what instrumented call-sites use) -------------------


def active_plan() -> FaultPlan | None:
    """The context's active plan, if any."""
    return _active_plan.get()


def inject(site: str, clock: Clock | None = None) -> None:
    """Fire error/latency faults scripted for ``site`` (no-op without an
    active plan) — call this at the top of a failure-surface operation."""
    plan = _active_plan.get()
    if plan is not None:
        plan.inject(site, clock)


def corrupt(site: str, value: object) -> object:
    """Pass ``value`` through any corruption faults scripted for
    ``site`` (identity without an active plan)."""
    plan = _active_plan.get()
    if plan is None:
        return value
    return plan.corrupt(site, value)


def current_clock(explicit: Clock | None = None) -> Clock:
    """Clock resolution for the resilience layer: an explicit clock wins,
    then the active fault plan's (so chaos runs share one virtual
    timeline), then the real :class:`SystemClock`."""
    if explicit is not None:
        return explicit
    plan = _active_plan.get()
    if plan is not None:
        return plan.clock
    return SystemClock()
