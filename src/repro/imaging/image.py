"""Image container used throughout the platform.

Images are dense ``float64`` RGB arrays in ``[0, 1]`` with shape
``(height, width, 3)``.  A thin wrapper (rather than bare ndarrays)
gives us validation, deterministic hashing for deduplication, and
grayscale conversion in one place.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ImagingError


@dataclass(frozen=True)
class Image:
    """An RGB image with float pixels in [0, 1]."""

    pixels: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        px = np.asarray(self.pixels, dtype=np.float64)
        if px.ndim != 3 or px.shape[2] != 3:
            raise ImagingError(f"expected (H, W, 3) array, got shape {px.shape}")
        if px.shape[0] < 1 or px.shape[1] < 1:
            raise ImagingError(f"image must be at least 1x1, got {px.shape}")
        if np.isnan(px).any():
            raise ImagingError("image contains NaN pixels")
        px = np.clip(px, 0.0, 1.0)
        px.setflags(write=False)
        object.__setattr__(self, "pixels", px)

    # -- basic geometry ---------------------------------------------------

    @property
    def height(self) -> int:
        """Image height in pixels."""
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        """Image width in pixels."""
        return int(self.pixels.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        """``(height, width)``."""
        return (self.height, self.width)

    # -- conversions --------------------------------------------------------

    def grayscale(self) -> np.ndarray:
        """Luma (ITU-R BT.601) single-channel view, shape (H, W)."""
        r, g, b = self.pixels[..., 0], self.pixels[..., 1], self.pixels[..., 2]
        return 0.299 * r + 0.587 * g + 0.114 * b

    def to_uint8(self) -> np.ndarray:
        """8-bit representation (for persistence / hashing)."""
        return np.round(self.pixels * 255.0).astype(np.uint8)

    @classmethod
    def from_uint8(cls, array: np.ndarray) -> "Image":
        """Build from an 8-bit (H, W, 3) array."""
        return cls(np.asarray(array, dtype=np.float64) / 255.0)

    # -- identity -----------------------------------------------------------

    def content_hash(self) -> str:
        """Deterministic SHA-1 of the 8-bit pixel content.

        The platform deduplicates uploads by content hash, which the
        paper motivates ("visual data is huge in size and many times
        redundant").
        """
        h = hashlib.sha1()
        h.update(str(self.shape).encode())
        h.update(self.to_uint8().tobytes())
        return h.hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return self.shape == other.shape and np.array_equal(
            self.to_uint8(), other.to_uint8()
        )

    def __hash__(self) -> int:
        return hash(self.content_hash())


def solid_color(height: int, width: int, rgb: tuple[float, float, float]) -> Image:
    """A constant-colour image — handy for tests and augment baselines."""
    px = np.empty((height, width, 3), dtype=np.float64)
    px[..., 0], px[..., 1], px[..., 2] = rgb
    return Image(px)
