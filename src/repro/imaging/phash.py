"""Perceptual hashing for near-duplicate detection.

Exact content hashes catch byte-identical re-uploads; perceptual hashes
catch the *near*-duplicates mobile collection actually produces
(recompressed, slightly cropped, brightness-shifted copies).  We use
dHash: resize to 9x8 luma, hash the sign of horizontal gradients into
64 bits.  Hamming distance between hashes approximates visual
difference.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImagingError
from repro.imaging.image import Image

#: Hash length in bits (8 rows x 8 horizontal comparisons).
HASH_BITS = 64


def _downscale_mean(gray, rows: int, cols: int):
    """Area-average downscale: each output cell is the mean of its
    source block.  Unlike point sampling, this suppresses pixel noise —
    essential for a *perceptual* hash."""
    h, w = gray.shape
    row_edges = np.linspace(0, h, rows + 1).astype(int)
    col_edges = np.linspace(0, w, cols + 1).astype(int)
    out = np.empty((rows, cols))
    for i in range(rows):
        for j in range(cols):
            block = gray[
                row_edges[i] : max(row_edges[i + 1], row_edges[i] + 1),
                col_edges[j] : max(col_edges[j + 1], col_edges[j] + 1),
            ]
            out[i, j] = block.mean()
    return out


#: Luma deadzone for gradient-sign bits.  Horizontally flat regions
#: (sky, road) have near-zero true gradients whose sign would otherwise
#: be decided by sensor noise; differences below the deadzone hash to 0.
GRADIENT_DEADZONE = 0.01


def dhash(image: Image) -> int:
    """64-bit difference hash of an image (deadzoned gradient signs)."""
    small = _downscale_mean(image.grayscale(), 8, 9)
    bits = 0
    position = 0
    for row in range(8):
        for col in range(8):
            diff = small[row, col] - small[row, col + 1]
            bits |= int(diff > GRADIENT_DEADZONE) << position
            position += 1
    return bits


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two hashes."""
    if a < 0 or b < 0:
        raise ImagingError("hashes must be non-negative integers")
    return bin(a ^ b).count("1")


class NearDuplicateIndex:
    """Hash table over dHash values with a Hamming-radius lookup.

    Buckets on the four 16-bit quarters of the hash: any pair within
    Hamming distance 3 shares at least one identical quarter (pigeonhole
    over 4 quarters), so the candidate scan stays tiny while recall at
    the default radius is exact.
    """

    def __init__(self, max_distance: int = 3) -> None:
        if not (0 <= max_distance <= HASH_BITS):
            raise ImagingError(f"max_distance must be in [0, {HASH_BITS}]")
        self.max_distance = max_distance
        self._hashes: dict[object, int] = {}
        self._buckets: list[dict[int, list[object]]] = [{} for _ in range(4)]

    def __len__(self) -> int:
        return len(self._hashes)

    @staticmethod
    def _quarters(value: int) -> list[int]:
        return [(value >> (16 * i)) & 0xFFFF for i in range(4)]

    def add(self, item: object, image: Image) -> None:
        """Index an image under an opaque id."""
        if item in self._hashes:
            raise ImagingError(f"item {item!r} already indexed")
        value = dhash(image)
        self._hashes[item] = value
        for bucket, quarter in zip(self._buckets, self._quarters(value)):
            bucket.setdefault(quarter, []).append(item)

    def find_similar(self, image: Image) -> list[tuple[object, int]]:
        """Indexed items within ``max_distance`` bits, nearest first.

        Exact for ``max_distance <= 3``; for larger radii it is a
        candidate filter (guaranteed complete up to distance 3 per the
        pigeonhole argument, best-effort beyond).
        """
        value = dhash(image)
        candidates: set[object] = set()
        for bucket, quarter in zip(self._buckets, self._quarters(value)):
            candidates.update(bucket.get(quarter, ()))
        scored = [
            (item, hamming_distance(self._hashes[item], value))
            for item in candidates
        ]
        matches = [(i, d) for i, d in scored if d <= self.max_distance]
        matches.sort(key=lambda pair: (pair[1], str(pair[0])))
        return matches

    def is_near_duplicate(self, image: Image) -> bool:
        """True when some indexed image is within the radius."""
        return bool(self.find_similar(image))
