"""Difference-of-Gaussians keypoint detection (SIFT's detector stage).

The paper's SIFT-BoW feature needs "interesting points which lie on the
high-contrast regions of images".  This is a faithful, single-octave-
pyramid DoG detector: build a Gaussian scale space, subtract adjacent
scales, and keep local 3x3x3 extrema above a contrast threshold, with an
edge-response rejection test like Lowe's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ImagingError
from repro.imaging.filters import gaussian_blur
from repro.imaging.image import Image


@dataclass(frozen=True, slots=True)
class Keypoint:
    """A detected interest point: location, scale, and response."""

    row: int
    col: int
    sigma: float
    response: float


def _scale_space(
    gray: np.ndarray, num_scales: int, sigma0: float, scales_per_octave: int = 2
) -> list[tuple[float, np.ndarray]]:
    """Gaussian scale space: ``num_scales`` blurred copies with sigma
    growing by ``2**(1/scales_per_octave)`` per level, so the default
    seven levels span several octaves and blobs of widely varying size
    produce a proper scale-space extremum."""
    k = 2.0 ** (1.0 / scales_per_octave)
    return [
        (sigma0 * k**i, gaussian_blur(gray, sigma0 * k**i))
        for i in range(num_scales)
    ]


def _edge_like(dog: np.ndarray, row: int, col: int, edge_ratio: float = 10.0) -> bool:
    """Lowe's edge rejection: discard extrema whose local Hessian has a
    large principal-curvature ratio (responses lying on edges, not
    corners)."""
    dxx = dog[row, col + 1] + dog[row, col - 1] - 2.0 * dog[row, col]
    dyy = dog[row + 1, col] + dog[row - 1, col] - 2.0 * dog[row, col]
    dxy = (
        dog[row + 1, col + 1]
        - dog[row + 1, col - 1]
        - dog[row - 1, col + 1]
        + dog[row - 1, col - 1]
    ) / 4.0
    trace = dxx + dyy
    det = dxx * dyy - dxy * dxy
    if det <= 0:
        return True
    threshold = (edge_ratio + 1.0) ** 2 / edge_ratio
    return (trace * trace) / det >= threshold


def detect_keypoints(
    image: Image,
    num_scales: int = 7,
    sigma0: float = 1.0,
    contrast_threshold: float = 0.015,
    max_keypoints: int = 200,
    border: int = 4,
) -> list[Keypoint]:
    """Detect DoG extrema in ``image``.

    Returns at most ``max_keypoints`` keypoints sorted by decreasing
    absolute response, each at least ``border`` pixels from the edge.
    """
    if num_scales < 3:
        raise ImagingError(f"need at least 3 scales for DoG extrema, got {num_scales}")
    gray = image.grayscale()
    if gray.shape[0] < 2 * border + 3 or gray.shape[1] < 2 * border + 3:
        return []
    space = _scale_space(gray, num_scales, sigma0)
    dogs = [
        (space[i][0], space[i + 1][1] - space[i][1])
        for i in range(len(space) - 1)
    ]

    found: list[Keypoint] = []
    for layer in range(1, len(dogs) - 1):
        sigma, dog = dogs[layer]
        below, above = dogs[layer - 1][1], dogs[layer + 1][1]
        stack = np.stack([below, dog, above])
        interior = dog[border:-border, border:-border]
        strong = np.abs(interior) > contrast_threshold

        # Local 3x3x3 extremum test, vectorised via shifted comparisons.
        is_max = np.ones_like(strong)
        is_min = np.ones_like(strong)
        center = stack[1, border:-border, border:-border]
        for dz in (0, 1, 2):
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    if dz == 1 and dr == 0 and dc == 0:
                        continue
                    neighbor = stack[
                        dz,
                        border + dr : stack.shape[1] - border + dr,
                        border + dc : stack.shape[2] - border + dc,
                    ]
                    is_max &= center >= neighbor
                    is_min &= center <= neighbor
        candidates = np.argwhere(strong & (is_max | is_min))
        for r_off, c_off in candidates:
            row, col = int(r_off) + border, int(c_off) + border
            if _edge_like(dog, row, col):
                continue
            found.append(
                Keypoint(row=row, col=col, sigma=sigma, response=float(dog[row, col]))
            )

    found.sort(key=lambda kp: -abs(kp.response))
    return found[:max_keypoints]


def dense_keypoints(image: Image, stride: int = 8, sigma: float = 1.6) -> list[Keypoint]:
    """Dense sampling fallback: a regular lattice of keypoints.

    BoW pipelines often densify when detectors fire sparsely (e.g. on
    low-texture street scenes); the platform uses this to guarantee a
    minimum number of descriptors per image.
    """
    if stride < 1:
        raise ImagingError(f"stride must be >= 1, got {stride}")
    rows = range(stride, image.height - stride + 1, stride)
    cols = range(stride, image.width - stride + 1, stride)
    return [
        Keypoint(row=r, col=c, sigma=sigma, response=0.0) for r in rows for c in cols
    ]
