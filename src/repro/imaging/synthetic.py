"""Synthetic streetscape renderer for the LASAN cleanliness classes.

The paper's evaluation uses 22K proprietary geo-tagged street images
labelled with five cleanliness levels.  We substitute a procedural
renderer that draws small street scenes with class-specific content:

* ``clean`` — road, sidewalk, sky, lane markings, nothing else;
* ``bulky_item`` — a large rectangular furniture silhouette with
  drawer/panel lines on the sidewalk;
* ``illegal_dumping`` — a scatter of small irregular trash-bag blobs;
* ``encampment`` — one or two triangular tent silhouettes;
* ``overgrown_vegetation`` — a tall textured green mass along the
  sidewalk edge.

Class signal is deliberately layered so the paper's feature ordering
emerges from real extraction code:

* **colour** is weakly informative: object hues are jittered and
  overlap across classes (only vegetation is reliably green);
* **local texture** (SIFT-BoW) is moderately informative: each object
  family has a distinct edge/texture signature;
* **shape & layout** (CNN features) is strongly informative: the
  silhouette geometry differs cleanly between classes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImagingError
from repro.imaging.image import Image

#: Canonical class names, in the paper's order (Fig. 5).
CLEANLINESS_CLASSES = (
    "bulky_item",
    "illegal_dumping",
    "encampment",
    "overgrown_vegetation",
    "clean",
)


def _jitter(rng: np.random.Generator, base: tuple[float, float, float], amount: float) -> np.ndarray:
    """A colour near ``base`` with uniform jitter of +/- ``amount``."""
    color = np.array(base) + rng.uniform(-amount, amount, 3)
    return np.clip(color, 0.0, 1.0)


def _base_scene(rng: np.random.Generator, size: int) -> np.ndarray:
    """Sky / buildings / sidewalk / road backdrop shared by all classes."""
    px = np.zeros((size, size, 3), dtype=np.float64)
    horizon = int(size * rng.uniform(0.28, 0.40))
    sidewalk_top = int(size * rng.uniform(0.55, 0.65))

    sky = _jitter(rng, (0.65, 0.78, 0.92), 0.10)
    rows = np.arange(horizon).reshape(-1, 1, 1) / max(horizon, 1)
    px[:horizon] = sky * (1.0 - 0.15 * rows)

    building = _jitter(rng, (0.55, 0.50, 0.46), 0.12)
    px[horizon:sidewalk_top] = building
    # Window texture on the building band.
    for _ in range(rng.integers(3, 7)):
        wr = rng.integers(horizon, max(sidewalk_top - 3, horizon + 1))
        wc = rng.integers(1, size - 4)
        px[wr : wr + 2, wc : wc + 3] = _jitter(rng, (0.25, 0.28, 0.35), 0.05)

    sidewalk = _jitter(rng, (0.62, 0.60, 0.58), 0.06)
    road_top = int(size * rng.uniform(0.78, 0.86))
    px[sidewalk_top:road_top] = sidewalk
    road = _jitter(rng, (0.30, 0.30, 0.32), 0.05)
    px[road_top:] = road
    # Lane marking.
    lane = road_top + (size - road_top) // 2
    if lane < size:
        px[lane : lane + 1, :: max(size // 8, 1)] = (0.85, 0.82, 0.55)
    return px


def _draw_rect(px: np.ndarray, top: int, left: int, h: int, w: int, color: np.ndarray) -> None:
    size = px.shape[0]
    px[max(top, 0) : min(top + h, size), max(left, 0) : min(left + w, size)] = color


def _draw_triangle(px: np.ndarray, apex_row: int, apex_col: int, h: int, half_w: int, color: np.ndarray) -> None:
    """Filled downward-widening triangle (tent silhouette)."""
    size = px.shape[0]
    for dr in range(h):
        row = apex_row + dr
        if not (0 <= row < size):
            continue
        span = int(half_w * dr / max(h - 1, 1))
        lo, hi = max(apex_col - span, 0), min(apex_col + span + 1, size)
        px[row, lo:hi] = color


def _draw_blob(px: np.ndarray, rng: np.random.Generator, row: int, col: int, radius: int, color: np.ndarray) -> None:
    """Irregular roundish blob (trash bag)."""
    size = px.shape[0]
    rr, cc = np.mgrid[0:size, 0:size]
    wobble = rng.uniform(0.7, 1.3)
    mask = ((rr - row) ** 2 * wobble + (cc - col) ** 2 / wobble) <= radius**2
    px[mask] = color


def _object_band(rng: np.random.Generator, size: int) -> tuple[int, int]:
    """Vertical band (top, bottom) where street objects sit — on or near
    the sidewalk, in the lower half of the frame."""
    return int(size * 0.55), int(size * 0.92)


def _render_bulky_item(px: np.ndarray, rng: np.random.Generator) -> None:
    size = px.shape[0]
    band_top, band_bot = _object_band(rng, size)
    h = rng.integers(int(size * 0.22), int(size * 0.34))
    w = rng.integers(int(size * 0.25), int(size * 0.40))
    top = rng.integers(band_top, max(band_bot - h, band_top + 1))
    left = rng.integers(1, max(size - w - 1, 2))
    # Furniture hue overlaps with trash-bag and tent hues on purpose.
    color = _jitter(rng, (0.48, 0.35, 0.24), 0.18)
    _draw_rect(px, top, left, h, w, color)
    # Drawer/panel lines: the bulky item's texture signature.
    n_lines = rng.integers(2, 4)
    for k in range(1, n_lines + 1):
        row = top + k * h // (n_lines + 1)
        if 0 <= row < size:
            px[row, max(left, 0) : min(left + w, size)] = color * 0.55
    # Legs.
    leg_h = max(2, h // 6)
    for leg_col in (left + 1, left + w - 2):
        if 0 <= leg_col < size:
            px[min(top + h, size - leg_h) : min(top + h + leg_h, size), leg_col] = color * 0.4


def _render_illegal_dumping(px: np.ndarray, rng: np.random.Generator) -> None:
    size = px.shape[0]
    band_top, band_bot = _object_band(rng, size)
    n_bags = rng.integers(3, 7)
    cluster_col = rng.integers(int(size * 0.2), int(size * 0.8))
    for _ in range(n_bags):
        row = rng.integers(band_top, band_bot)
        col = int(np.clip(cluster_col + rng.normal(0, size * 0.10), 2, size - 3))
        radius = rng.integers(max(size // 24, 2), max(size // 10, 3))
        color = _jitter(rng, (0.30, 0.28, 0.30), 0.18)
        _draw_blob(px, rng, row, col, radius, color)
    # Scattered debris specks: high-frequency texture.
    for _ in range(rng.integers(10, 25)):
        row = rng.integers(band_top, min(band_bot + 2, size))
        col = rng.integers(0, size)
        px[row, col] = rng.uniform(0.1, 0.9, 3)


def _render_encampment(px: np.ndarray, rng: np.random.Generator) -> None:
    size = px.shape[0]
    band_top, _ = _object_band(rng, size)
    n_tents = rng.integers(1, 3)
    for _ in range(n_tents):
        h = rng.integers(int(size * 0.18), int(size * 0.30))
        half_w = rng.integers(int(size * 0.10), int(size * 0.20))
        apex_row = rng.integers(band_top - h // 2, band_top + h // 3)
        apex_col = rng.integers(half_w + 1, size - half_w - 1)
        # Tarp hues vary widely — blue, grey, green-ish, orange — so
        # colour alone cannot nail the class.
        base = [(0.25, 0.35, 0.60), (0.45, 0.45, 0.48), (0.35, 0.45, 0.35), (0.70, 0.45, 0.25)]
        color = _jitter(rng, base[rng.integers(len(base))], 0.10)
        _draw_triangle(px, apex_row, apex_col, h, half_w, color)
        # Ridge seam down the middle: tent texture signature.
        ridge = np.clip(color * 0.6, 0, 1)
        for dr in range(h):
            row = apex_row + dr
            if 0 <= row < size:
                px[row, apex_col] = ridge


def _render_vegetation(px: np.ndarray, rng: np.random.Generator) -> None:
    size = px.shape[0]
    band_top = int(size * rng.uniform(0.35, 0.50))
    band_bot = int(size * rng.uniform(0.75, 0.92))
    left = rng.integers(0, size // 3)
    width = rng.integers(int(size * 0.35), int(size * 0.70))
    rr, cc = np.mgrid[0:size, 0:size]
    in_band = (rr >= band_top) & (rr < band_bot) & (cc >= left) & (cc < left + width)
    # Reliably green, strongly textured: colour's one easy class.
    base_green = _jitter(rng, (0.22, 0.52, 0.20), 0.08)
    texture = rng.uniform(0.7, 1.3, (size, size, 1))
    grass = np.clip(base_green * texture, 0, 1)
    px[in_band] = grass[in_band]
    # Fronds poking above the band.
    for _ in range(rng.integers(6, 14)):
        col = rng.integers(left, min(left + width, size - 1))
        top = band_top - rng.integers(2, max(size // 6, 3))
        px[max(top, 0) : band_top, col] = np.clip(base_green * rng.uniform(0.8, 1.2), 0, 1)


_RENDERERS = {
    "bulky_item": _render_bulky_item,
    "illegal_dumping": _render_illegal_dumping,
    "encampment": _render_encampment,
    "overgrown_vegetation": _render_vegetation,
    "clean": lambda px, rng: None,
}


def _render_graffiti(px: np.ndarray, rng: np.random.Generator) -> None:
    """Colourful scribble strokes on the building band — an overlay
    *independent* of the cleanliness class, so the same dataset supports
    a second (graffiti) analysis the way the paper describes."""
    size = px.shape[0]
    band_top, band_bot = int(size * 0.32), int(size * 0.58)
    n_strokes = rng.integers(2, 5)
    for _ in range(n_strokes):
        color = _jitter(rng, (0.8, 0.2, 0.5), 0.3)
        row = int(rng.integers(band_top, max(band_bot - 2, band_top + 1)))
        col = int(rng.integers(1, size - 6))
        length = int(rng.integers(4, max(size // 4, 5)))
        drift = rng.choice((-1, 0, 1))
        for step in range(length):
            r = int(np.clip(row + drift * step // 2 + rng.integers(-1, 2), 0, size - 1))
            c = min(col + step, size - 1)
            px[r, c] = color


def render_street_scene(
    label: str,
    rng: np.random.Generator,
    size: int = 48,
    noise_sigma: float = 0.03,
    distractor_prob: float = 0.25,
    graffiti: bool = False,
) -> Image:
    """Render one synthetic street scene of the given cleanliness class.

    ``distractor_prob`` controls how often an off-class clutter element
    (a small ambiguous box) appears, which softens class boundaries the
    way real street photos do.  Encampment scenes receive extra
    bulky-item-like clutter so that — as in the paper's Fig. 7 — it is
    the hardest class.
    """
    if label not in _RENDERERS:
        raise ImagingError(
            f"unknown class {label!r}; expected one of {CLEANLINESS_CLASSES}"
        )
    if size < 24:
        raise ImagingError(f"scene size must be >= 24 px, got {size}")
    px = _base_scene(rng, size)
    if graffiti:
        _render_graffiti(px, rng)
    _RENDERERS[label](px, rng)

    if rng.random() < distractor_prob:
        # Ambiguous small box that could be furniture or a bag.
        band_top, band_bot = _object_band(rng, size)
        h = rng.integers(2, max(size // 10, 3))
        w = rng.integers(2, max(size // 8, 3))
        top = rng.integers(band_top, band_bot)
        left = rng.integers(0, size - w)
        _draw_rect(px, top, left, h, w, _jitter(rng, (0.4, 0.35, 0.3), 0.2))
    if label == "encampment" and rng.random() < 0.5:
        # Encampments co-occur with belongings — confusable clutter.
        band_top, band_bot = _object_band(rng, size)
        h = rng.integers(3, max(size // 8, 4))
        w = rng.integers(4, max(size // 6, 5))
        top = rng.integers(band_top, max(band_bot - h, band_top + 1))
        left = rng.integers(0, size - w)
        _draw_rect(px, top, left, h, w, _jitter(rng, (0.45, 0.35, 0.28), 0.15))

    if noise_sigma > 0:
        px = px + rng.normal(0.0, noise_sigma, px.shape)
    return Image(px)
