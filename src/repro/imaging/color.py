"""Colour-space conversion and colour histograms.

The paper's colour descriptor: "images were processed in the HSV color
space, and the color histogram was divided into 20, 20, and 10 bins in
H, S, and V, respectively" — 50 dimensions total (per-channel
histograms concatenated).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImagingError
from repro.imaging.image import Image

#: The paper's HSV bin layout: 20 H bins, 20 S bins, 10 V bins.
PAPER_HSV_BINS = (20, 20, 10)


def rgb_to_hsv(pixels: np.ndarray) -> np.ndarray:
    """Vectorised RGB→HSV for an (..., 3) array of floats in [0, 1].

    Output channels: H in [0, 1) (scaled from 0-360 degrees),
    S in [0, 1], V in [0, 1] — matching ``colorsys`` conventions.
    """
    px = np.asarray(pixels, dtype=np.float64)
    if px.shape[-1] != 3:
        raise ImagingError(f"expected trailing RGB axis of size 3, got {px.shape}")
    r, g, b = px[..., 0], px[..., 1], px[..., 2]
    maxc = np.maximum(np.maximum(r, g), b)
    minc = np.minimum(np.minimum(r, g), b)
    value = maxc
    delta = maxc - minc
    sat = np.where(maxc > 0, delta / np.where(maxc > 0, maxc, 1.0), 0.0)

    # Hue: piecewise by which channel is the max.
    safe_delta = np.where(delta > 0, delta, 1.0)
    rc = (maxc - r) / safe_delta
    gc = (maxc - g) / safe_delta
    bc = (maxc - b) / safe_delta
    hue = np.where(
        maxc == r,
        bc - gc,
        np.where(maxc == g, 2.0 + rc - bc, 4.0 + gc - rc),
    )
    hue = (hue / 6.0) % 1.0
    hue = np.where(delta > 0, hue, 0.0)
    return np.stack([hue, sat, value], axis=-1)


def hsv_to_rgb(pixels: np.ndarray) -> np.ndarray:
    """Vectorised HSV→RGB, the inverse of :func:`rgb_to_hsv`."""
    px = np.asarray(pixels, dtype=np.float64)
    if px.shape[-1] != 3:
        raise ImagingError(f"expected trailing HSV axis of size 3, got {px.shape}")
    h, s, v = px[..., 0], px[..., 1], px[..., 2]
    i = np.floor(h * 6.0).astype(int) % 6
    f = h * 6.0 - np.floor(h * 6.0)
    p = v * (1.0 - s)
    q = v * (1.0 - s * f)
    t = v * (1.0 - s * (1.0 - f))
    r = np.choose(i, [v, q, p, p, t, v])
    g = np.choose(i, [t, v, v, q, p, p])
    b = np.choose(i, [p, p, t, v, v, q])
    return np.stack([r, g, b], axis=-1)


def hsv_histogram(
    image: Image,
    bins: tuple[int, int, int] = PAPER_HSV_BINS,
    normalize: bool = True,
) -> np.ndarray:
    """Concatenated per-channel HSV histogram (paper's colour feature).

    With the default bins the vector is 20 + 20 + 10 = 50-dimensional.
    ``normalize=True`` divides by the pixel count so images of
    different sizes are comparable.
    """
    if any(b < 1 for b in bins):
        raise ImagingError(f"all bin counts must be >= 1, got {bins}")
    hsv = rgb_to_hsv(image.pixels)
    parts = []
    for channel, nbins in zip(range(3), bins):
        values = hsv[..., channel].ravel()
        hist, _ = np.histogram(values, bins=nbins, range=(0.0, 1.0))
        parts.append(hist.astype(np.float64))
    vector = np.concatenate(parts)
    if normalize:
        total = image.height * image.width
        vector = vector / float(total)
    return vector


def joint_hsv_histogram(
    image: Image,
    bins: tuple[int, int, int] = (8, 4, 4),
    normalize: bool = True,
) -> np.ndarray:
    """Joint 3-D HSV histogram, flattened.

    A richer (but higher-dimensional) alternative to the per-channel
    histogram; exposed for ablation benches.
    """
    hsv = rgb_to_hsv(image.pixels).reshape(-1, 3)
    hist, _ = np.histogramdd(
        hsv, bins=bins, range=((0.0, 1.0), (0.0, 1.0), (0.0, 1.0))
    )
    vector = hist.ravel().astype(np.float64)
    if normalize:
        vector = vector / float(image.height * image.width)
    return vector
