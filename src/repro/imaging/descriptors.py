"""SIFT-style local descriptors.

For each keypoint we histogram gradient orientations over a 4x4 spatial
grid of cells with 8 orientation bins — the 128-D layout of Lowe's
SIFT — then L2-normalise, clip at 0.2, and renormalise exactly as the
original does to damp illumination effects.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ImagingError
from repro.imaging.filters import gradient_magnitude_orientation
from repro.imaging.image import Image
from repro.imaging.keypoints import Keypoint

#: 4x4 spatial cells x 8 orientation bins.
DESCRIPTOR_DIM = 128
_GRID = 4
_ORIENT_BINS = 8


def describe_keypoint(
    magnitude: np.ndarray,
    orientation: np.ndarray,
    keypoint: Keypoint,
    patch_radius: int = 8,
) -> np.ndarray | None:
    """128-D descriptor for one keypoint, or ``None`` when the patch
    does not fit inside the image."""
    row, col = keypoint.row, keypoint.col
    h, w = magnitude.shape
    if (
        row - patch_radius < 0
        or col - patch_radius < 0
        or row + patch_radius > h
        or col + patch_radius > w
    ):
        return None
    mag = magnitude[row - patch_radius : row + patch_radius, col - patch_radius : col + patch_radius]
    ori = orientation[row - patch_radius : row + patch_radius, col - patch_radius : col + patch_radius]

    cell = (2 * patch_radius) // _GRID
    descriptor = np.zeros((_GRID, _GRID, _ORIENT_BINS), dtype=np.float64)
    bin_width = 2.0 * math.pi / _ORIENT_BINS
    bins = np.minimum((ori / bin_width).astype(int), _ORIENT_BINS - 1)
    for gi in range(_GRID):
        for gj in range(_GRID):
            sub_mag = mag[gi * cell : (gi + 1) * cell, gj * cell : (gj + 1) * cell]
            sub_bin = bins[gi * cell : (gi + 1) * cell, gj * cell : (gj + 1) * cell]
            descriptor[gi, gj] = np.bincount(
                sub_bin.ravel(), weights=sub_mag.ravel(), minlength=_ORIENT_BINS
            )

    vec = descriptor.ravel()
    norm = np.linalg.norm(vec)
    if norm < 1e-12:
        return None
    vec = vec / norm
    # Lowe's illumination clamp: cap at 0.2 then renormalise.
    vec = np.minimum(vec, 0.2)
    norm = np.linalg.norm(vec)
    if norm < 1e-12:
        return None
    return vec / norm


def extract_descriptors(
    image: Image,
    keypoints: list[Keypoint],
    patch_radius: int = 8,
) -> np.ndarray:
    """Descriptors for every keypoint whose patch fits; shape (n, 128).

    Returns an empty ``(0, 128)`` array when nothing can be described —
    callers (the BoW encoder) treat that as "no visual words".
    """
    if patch_radius < _GRID:
        raise ImagingError(
            f"patch radius must be at least {_GRID} to cover the descriptor grid"
        )
    magnitude, orientation = gradient_magnitude_orientation(image.grayscale())
    rows = []
    for kp in keypoints:
        vec = describe_keypoint(magnitude, orientation, kp, patch_radius)
        if vec is not None:
            rows.append(vec)
    if not rows:
        return np.empty((0, DESCRIPTOR_DIM), dtype=np.float64)
    return np.vstack(rows)
