"""Aerial (drone) scene renderer for the disaster-platform extension.

The paper's future work targets TVDP as a disaster data platform:
"collect and analyze drone videos for a wide area real-time monitoring
in disasters (e.g., wildfire)".  This renderer produces top-down
terrain tiles in three states — ``normal``, ``smoke``, ``fire`` — with
the same layered-signal philosophy as the street renderer: fire is
chromatically loud (orange cores), smoke is texturally soft (grey
plumes over washed-out terrain), normal tiles are green/brown patchwork.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImagingError
from repro.imaging.filters import gaussian_blur
from repro.imaging.image import Image

#: Aerial condition labels, benign to severe.
AERIAL_CLASSES = ("normal", "smoke", "fire")


def _terrain(rng: np.random.Generator, size: int) -> np.ndarray:
    """Green/brown vegetation patchwork with a road seam."""
    base = np.empty((size, size, 3))
    # Low-frequency vegetation density field.
    field = gaussian_blur(rng.random((size, size)), sigma=size / 8.0)
    field = (field - field.min()) / max(field.max() - field.min(), 1e-9)
    green = np.array([0.20, 0.45, 0.18])
    brown = np.array([0.45, 0.36, 0.22])
    base = field[..., None] * green + (1.0 - field[..., None]) * brown
    base += rng.normal(0.0, 0.02, base.shape)
    # A road crossing the tile.
    col = rng.integers(size // 4, 3 * size // 4)
    width = max(size // 24, 1)
    base[:, col : col + width] = (0.5, 0.5, 0.5)
    return np.clip(base, 0.0, 1.0)


def _add_smoke(px: np.ndarray, rng: np.random.Generator, density: float) -> None:
    """Grey plume: soft blobs that wash out the terrain colours."""
    size = px.shape[0]
    plume = np.zeros((size, size))
    n_puffs = rng.integers(3, 7)
    rr, cc = np.mgrid[0:size, 0:size]
    for _ in range(n_puffs):
        r0, c0 = rng.integers(0, size, 2)
        radius = rng.uniform(size / 8.0, size / 3.0)
        plume += np.exp(-(((rr - r0) ** 2 + (cc - c0) ** 2) / (2 * radius**2)))
    plume = gaussian_blur(plume, sigma=size / 12.0)
    plume = density * plume / max(plume.max(), 1e-9)
    grey = np.array([0.72, 0.72, 0.74])
    px[:] = px * (1.0 - plume[..., None]) + grey * plume[..., None]


def _add_fire(px: np.ndarray, rng: np.random.Generator) -> None:
    """Orange/red burning cores with a charred margin."""
    size = px.shape[0]
    rr, cc = np.mgrid[0:size, 0:size]
    n_cores = rng.integers(1, 4)
    for _ in range(n_cores):
        r0, c0 = rng.integers(size // 6, 5 * size // 6, 2)
        radius = rng.uniform(size / 12.0, size / 5.0)
        d2 = (rr - r0) ** 2 + (cc - c0) ** 2
        core = d2 <= radius**2
        margin = (d2 <= (1.8 * radius) ** 2) & ~core
        flame = np.stack(
            [
                rng.uniform(0.85, 1.0, core.sum()),
                rng.uniform(0.25, 0.55, core.sum()),
                rng.uniform(0.0, 0.1, core.sum()),
            ],
            axis=-1,
        )
        px[core] = flame
        px[margin] = np.array([0.12, 0.10, 0.09])  # char


def render_aerial_scene(
    label: str,
    rng: np.random.Generator,
    size: int = 48,
    noise_sigma: float = 0.02,
) -> Image:
    """Render one drone tile of the given condition."""
    if label not in AERIAL_CLASSES:
        raise ImagingError(f"unknown aerial class {label!r}; expected {AERIAL_CLASSES}")
    if size < 24:
        raise ImagingError(f"tile size must be >= 24 px, got {size}")
    px = _terrain(rng, size)
    if label == "smoke":
        _add_smoke(px, rng, density=rng.uniform(0.5, 0.9))
    elif label == "fire":
        _add_fire(px, rng)
        _add_smoke(px, rng, density=rng.uniform(0.3, 0.7))
    if noise_sigma > 0:
        px = px + rng.normal(0.0, noise_sigma, px.shape)
    return Image(px)


def fire_pixel_fraction(image: Image) -> float:
    """Fraction of pixels with a flame signature (bright, red-dominant).

    A physically-motivated detector used as the fast edge-side screen in
    the wildfire monitor; the trained classifier refines it server-side.
    """
    px = image.pixels
    r, g, b = px[..., 0], px[..., 1], px[..., 2]
    flame = (r > 0.7) & (r - g > 0.25) & (b < 0.3)
    return float(flame.mean())
