"""Low-level image filtering: convolution, Gaussian, Sobel, Gabor.

These kernels power the SIFT-style keypoint pipeline and the CNN
feature extractor's fixed filter banks.  Implemented with
``scipy.ndimage``-free NumPy FFT/convolution so behaviour is fully
under our control and dependency-light.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ImagingError


def convolve2d(image: np.ndarray, kernel: np.ndarray, mode: str = "same") -> np.ndarray:
    """2-D correlation of a (H, W) array with a (kh, kw) kernel.

    ``mode='same'`` pads reflectively and returns (H, W); ``'valid'``
    returns the un-padded (H-kh+1, W-kw+1) result.  Kernels are applied
    as correlation (no flip), matching deep-learning convention.
    """
    img = np.asarray(image, dtype=np.float64)
    ker = np.asarray(kernel, dtype=np.float64)
    if img.ndim != 2 or ker.ndim != 2:
        raise ImagingError("convolve2d expects 2-D image and kernel")
    kh, kw = ker.shape
    if mode == "same":
        ph, pw = kh // 2, kw // 2
        img = np.pad(img, ((ph, kh - 1 - ph), (pw, kw - 1 - pw)), mode="reflect")
    elif mode != "valid":
        raise ImagingError(f"unknown mode {mode!r}")
    h, w = img.shape
    out_h, out_w = h - kh + 1, w - kw + 1
    if out_h < 1 or out_w < 1:
        raise ImagingError(
            f"kernel {ker.shape} larger than image {img.shape} in 'valid' mode"
        )
    # im2col via stride tricks: windows have shape (out_h, out_w, kh, kw).
    windows = np.lib.stride_tricks.sliding_window_view(img, (kh, kw))
    return np.einsum("ijkl,kl->ij", windows, ker)


def gaussian_kernel1d(sigma: float, radius: int | None = None) -> np.ndarray:
    """Normalised 1-D Gaussian kernel."""
    if sigma <= 0:
        raise ImagingError(f"sigma must be positive, got {sigma}")
    if radius is None:
        radius = max(1, int(math.ceil(3.0 * sigma)))
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (x / sigma) ** 2)
    return kernel / kernel.sum()


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur of a 2-D array."""
    kernel = gaussian_kernel1d(sigma)
    blurred = convolve2d(image, kernel[np.newaxis, :], mode="same")
    return convolve2d(blurred, kernel[:, np.newaxis], mode="same")


#: Sobel derivative kernels (x = columns increasing rightwards).
SOBEL_X = np.array([[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]])
SOBEL_Y = SOBEL_X.T.copy()


def sobel_gradients(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(gx, gy)`` Sobel gradients of a 2-D array."""
    return convolve2d(image, SOBEL_X, "same"), convolve2d(image, SOBEL_Y, "same")


def gradient_magnitude_orientation(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gradient magnitude and orientation (radians in [0, 2*pi))."""
    gx, gy = sobel_gradients(image)
    magnitude = np.hypot(gx, gy)
    orientation = np.arctan2(gy, gx) % (2.0 * math.pi)
    return magnitude, orientation


def gabor_kernel(
    size: int,
    wavelength: float,
    orientation_rad: float,
    sigma: float | None = None,
    phase: float = 0.0,
    aspect: float = 0.5,
) -> np.ndarray:
    """Real Gabor filter: oriented sinusoid under a Gaussian envelope.

    The CNN feature extractor's first layer is a bank of these — the
    classic stand-in for learned early-vision filters.
    """
    if size < 3 or size % 2 == 0:
        raise ImagingError(f"gabor size must be odd and >= 3, got {size}")
    if sigma is None:
        sigma = 0.56 * wavelength
    half = size // 2
    y, x = np.mgrid[-half : half + 1, -half : half + 1].astype(np.float64)
    x_rot = x * math.cos(orientation_rad) + y * math.sin(orientation_rad)
    y_rot = -x * math.sin(orientation_rad) + y * math.cos(orientation_rad)
    envelope = np.exp(-(x_rot**2 + (aspect * y_rot) ** 2) / (2.0 * sigma**2))
    carrier = np.cos(2.0 * math.pi * x_rot / wavelength + phase)
    kernel = envelope * carrier
    return kernel - kernel.mean()


def gabor_bank(
    size: int = 7, orientations: int = 4, wavelengths: tuple[float, ...] = (3.0, 6.0)
) -> list[np.ndarray]:
    """A bank of Gabor filters across orientations and wavelengths."""
    bank = []
    for wavelength in wavelengths:
        for k in range(orientations):
            theta = math.pi * k / orientations
            bank.append(gabor_kernel(size, wavelength, theta))
    return bank


def max_pool2d(image: np.ndarray, pool: int) -> np.ndarray:
    """Non-overlapping ``pool x pool`` max pooling (trailing edge cropped)."""
    if pool < 1:
        raise ImagingError(f"pool size must be >= 1, got {pool}")
    h, w = image.shape
    th, tw = (h // pool) * pool, (w // pool) * pool
    if th < pool or tw < pool:
        raise ImagingError(f"image {image.shape} smaller than pool {pool}")
    trimmed = image[:th, :tw]
    return trimmed.reshape(th // pool, pool, tw // pool, pool).max(axis=(1, 3))


def avg_pool2d(image: np.ndarray, pool: int) -> np.ndarray:
    """Non-overlapping ``pool x pool`` average pooling."""
    if pool < 1:
        raise ImagingError(f"pool size must be >= 1, got {pool}")
    h, w = image.shape
    th, tw = (h // pool) * pool, (w // pool) * pool
    if th < pool or tw < pool:
        raise ImagingError(f"image {image.shape} smaller than pool {pool}")
    trimmed = image[:th, :tw]
    return trimmed.reshape(th // pool, pool, tw // pool, pool).mean(axis=(1, 3))


def resize_nearest(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbour resize of a 2-D or (H, W, C) array."""
    if height < 1 or width < 1:
        raise ImagingError(f"target size must be positive, got {height}x{width}")
    h, w = image.shape[:2]
    rows = np.minimum((np.arange(height) * h / height).astype(int), h - 1)
    cols = np.minimum((np.arange(width) * w / width).astype(int), w - 1)
    return image[np.ix_(rows, cols)]


def resize_bilinear(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Bilinear resize of a 2-D or (H, W, C) array."""
    if height < 1 or width < 1:
        raise ImagingError(f"target size must be positive, got {height}x{width}")
    img = np.asarray(image, dtype=np.float64)
    h, w = img.shape[:2]
    if h == 1 and w == 1:
        reps = (height, width) + (1,) * (img.ndim - 2)
        return np.tile(img, reps)
    row_pos = np.linspace(0.0, h - 1.0, height)
    col_pos = np.linspace(0.0, w - 1.0, width)
    r0 = np.floor(row_pos).astype(int)
    c0 = np.floor(col_pos).astype(int)
    r1 = np.minimum(r0 + 1, h - 1)
    c1 = np.minimum(c0 + 1, w - 1)
    fr = (row_pos - r0).reshape(-1, 1)
    fc = (col_pos - c0).reshape(1, -1)
    if img.ndim == 3:
        fr = fr[..., np.newaxis]
        fc = fc[..., np.newaxis]
    top = img[np.ix_(r0, c0)] * (1 - fc) + img[np.ix_(r0, c1)] * fc
    bottom = img[np.ix_(r1, c0)] * (1 - fc) + img[np.ix_(r1, c1)] * fc
    return top * (1 - fr) + bottom * fr
