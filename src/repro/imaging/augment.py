"""Image augmentation (paper Section IV-B: "augmented images are
synthesized using the visual content of an image by applying image
processing techniques (e.g., cropping and rotating)").

The platform stores augmented images alongside originals, tagged with
the transformation that produced them, so training pipelines can
enrich scarce classes without re-collecting data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ImagingError
from repro.imaging.filters import gaussian_blur, resize_bilinear
from repro.imaging.image import Image


def crop(image: Image, top: int, left: int, height: int, width: int) -> Image:
    """Axis-aligned crop; raises when the window leaves the image."""
    if height < 1 or width < 1:
        raise ImagingError(f"crop size must be positive, got {height}x{width}")
    if top < 0 or left < 0 or top + height > image.height or left + width > image.width:
        raise ImagingError(
            f"crop ({top},{left},{height},{width}) outside image {image.shape}"
        )
    return Image(image.pixels[top : top + height, left : left + width].copy())


def center_crop(image: Image, fraction: float = 0.8) -> Image:
    """Crop the central ``fraction`` of each dimension."""
    if not (0.0 < fraction <= 1.0):
        raise ImagingError(f"fraction must be in (0, 1], got {fraction}")
    height = max(1, int(round(image.height * fraction)))
    width = max(1, int(round(image.width * fraction)))
    top = (image.height - height) // 2
    left = (image.width - width) // 2
    return crop(image, top, left, height, width)


def flip_horizontal(image: Image) -> Image:
    """Mirror left-right."""
    return Image(image.pixels[:, ::-1].copy())


def flip_vertical(image: Image) -> Image:
    """Mirror top-bottom."""
    return Image(image.pixels[::-1, :].copy())


def rotate90(image: Image, turns: int = 1) -> Image:
    """Rotate by multiples of 90 degrees counter-clockwise."""
    return Image(np.rot90(image.pixels, k=turns % 4).copy())


def rotate(image: Image, angle_deg: float) -> Image:
    """Rotate by an arbitrary angle about the centre (nearest-neighbour
    resampling; out-of-frame pixels become black)."""
    theta = math.radians(angle_deg)
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    h, w = image.height, image.width
    cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
    rows, cols = np.mgrid[0:h, 0:w].astype(np.float64)
    # Inverse mapping: output pixel -> source pixel.
    y = rows - cy
    x = cols - cx
    src_r = np.round(cos_t * y + sin_t * x + cy).astype(int)
    src_c = np.round(-sin_t * y + cos_t * x + cx).astype(int)
    valid = (src_r >= 0) & (src_r < h) & (src_c >= 0) & (src_c < w)
    out = np.zeros_like(image.pixels)
    out[valid] = image.pixels[src_r[valid], src_c[valid]]
    return Image(out)


def adjust_brightness(image: Image, delta: float) -> Image:
    """Add ``delta`` to every channel (result re-clipped to [0, 1])."""
    return Image(image.pixels + delta)

def adjust_contrast(image: Image, factor: float) -> Image:
    """Scale contrast about the per-image mean."""
    if factor < 0:
        raise ImagingError(f"contrast factor must be >= 0, got {factor}")
    mean = image.pixels.mean()
    return Image(mean + factor * (image.pixels - mean))


def blur(image: Image, sigma: float = 1.0) -> Image:
    """Gaussian blur of each channel."""
    out = np.stack(
        [gaussian_blur(image.pixels[..., c], sigma) for c in range(3)], axis=-1
    )
    return Image(out)


def add_noise(image: Image, sigma: float, rng: np.random.Generator) -> Image:
    """Additive Gaussian pixel noise."""
    if sigma < 0:
        raise ImagingError(f"noise sigma must be >= 0, got {sigma}")
    return Image(image.pixels + rng.normal(0.0, sigma, image.pixels.shape))


def resize(image: Image, height: int, width: int) -> Image:
    """Bilinear resize to ``height x width``."""
    return Image(resize_bilinear(image.pixels, height, width))


@dataclass(frozen=True, slots=True)
class Augmentation:
    """A named augmentation: ``name`` is stored with the derived image
    so the DB can distinguish original from augmented rows."""

    name: str
    fn: Callable[[Image], Image]

    def __call__(self, image: Image) -> Image:
        return self.fn(image)


def default_pipeline(rng: np.random.Generator) -> list[Augmentation]:
    """The stock augmentation set used by the analysis examples."""
    return [
        Augmentation("flip_h", flip_horizontal),
        Augmentation("center_crop_80", lambda im: center_crop(im, 0.8)),
        Augmentation("rotate_+10", lambda im: rotate(im, 10.0)),
        Augmentation("rotate_-10", lambda im: rotate(im, -10.0)),
        Augmentation("brightness_+0.1", lambda im: adjust_brightness(im, 0.1)),
        Augmentation("noise_0.02", lambda im: add_noise(im, 0.02, rng)),
    ]


def augment_image(image: Image, pipeline: list[Augmentation]) -> list[tuple[str, Image]]:
    """Apply every augmentation; returns ``(name, image)`` pairs."""
    return [(aug.name, aug(image)) for aug in pipeline]
