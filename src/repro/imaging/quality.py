"""Image-quality scoring for ingest gating.

Crowdsourced uploads include shaky, blurred, and badly exposed shots.
The platform scores each upload — sharpness via the variance of the
Laplacian (the standard focus measure) and exposure via histogram
mass at the extremes — so campaigns can reject captures that would
pollute training sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ImagingError
from repro.imaging.filters import convolve2d
from repro.imaging.image import Image

#: 3x3 Laplacian kernel.
_LAPLACIAN = np.array([[0.0, 1.0, 0.0], [1.0, -4.0, 1.0], [0.0, 1.0, 0.0]])


def sharpness(image: Image) -> float:
    """Variance of the Laplacian of the luma channel.

    Higher is sharper; blurring an image strictly reduces it.
    """
    response = convolve2d(image.grayscale(), _LAPLACIAN, "same")
    return float(response.var())


def exposure_clipping(image: Image, low: float = 0.02, high: float = 0.98) -> float:
    """Fraction of pixels crushed to black or blown to white."""
    if not (0.0 <= low < high <= 1.0):
        raise ImagingError(f"bad exposure thresholds ({low}, {high})")
    gray = image.grayscale()
    return float(((gray <= low) | (gray >= high)).mean())


@dataclass(frozen=True, slots=True)
class QualityReport:
    """Scores plus the accept/reject verdict for one upload."""

    sharpness: float
    clipping: float
    accepted: bool
    reasons: tuple[str, ...]


def assess_quality(
    image: Image,
    min_sharpness: float = 1e-4,
    max_clipping: float = 0.4,
) -> QualityReport:
    """Gate an upload on focus and exposure."""
    if min_sharpness < 0 or not (0.0 < max_clipping <= 1.0):
        raise ImagingError("invalid quality thresholds")
    sharp = sharpness(image)
    clipped = exposure_clipping(image)
    reasons = []
    if sharp < min_sharpness:
        reasons.append("blurry")
    if clipped > max_clipping:
        reasons.append("badly_exposed")
    return QualityReport(
        sharpness=sharp,
        clipping=clipped,
        accepted=not reasons,
        reasons=tuple(reasons),
    )
