"""Gaussian naive Bayes classifier."""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.base import check_fitted, check_X, check_X_y, unique_labels


class GaussianNB:
    """Per-class independent Gaussians with variance smoothing.

    ``var_smoothing`` adds a fraction of the largest feature variance
    to every variance, preventing degenerate zero-variance features
    (common in sparse BoW vectors) from dominating the log-likelihood.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise MLError(f"var_smoothing must be >= 0, got {var_smoothing}")
        self.var_smoothing = var_smoothing
        self.classes_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None  # (k, d) means
        self.var_: np.ndarray | None = None  # (k, d) variances
        self.priors_: np.ndarray | None = None  # (k,) log priors

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNB":
        X, y = check_X_y(X, y)
        self.classes_ = unique_labels(y)
        k, d = self.classes_.shape[0], X.shape[1]
        self.theta_ = np.zeros((k, d))
        self.var_ = np.zeros((k, d))
        counts = np.zeros(k)
        for i, label in enumerate(self.classes_.tolist()):
            members = X[y == label]
            counts[i] = members.shape[0]
            self.theta_[i] = members.mean(axis=0)
            self.var_[i] = members.var(axis=0)
        epsilon = self.var_smoothing * max(float(X.var(axis=0).max()), 1e-12)
        self.var_ += epsilon + 1e-12
        self.priors_ = np.log(counts / counts.sum())
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "theta_")
        X = check_X(X)
        if X.shape[1] != self.theta_.shape[1]:
            raise MLError(
                f"expected {self.theta_.shape[1]} features, got {X.shape[1]}"
            )
        jll = np.empty((X.shape[0], self.classes_.shape[0]))
        for i in range(self.classes_.shape[0]):
            diff = X - self.theta_[i]
            log_prob = -0.5 * (
                np.log(2.0 * np.pi * self.var_[i]).sum()
                + ((diff * diff) / self.var_[i]).sum(axis=1)
            )
            jll[:, i] = self.priors_[i] + log_prob
        return jll

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Maximum a-posteriori class per row."""
        return self.classes_[self._joint_log_likelihood(X).argmax(axis=1)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Posterior probabilities via normalised joint log-likelihood."""
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        probs = np.exp(jll)
        return probs / probs.sum(axis=1, keepdims=True)
