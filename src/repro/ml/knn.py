"""k-nearest-neighbour classifier (brute force, chunked distances)."""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.base import check_fitted, check_X, check_X_y


def pairwise_sq_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape (len(A), len(B)).

    Uses the expansion ``|a-b|^2 = |a|^2 - 2ab + |b|^2`` with a clip at
    zero to absorb floating-point negatives.
    """
    a2 = (A * A).sum(axis=1)[:, None]
    b2 = (B * B).sum(axis=1)[None, :]
    d2 = a2 - 2.0 * (A @ B.T) + b2
    return np.maximum(d2, 0.0)


class KNeighborsClassifier:
    """Majority vote over the ``k`` nearest training samples.

    Ties are broken toward the nearest class (distance-weighted vote
    with weight ``1/(d + eps)``), which also makes small-k behaviour
    stable on dense clusters.
    """

    def __init__(self, k: int = 5, chunk_size: int = 512) -> None:
        if k < 1:
            raise MLError(f"k must be >= 1, got {k}")
        if chunk_size < 1:
            raise MLError(f"chunk_size must be >= 1, got {chunk_size}")
        self.k = k
        self.chunk_size = chunk_size
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X, y = check_X_y(X, y)
        self._X = X
        self._y = y
        self.classes_ = np.unique(y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "_X")
        X = check_X(X)
        if X.shape[1] != self._X.shape[1]:
            raise MLError(f"expected {self._X.shape[1]} features, got {X.shape[1]}")
        k = min(self.k, self._X.shape[0])
        class_index = {label: i for i, label in enumerate(self.classes_.tolist())}
        predictions = np.empty(X.shape[0], dtype=self._y.dtype)
        for start in range(0, X.shape[0], self.chunk_size):
            chunk = X[start : start + self.chunk_size]
            d2 = pairwise_sq_distances(chunk, self._X)
            nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
            votes = np.zeros((chunk.shape[0], len(class_index)))
            rows = np.arange(chunk.shape[0])[:, None]
            weights = 1.0 / (np.sqrt(d2[rows, nearest]) + 1e-9)
            for label, col in class_index.items():
                votes[:, col] = (weights * (self._y[nearest] == label)).sum(axis=1)
            predictions[start : start + chunk.shape[0]] = self.classes_[
                votes.argmax(axis=1)
            ]
        return predictions
