"""Feature preprocessing: scaling, normalisation, label encoding."""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.base import check_fitted, check_X


class StandardScaler:
    """Zero-mean, unit-variance scaling per feature.

    Constant features get a unit denominator so they scale to zero
    rather than dividing by zero.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_X(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "mean_")
        X = check_X(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise MLError(
                f"expected {self.mean_.shape[0]} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class MinMaxScaler:
    """Scale each feature into [0, 1] based on the training range."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = check_X(X)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        self.range_ = np.where(span > 1e-12, span, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "min_")
        X = check_X(X)
        if X.shape[1] != self.min_.shape[0]:
            raise MLError(f"expected {self.min_.shape[0]} features, got {X.shape[1]}")
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def l2_normalize(X: np.ndarray) -> np.ndarray:
    """Row-wise L2 normalisation (zero rows left untouched)."""
    X = check_X(X)
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    return X / np.where(norms > 1e-12, norms, 1.0)


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integers 0..k-1."""

    def __init__(self) -> None:
        self.classes_: list | None = None
        self._index: dict | None = None

    def fit(self, labels: list) -> "LabelEncoder":
        if len(labels) == 0:
            raise MLError("cannot fit LabelEncoder on an empty label list")
        self.classes_ = sorted(set(labels), key=str)
        self._index = {label: i for i, label in enumerate(self.classes_)}
        return self

    def transform(self, labels: list) -> np.ndarray:
        check_fitted(self, "classes_")
        try:
            return np.array([self._index[label] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise MLError(f"unseen label during transform: {exc.args[0]!r}") from exc

    def fit_transform(self, labels: list) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse_transform(self, indices: np.ndarray) -> list:
        check_fitted(self, "classes_")
        k = len(self.classes_)
        out = []
        for idx in np.asarray(indices, dtype=np.int64):
            if not (0 <= idx < k):
                raise MLError(f"index {idx} out of range for {k} classes")
            out.append(self.classes_[idx])
        return out
