"""Random forest: bagged CART trees over random feature subspaces."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import MLError
from repro.ml.base import check_fitted, check_X, check_X_y
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Majority vote over ``n_trees`` bootstrap-trained decision trees.

    ``max_features=None`` defaults to ``sqrt(d)`` per split, the
    standard forest heuristic.
    """

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise MLError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self._trees: list[DecisionTreeClassifier] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        features = self.max_features or max(1, int(math.sqrt(d)))
        self._trees = []
        for t in range(self.n_trees):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=features,
                seed=self.seed + 1000 + t,
            )
            tree.fit(X[sample], y[sample])
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "_trees")
        X = check_X(X)
        class_index = {label: i for i, label in enumerate(self.classes_.tolist())}
        votes = np.zeros((X.shape[0], self.classes_.shape[0]), dtype=np.int64)
        for tree in self._trees:
            predictions = tree.predict(X)
            for label, col in class_index.items():
                votes[:, col] += predictions == label
        return self.classes_[votes.argmax(axis=1)]
