"""Classification metrics: confusion matrix, precision/recall/F1.

Fig. 6 and Fig. 7 of the paper report F1 scores, so these are the
primary evaluation currency of the reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise MLError(
            f"y_true {y_true.shape} and y_pred {y_pred.shape} must be equal-length 1-D"
        )
    if y_true.shape[0] == 0:
        raise MLError("cannot score zero samples")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels: list | None = None
) -> tuple[np.ndarray, list]:
    """Confusion matrix ``C[i, j]`` = count of true label ``labels[i]``
    predicted as ``labels[j]``.  Returns ``(matrix, labels)``."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()), key=str)
    index = {label: i for i, label in enumerate(labels)}
    k = len(labels)
    matrix = np.zeros((k, k), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        if t not in index or p not in index:
            raise MLError(f"label {t!r} or {p!r} missing from provided labels")
        matrix[index[t], index[p]] += 1
    return matrix, list(labels)


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, labels: list | None = None
) -> dict[object, tuple[float, float, float]]:
    """Per-class ``(precision, recall, f1)``.

    Classes with no predicted (or no true) samples score zero on the
    undefined component, matching the conservative convention.
    """
    matrix, labels = confusion_matrix(y_true, y_pred, labels)
    out: dict[object, tuple[float, float, float]] = {}
    for i, label in enumerate(labels):
        tp = float(matrix[i, i])
        fp = float(matrix[:, i].sum() - tp)
        fn = float(matrix[i, :].sum() - tp)
        precision = tp / (tp + fp) if tp + fp > 0 else 0.0
        recall = tp / (tp + fn) if tp + fn > 0 else 0.0
        f1 = (
            2.0 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        out[label] = (precision, recall, f1)
    return out


def f1_score(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    average: str = "macro",
    labels: list | None = None,
) -> float:
    """F1 with ``macro``, ``micro``, or ``weighted`` averaging."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if average == "micro":
        # Micro F1 over all classes equals accuracy for single-label tasks.
        return accuracy(y_true, y_pred)
    per_class = precision_recall_f1(y_true, y_pred, labels)
    f1s = np.array([scores[2] for scores in per_class.values()])
    if average == "macro":
        return float(f1s.mean())
    if average == "weighted":
        class_labels = list(per_class.keys())
        counts = np.array([np.sum(y_true == label) for label in class_labels], dtype=float)
        total = counts.sum()
        if total == 0:
            return 0.0
        return float((f1s * counts).sum() / total)
    raise MLError(f"unknown average {average!r}; use macro, micro, or weighted")


def macro_precision_recall(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[float, float]:
    """Macro-averaged ``(precision, recall)``."""
    per_class = precision_recall_f1(y_true, y_pred)
    ps = [s[0] for s in per_class.values()]
    rs = [s[1] for s in per_class.values()]
    return float(np.mean(ps)), float(np.mean(rs))


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve for a binary problem.

    ``y_true`` holds 0/1 (or False/True) labels; ``scores`` are any
    monotone confidence values for the positive class.  Computed via the
    rank-sum (Mann-Whitney) identity with midrank tie handling.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape or y_true.ndim != 1:
        raise MLError("y_true and scores must be equal-length 1-D arrays")
    positives = y_true.astype(bool)
    n_pos = int(positives.sum())
    n_neg = int((~positives).sum())
    if n_pos == 0 or n_neg == 0:
        raise MLError("roc_auc needs both positive and negative samples")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(scores)
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0  # midranks, 1-based
        i = j + 1
    rank_sum = float(ranks[positives].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
