"""k-means clustering with k-means++ seeding.

Used by the SIFT-BoW pipeline to build the 1000-word visual dictionary
("SIFT key points were ... clustered into 1000 clusters (using
kMeans)") and by the homeless-tent spatial clustering study.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.base import check_fitted, check_X
from repro.ml.knn import pairwise_sq_distances


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation.

    Empty clusters are re-seeded from the point farthest from its
    centroid, so the final codebook always has ``k`` distinct words.
    """

    def __init__(
        self,
        k: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise MLError(f"k must be >= 1, got {k}")
        if max_iter < 1:
            raise MLError(f"max_iter must be >= 1, got {max_iter}")
        self.k = k
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centroids_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_iter_: int | None = None

    def _init_centroids(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++: spread initial centroids proportional to squared
        distance from the ones already chosen."""
        n = X.shape[0]
        centroids = np.empty((self.k, X.shape[1]))
        centroids[0] = X[rng.integers(n)]
        d2 = pairwise_sq_distances(X, centroids[:1]).ravel()
        for i in range(1, self.k):
            total = d2.sum()
            if total <= 0:
                centroids[i] = X[rng.integers(n)]
            else:
                centroids[i] = X[rng.choice(n, p=d2 / total)]
            d2 = np.minimum(d2, pairwise_sq_distances(X, centroids[i : i + 1]).ravel())
        return centroids

    def fit(self, X: np.ndarray) -> "KMeans":
        X = check_X(X)
        if X.shape[0] < self.k:
            raise MLError(f"cannot fit k={self.k} clusters on {X.shape[0]} points")
        rng = np.random.default_rng(self.seed)
        centroids = self._init_centroids(X, rng)
        for iteration in range(self.max_iter):
            d2 = pairwise_sq_distances(X, centroids)
            assignment = d2.argmin(axis=1)
            new_centroids = centroids.copy()
            for cluster in range(self.k):
                members = X[assignment == cluster]
                if members.shape[0] == 0:
                    farthest = d2[np.arange(X.shape[0]), assignment].argmax()
                    new_centroids[cluster] = X[farthest]
                else:
                    new_centroids[cluster] = members.mean(axis=0)
            shift = float(np.abs(new_centroids - centroids).max())
            centroids = new_centroids
            if shift < self.tol:
                break
        self.centroids_ = centroids
        d2 = pairwise_sq_distances(X, centroids)
        self.inertia_ = float(d2.min(axis=1).sum())
        self.n_iter_ = iteration + 1
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Index of the nearest centroid per row."""
        check_fitted(self, "centroids_")
        X = check_X(X)
        if X.shape[1] != self.centroids_.shape[1]:
            raise MLError(
                f"expected {self.centroids_.shape[1]} features, got {X.shape[1]}"
            )
        return pairwise_sq_distances(X, self.centroids_).argmin(axis=1)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).predict(X)
