"""Linear support vector machine.

The paper's winning classifier ("SVM achieved the best F1 score with
both SIFT-BoW and CNN").  Binary SVMs are trained with Pegasos-style
SGD on the hinge loss; multi-class uses one-vs-rest with margin voting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.base import check_fitted, check_X, check_X_y, unique_labels


class _BinarySVM:
    """Hinge-loss linear SVM for labels in {-1, +1} (Pegasos SGD)."""

    def __init__(self, l2: float, epochs: int, batch_size: int, seed: int) -> None:
        self.l2 = l2
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.w: np.ndarray | None = None
        self.b: float = 0.0

    def fit(self, X: np.ndarray, y_signed: np.ndarray) -> "_BinarySVM":
        n, d = X.shape
        rng = np.random.default_rng(self.seed)
        self.w = np.zeros(d)
        self.b = 0.0
        batch = min(self.batch_size, n)
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                step += 1
                idx = order[start : start + batch]
                lr = 1.0 / (self.l2 * step)
                margins = y_signed[idx] * (X[idx] @ self.w + self.b)
                violators = margins < 1.0
                grad_w = self.l2 * self.w
                if violators.any():
                    Xv = X[idx][violators]
                    yv = y_signed[idx][violators]
                    grad_w = grad_w - (yv[:, None] * Xv).sum(axis=0) / idx.shape[0]
                    self.b += lr * yv.sum() / idx.shape[0]
                self.w -= lr * grad_w
        return self

    def decision(self, X: np.ndarray) -> np.ndarray:
        return X @ self.w + self.b


class LinearSVM:
    """One-vs-rest linear SVM.

    Parameters
    ----------
    l2:
        Regularisation strength (Pegasos lambda).
    epochs:
        Passes over the data per binary problem.
    batch_size:
        Mini-batch size for the SGD updates.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        l2: float = 1e-4,
        epochs: int = 40,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        if l2 <= 0 or epochs < 1 or batch_size < 1:
            raise MLError("invalid LinearSVM hyper-parameters")
        self.l2 = l2
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self._machines: list[_BinarySVM] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X, y = check_X_y(X, y)
        self.classes_ = unique_labels(y)
        self._machines = []
        for i, label in enumerate(self.classes_.tolist()):
            signed = np.where(y == label, 1.0, -1.0)
            machine = _BinarySVM(self.l2, self.epochs, self.batch_size, self.seed + i)
            machine.fit(X, signed)
            self._machines.append(machine)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Per-class margins, shape (n, k), ordered like ``classes_``."""
        check_fitted(self, "_machines")
        X = check_X(X)
        expected = self._machines[0].w.shape[0]
        if X.shape[1] != expected:
            raise MLError(f"expected {expected} features, got {X.shape[1]}")
        return np.column_stack([m.decision(X) for m in self._machines])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class with the largest one-vs-rest margin."""
        return self.classes_[self.decision_function(X).argmax(axis=1)]
