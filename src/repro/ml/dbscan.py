"""DBSCAN density clustering.

The translational use case (paper Fig. 9 discussion) clusters homeless
tent locations; DBSCAN is the natural choice because the number of
encampment clusters is unknown and isolated tents should be noise.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import MLError
from repro.ml.base import check_X
from repro.ml.knn import pairwise_sq_distances

#: Label assigned to noise points.
NOISE = -1


class DBSCAN:
    """Classic DBSCAN over Euclidean distance.

    Parameters
    ----------
    eps:
        Neighbourhood radius.
    min_samples:
        Minimum neighbourhood size (including the point itself) for a
        core point.
    """

    def __init__(self, eps: float, min_samples: int = 4) -> None:
        if eps <= 0:
            raise MLError(f"eps must be positive, got {eps}")
        if min_samples < 1:
            raise MLError(f"min_samples must be >= 1, got {min_samples}")
        self.eps = eps
        self.min_samples = min_samples
        self.labels_: np.ndarray | None = None
        self.n_clusters_: int | None = None

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Cluster labels per row; ``-1`` marks noise."""
        X = check_X(X)
        n = X.shape[0]
        d2 = pairwise_sq_distances(X, X)
        eps2 = self.eps * self.eps
        neighbors = [np.flatnonzero(d2[i] <= eps2) for i in range(n)]
        is_core = np.array([len(nb) >= self.min_samples for nb in neighbors])

        labels = np.full(n, NOISE, dtype=np.int64)
        cluster = 0
        for seed in range(n):
            if labels[seed] != NOISE or not is_core[seed]:
                continue
            # Breadth-first expansion from the core seed.
            labels[seed] = cluster
            queue = deque(neighbors[seed].tolist())
            while queue:
                point = queue.popleft()
                if labels[point] == NOISE:
                    labels[point] = cluster
                    if is_core[point]:
                        queue.extend(neighbors[point].tolist())
            cluster += 1
        self.labels_ = labels
        self.n_clusters_ = cluster
        return labels
