"""Multinomial logistic regression (softmax) trained by mini-batch SGD.

One of the classifier columns of the paper's Fig. 6 grid.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.base import check_fitted, check_X, check_X_y, unique_labels


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the max-subtraction stability trick."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegression:
    """Softmax regression with L2 regularisation.

    Parameters
    ----------
    learning_rate:
        SGD step size (decayed as ``1/sqrt(epoch)``).
    epochs:
        Full passes over the training set.
    l2:
        L2 penalty strength on the weights (not the bias).
    batch_size:
        Mini-batch size; clipped to the training-set size.
    seed:
        RNG seed for shuffling and init.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        epochs: int = 60,
        l2: float = 1e-4,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0 or epochs < 1 or l2 < 0 or batch_size < 1:
            raise MLError("invalid LogisticRegression hyper-parameters")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.batch_size = batch_size
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self.weights_: np.ndarray | None = None
        self.bias_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        self.classes_ = unique_labels(y)
        class_index = {label: i for i, label in enumerate(self.classes_.tolist())}
        targets = np.array([class_index[label] for label in y.tolist()])
        n, d = X.shape
        k = self.classes_.shape[0]
        rng = np.random.default_rng(self.seed)
        self.weights_ = rng.normal(0.0, 0.01, (d, k))
        self.bias_ = np.zeros(k)
        onehot = np.eye(k)[targets]
        batch = min(self.batch_size, n)
        for epoch in range(self.epochs):
            lr = self.learning_rate / np.sqrt(1.0 + epoch)
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                logits = X[idx] @ self.weights_ + self.bias_
                probs = softmax(logits)
                error = (probs - onehot[idx]) / idx.shape[0]
                grad_w = X[idx].T @ error + self.l2 * self.weights_
                self.weights_ -= lr * grad_w
                self.bias_ -= lr * error.sum(axis=0)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix (n, k) ordered like ``classes_``."""
        check_fitted(self, "weights_")
        X = check_X(X)
        if X.shape[1] != self.weights_.shape[0]:
            raise MLError(
                f"expected {self.weights_.shape[0]} features, got {X.shape[1]}"
            )
        return softmax(X @ self.weights_ + self.bias_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        return self.classes_[self.predict_proba(X).argmax(axis=1)]
