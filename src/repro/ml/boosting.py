"""AdaBoost (SAMME) over decision stumps.

Adds a boosting column to the classifier grid — a different inductive
bias from the bagging forest, and historically the go-to before deep
features took over.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.base import check_fitted, check_X, check_X_y, unique_labels
from repro.ml.tree import DecisionTreeClassifier


class AdaBoostClassifier:
    """SAMME boosting of shallow trees.

    Parameters
    ----------
    n_estimators:
        Boosting rounds (weak learners).
    max_depth:
        Depth of each weak tree (1 = stumps).
    learning_rate:
        Shrinkage on each learner's vote weight.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 1,
        learning_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise MLError(f"n_estimators must be >= 1, got {n_estimators}")
        if learning_rate <= 0:
            raise MLError(f"learning_rate must be positive, got {learning_rate}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self._learners: list[tuple[DecisionTreeClassifier, float]] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        X, y = check_X_y(X, y)
        self.classes_ = unique_labels(y)
        k = self.classes_.shape[0]
        n = X.shape[0]
        rng = np.random.default_rng(self.seed)
        weights = np.full(n, 1.0 / n)
        self._learners = []
        for round_index in range(self.n_estimators):
            # Weighted fitting via weighted resampling (keeps the tree
            # implementation weight-free).
            sample = rng.choice(n, size=n, replace=True, p=weights)
            learner = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=1,
                min_samples_split=2,
                seed=self.seed + round_index,
            )
            learner.fit(X[sample], y[sample])
            predictions = learner.predict(X)
            incorrect = predictions != y
            error = float(np.sum(weights * incorrect))
            error = min(max(error, 1e-12), 1.0 - 1e-12)
            if error >= 1.0 - 1.0 / k:
                # Worse than chance: skip this learner.
                continue
            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(k - 1.0)
            )
            self._learners.append((learner, alpha))
            weights = weights * np.exp(alpha * incorrect)
            weights = weights / weights.sum()
            if error < 1e-10:
                break
        if not self._learners:
            raise MLError("AdaBoost found no better-than-chance weak learner")
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "_learners")
        X = check_X(X)
        class_index = {label: i for i, label in enumerate(self.classes_.tolist())}
        votes = np.zeros((X.shape[0], self.classes_.shape[0]))
        for learner, alpha in self._learners:
            predictions = learner.predict(X)
            for label, col in class_index.items():
                votes[:, col] += alpha * (predictions == label)
        return self.classes_[votes.argmax(axis=1)]

    def staged_errors(self, X: np.ndarray, y: np.ndarray) -> list[float]:
        """Training-error trajectory after each boosting round (for the
        classic boosting-curve diagnostics)."""
        check_fitted(self, "_learners")
        X, y = check_X_y(X, y)
        class_index = {label: i for i, label in enumerate(self.classes_.tolist())}
        votes = np.zeros((X.shape[0], self.classes_.shape[0]))
        errors = []
        for learner, alpha in self._learners:
            predictions = learner.predict(X)
            for label, col in class_index.items():
                votes[:, col] += alpha * (predictions == label)
            current = self.classes_[votes.argmax(axis=1)]
            errors.append(float(np.mean(current != y)))
        return errors
