"""Estimator protocol and shared input validation.

All classifiers follow the familiar ``fit(X, y)`` / ``predict(X)``
interface so the platform's Analysis service (and the paper's Fig. 6
grid of classifiers) can treat them uniformly.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import MLError, NotFittedError


@runtime_checkable
class Classifier(Protocol):
    """Structural type implemented by every classifier in ``repro.ml``."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on features ``X`` (n, d) and integer labels ``y`` (n,)."""
        ...

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict integer labels for ``X`` (n, d)."""
        ...


def check_X(X: np.ndarray, name: str = "X") -> np.ndarray:
    """Validate a 2-D float feature matrix."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise MLError(f"{name} must be 2-D (n_samples, n_features), got ndim={X.ndim}")
    if X.shape[0] == 0:
        raise MLError(f"{name} has zero samples")
    if not np.isfinite(X).all():
        raise MLError(f"{name} contains NaN or infinite values")
    return X


def check_X_y(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and its label vector together."""
    X = check_X(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise MLError(f"y must be 1-D, got ndim={y.ndim}")
    if y.shape[0] != X.shape[0]:
        raise MLError(f"X has {X.shape[0]} samples but y has {y.shape[0]}")
    return X, y


def check_fitted(estimator: object, attribute: str) -> None:
    """Raise :class:`NotFittedError` when ``attribute`` is missing/None."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} must be fitted before use"
        )


def unique_labels(y: np.ndarray) -> np.ndarray:
    """Sorted unique labels, validated to be at least two classes."""
    classes = np.unique(y)
    if classes.shape[0] < 2:
        raise MLError(f"need at least 2 classes to train, got {classes.shape[0]}")
    return classes
