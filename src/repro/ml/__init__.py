"""Machine-learning substrate: classifiers, clustering, metrics, CV.

Everything here is implemented from scratch on NumPy — the paper used
scikit-learn, which is unavailable in this environment, so these are
faithful stand-ins with the same interfaces.
"""

from repro.ml.base import Classifier, check_fitted, check_X, check_X_y, unique_labels
from repro.ml.preprocessing import (
    LabelEncoder,
    MinMaxScaler,
    StandardScaler,
    l2_normalize,
)
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    macro_precision_recall,
    precision_recall_f1,
    roc_auc,
)
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_predict,
    cross_val_score,
    train_test_split,
)
from repro.ml.linear import LogisticRegression, softmax
from repro.ml.svm import LinearSVM
from repro.ml.knn import KNeighborsClassifier, pairwise_sq_distances
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.boosting import AdaBoostClassifier
from repro.ml.naive_bayes import GaussianNB
from repro.ml.kmeans import KMeans
from repro.ml.dbscan import DBSCAN, NOISE

__all__ = [
    "Classifier",
    "check_X",
    "check_X_y",
    "check_fitted",
    "unique_labels",
    "StandardScaler",
    "MinMaxScaler",
    "LabelEncoder",
    "l2_normalize",
    "accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "f1_score",
    "macro_precision_recall",
    "roc_auc",
    "train_test_split",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "cross_val_predict",
    "LogisticRegression",
    "softmax",
    "LinearSVM",
    "KNeighborsClassifier",
    "pairwise_sq_distances",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "AdaBoostClassifier",
    "GaussianNB",
    "KMeans",
    "DBSCAN",
    "NOISE",
]
