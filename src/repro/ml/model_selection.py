"""Train/test splitting and k-fold cross-validation.

The paper trains every classifier "on 80% of the dataset using 10-fold
cross-validation"; :func:`train_test_split` and :class:`StratifiedKFold`
reproduce that protocol.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.errors import MLError
from repro.ml.base import check_X_y
from repro.ml.metrics import f1_score


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    seed: int = 0,
    stratify: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split into ``(X_train, X_test, y_train, y_test)``.

    ``stratify=True`` preserves per-class proportions, which matters for
    the imbalanced street-cleanliness labels.
    """
    X, y = check_X_y(X, y)
    if not (0.0 < test_fraction < 1.0):
        raise MLError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    n = X.shape[0]
    if stratify:
        test_idx: list[int] = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            rng.shuffle(members)
            n_test = int(round(len(members) * test_fraction))
            n_test = min(max(n_test, 1 if len(members) > 1 else 0), len(members) - 1)
            test_idx.extend(members[:n_test].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_idx] = True
    else:
        order = rng.permutation(n)
        n_test = max(1, int(round(n * test_fraction)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class KFold:
    """Plain k-fold splitter over shuffled indices."""

    def __init__(self, n_splits: int = 10, seed: int = 0) -> None:
        if n_splits < 2:
            raise MLError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` per fold."""
        if n_samples < self.n_splits:
            raise MLError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


class StratifiedKFold:
    """K-fold that preserves class proportions in every fold."""

    def __init__(self, n_splits: int = 10, seed: int = 0) -> None:
        if n_splits < 2:
            raise MLError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, y: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` per fold, stratified
        on the label vector ``y``."""
        y = np.asarray(y)
        if y.ndim != 1:
            raise MLError("y must be 1-D")
        rng = np.random.default_rng(self.seed)
        fold_members: list[list[int]] = [[] for _ in range(self.n_splits)]
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if len(members) < self.n_splits:
                raise MLError(
                    f"class {label!r} has {len(members)} samples, fewer than "
                    f"{self.n_splits} folds"
                )
            rng.shuffle(members)
            for i, chunk in enumerate(np.array_split(members, self.n_splits)):
                fold_members[i].extend(chunk.tolist())
        all_idx = np.arange(y.shape[0])
        for i in range(self.n_splits):
            test = np.array(sorted(fold_members[i]), dtype=np.int64)
            mask = np.ones(y.shape[0], dtype=bool)
            mask[test] = False
            yield all_idx[mask], test


def cross_val_score(
    make_classifier: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 10,
    seed: int = 0,
    metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
) -> np.ndarray:
    """Per-fold scores of a freshly constructed classifier.

    ``make_classifier`` is a zero-arg factory so each fold trains an
    independent model.  The default metric is macro F1 — the score the
    paper reports.
    """
    X, y = check_X_y(X, y)
    if metric is None:
        metric = lambda t, p: f1_score(t, p, average="macro")
    scores = []
    for train_idx, test_idx in StratifiedKFold(n_splits, seed).split(y):
        model = make_classifier()
        model.fit(X[train_idx], y[train_idx])
        predictions = model.predict(X[test_idx])
        scores.append(metric(y[test_idx], predictions))
    return np.array(scores)


def cross_val_predict(
    make_classifier: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 10,
    seed: int = 0,
) -> np.ndarray:
    """Out-of-fold predictions for every sample (for per-class F1)."""
    X, y = check_X_y(X, y)
    predictions = np.empty_like(y)
    for train_idx, test_idx in StratifiedKFold(n_splits, seed).split(y):
        model = make_classifier()
        model.fit(X[train_idx], y[train_idx])
        predictions[test_idx] = model.predict(X[test_idx])
    return predictions
