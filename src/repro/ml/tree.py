"""CART decision-tree classifier (Gini impurity, binary splits).

Split search is vectorised per feature: candidate thresholds are the
midpoints between consecutive distinct sorted values, scored via
cumulative class counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MLError
from repro.ml.base import check_fitted, check_X, check_X_y


@dataclass
class _Node:
    """Internal tree node; leaves carry ``prediction`` instead of a split."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    prediction: int = -1
    is_leaf: bool = False


def _gini_from_counts(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Gini impurity for rows of class counts with matching totals."""
    safe = np.where(totals > 0, totals, 1.0)
    probs = counts / safe[:, None]
    return 1.0 - (probs * probs).sum(axis=1)


class DecisionTreeClassifier:
    """CART with depth / leaf-size / feature-subsampling controls.

    ``max_features`` enables the random-subspace behaviour random
    forests need; ``None`` considers every feature at every split.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        min_samples_split: int = 4,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1 or min_samples_leaf < 1 or min_samples_split < 2:
            raise MLError("invalid DecisionTree hyper-parameters")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None
        self._root: _Node | None = None
        self._rng: np.random.Generator | None = None

    # -- training ---------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        self.n_features_ = X.shape[1]
        class_index = {label: i for i, label in enumerate(self.classes_.tolist())}
        encoded = np.array([class_index[label] for label in y.tolist()])
        self._rng = np.random.default_rng(self.seed)
        self._root = self._build(X, encoded, depth=0)
        return self

    def _leaf(self, encoded: np.ndarray) -> _Node:
        counts = np.bincount(encoded, minlength=self.classes_.shape[0])
        return _Node(prediction=int(counts.argmax()), is_leaf=True)

    def _build(self, X: np.ndarray, encoded: np.ndarray, depth: int) -> _Node:
        n = X.shape[0]
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or np.unique(encoded).shape[0] == 1
        ):
            return self._leaf(encoded)
        feature, threshold = self._best_split(X, encoded)
        if feature < 0:
            return self._leaf(encoded)
        mask = X[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return self._leaf(encoded)
        return _Node(
            feature=feature,
            threshold=threshold,
            left=self._build(X[mask], encoded[mask], depth + 1),
            right=self._build(X[~mask], encoded[~mask], depth + 1),
        )

    def _best_split(self, X: np.ndarray, encoded: np.ndarray) -> tuple[int, float]:
        n, d = X.shape
        k = self.classes_.shape[0]
        if self.max_features is not None and self.max_features < d:
            features = self._rng.choice(d, size=self.max_features, replace=False)
        else:
            features = np.arange(d)
        best_score = np.inf
        best = (-1, 0.0)
        onehot = np.eye(k)[encoded]
        for feature in features:
            values = X[:, feature]
            order = np.argsort(values, kind="mergesort")
            sorted_vals = values[order]
            cum = onehot[order].cumsum(axis=0)
            distinct = np.flatnonzero(np.diff(sorted_vals) > 1e-12)
            if distinct.shape[0] == 0:
                continue
            left_counts = cum[distinct]
            total = cum[-1]
            right_counts = total - left_counts
            left_totals = left_counts.sum(axis=1)
            right_totals = right_counts.sum(axis=1)
            score = (
                left_totals * _gini_from_counts(left_counts, left_totals)
                + right_totals * _gini_from_counts(right_counts, right_totals)
            ) / n
            idx = int(score.argmin())
            if score[idx] < best_score:
                best_score = float(score[idx])
                position = distinct[idx]
                threshold = (sorted_vals[position] + sorted_vals[position + 1]) / 2.0
                best = (int(feature), float(threshold))
        return best

    # -- inference --------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "_root")
        X = check_X(X)
        if X.shape[1] != self.n_features_:
            raise MLError(f"expected {self.n_features_} features, got {X.shape[1]}")
        out = np.empty(X.shape[0], dtype=np.int64)
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return self.classes_[out]

    def depth(self) -> int:
        """Actual depth of the fitted tree (root = depth 0)."""
        check_fitted(self, "_root")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
