"""TVDP: Translational Visual Data Platform for Smart Cities.

Full reproduction of Kim, Alfarrarjeh, Constantinou & Shahabi
(ICDE 2019).  The platform collects, manages, analyzes, and shares
geo-tagged urban visual data through four core services --
Acquisition, Access, Analysis, Action -- so that knowledge extracted by
one application (street cleanliness) translates into others (homeless
counting, graffiti studies) with no new data collection or learning.

Quick start::

    from repro import TVDP
    from repro.datasets import generate_lasan_dataset

    platform = TVDP()
    for record in generate_lasan_dataset(n_per_class=10):
        platform.upload_image(
            record.image, record.fov, record.captured_at, record.uploaded_at,
            keywords=record.keywords,
        )

Subpackages
-----------
``repro.geo``       geospatial substrate (FOV model, geodesy, regions)
``repro.imaging``   image processing and the synthetic streetscape renderer
``repro.features``  colour-histogram / SIFT-BoW / CNN feature extractors
``repro.ml``        from-scratch classifiers, clustering, metrics, CV
``repro.db``        embedded relational engine with the Fig. 2 schema
``repro.index``     R-tree, Oriented R-tree, LSH, inverted, Visual R*-tree
``repro.crowd``     spatial crowdsourcing (campaigns, coverage, assignment)
``repro.edge``      device profiles, model dispatch, crowd-based learning
``repro.api``       REST-style service + client with API keys
``repro.core``      the TVDP facade and query model
``repro.datasets``  synthetic LASAN / GeoUGV stand-ins
``repro.analysis``  cleanliness, homeless, and graffiti studies
"""

from repro.core.platform import TVDP
from repro.errors import TVDPError

__version__ = "0.1.0"

__all__ = ["TVDP", "TVDPError", "__version__"]
