"""Finding records, inline suppression, and the baseline workflow.

A finding is one rule violation at one source location.  Findings carry
a *fingerprint* — ``rule:path:scope`` where ``scope`` is the enclosing
``class.method`` (or the imported package, for layer findings) — that
is stable across unrelated edits to the file, so a checked-in baseline
keeps suppressing the same legacy finding even as line numbers move.

Baselines are multisets: a baseline entry suppresses *one* occurrence
of its fingerprint, so introducing a second identical violation in the
same scope still fails the build.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

_ALLOW_RE = re.compile(r"#\s*devtools:\s*allow\[([a-z0-9_,\- ]+)\]")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    scope: str = ""  # enclosing qualname / import target; fingerprint part

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}:{self.path}:{self.scope}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(slots=True)
class SourceModule:
    """One parsed module plus everything the passes need from it."""

    path: Path  # absolute
    rel_path: str  # repo-relative, forward slashes
    text: str
    tree: ast.Module
    allow_lines: dict[int, frozenset[str]] = field(default_factory=dict)

    def allows(self, rule: str, line: int) -> bool:
        """True when an ``# devtools: allow[rule]`` comment covers
        ``line`` (same line or the line directly above)."""
        for lineno in (line, line - 1):
            rules = self.allow_lines.get(lineno)
            if rules is not None and (rule in rules or "all" in rules):
                return True
        return False


def parse_module(path: Path, rel_path: str) -> SourceModule | None:
    """Parse one file; returns ``None`` for unreadable/unparsable files
    (the check CLI reports those separately)."""
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None
    allow_lines: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            allow_lines[lineno] = rules
    return SourceModule(
        path=path, rel_path=rel_path, text=text, tree=tree, allow_lines=allow_lines
    )


def collect_modules(root: Path, repo_root: Path | None = None) -> list[SourceModule]:
    """Parse every ``*.py`` under ``root``; paths are reported relative
    to ``repo_root`` (default: ``root``'s parent)."""
    base = repo_root if repo_root is not None else root.parent
    modules = []
    for path in sorted(root.rglob("*.py")):
        try:
            rel = path.relative_to(base).as_posix()
        except ValueError:
            rel = path.as_posix()
        module = parse_module(path, rel)
        if module is not None:
            modules.append(module)
    return modules


def enclosing_scopes(tree: ast.Module) -> dict[int, str]:
    """Map each statement line to its enclosing ``Class.method``
    qualname (module-level lines map to ``"<module>"``)."""
    scopes: dict[int, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                end = getattr(child, "end_lineno", child.lineno) or child.lineno
                for lineno in range(child.lineno, end + 1):
                    scopes[lineno] = qualname
                visit(child, qualname)
            else:
                visit(child, prefix)

    visit(tree, "")
    return scopes


def scope_of(module: SourceModule, line: int, cache: dict[str, dict[int, str]]) -> str:
    """Enclosing qualname of ``line`` in ``module`` (memoised per file)."""
    scopes = cache.get(module.rel_path)
    if scopes is None:
        scopes = enclosing_scopes(module.tree)
        cache[module.rel_path] = scopes
    return scopes.get(line, "<module>")


# -- baseline -----------------------------------------------------------------


def load_baseline(path: Path) -> list[str]:
    """Fingerprints recorded in a baseline file (missing file = empty)."""
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("suppressions", []) if isinstance(data, dict) else data
    return [str(entry) for entry in entries]


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Record every finding's fingerprint as the new baseline."""
    payload = {
        "comment": (
            "Accepted legacy findings for repro.devtools.check; regenerate "
            "with --write-baseline.  New findings are never auto-accepted."
        ),
        "suppressions": sorted(f.fingerprint for f in findings),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_new(
    findings: list[Finding], baseline: list[str]
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (new, baselined) using multiset
    semantics: each baseline entry absorbs one occurrence."""
    budget: dict[str, int] = {}
    for fingerprint in baseline:
        budget[fingerprint] = budget.get(fingerprint, 0) + 1
    new: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        remaining = budget.get(finding.fingerprint, 0)
        if remaining > 0:
            budget[finding.fingerprint] = remaining - 1
            suppressed.append(finding)
        else:
            new.append(finding)
    return new, suppressed
