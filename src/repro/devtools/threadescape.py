"""Thread-escape analysis for the serving arc.

Ahead of a thread-pooled ``api/http.py``, ``Router.dispatch`` and
``TVDP.execute`` will run concurrently from many threads against the
same platform instance.  This pass walks the call graph from those
concurrent entry points, computes the set of *shared* classes (objects
transitively held by the entry points' owners), and classifies every
mutable attribute on them:

* ``immutable`` — no mutation site reachable from a concurrent root
  (construction-time writes in ``__init__``/``__setstate__`` and writes
  to freshly-constructed locals are exempt);
* ``lock-guarded`` — every reachable mutation happens with one common
  lock held, identified by its creation site (reusing
  :mod:`repro.devtools.lockorder`'s lock index), either lexically via
  ``with`` or interprocedurally (the function is only ever called with
  the lock already held — the ``_dense_matrix_locked`` convention);
* ``contextvar-scoped`` — ``contextvars.ContextVar`` / thread-local
  state, safe by construction;
* ``unguarded-shared`` — a **finding**: the attribute is mutated on a
  concurrent path with no consistent lock.

Classifications are emitted to ``tools/concurrency_manifest.json``,
drift-gated exactly like the shard-safety manifest: the checked-in file
must match the tree, and the lock-coverage sanitizer
(:mod:`repro.devtools.sanitizers`) enforces the ``lock-guarded`` rows
at runtime under ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch

from repro.devtools.callgraph import (
    CallGraph,
    ModuleInfo,
    SymbolTable,
    attr_type_on,
    iter_functions,
    resolve_call,
    resolve_locals,
)
from repro.devtools.findings import Finding
from repro.devtools.lockorder import _index_locks, _LockIndex, _resolve_lock

RULE = "thread-escape"

CONCURRENCY_MANIFEST_SCHEMA = 1

#: Entry points that will run concurrently once the serving arc lands:
#: the HTTP dispatch boundary, the platform's query executor, the shard
#: scatter path (coordinator and worker sides), and edge dispatch.
#: HTTP handlers are appended dynamically via :func:`discover_handlers`
#: (the ``handler(request)`` call inside ``dispatch`` is a dynamic
#: dispatch the call graph cannot resolve).
DEFAULT_CONCURRENT_ROOTS: tuple[str, ...] = (
    "*.api.http.Router.dispatch",
    "*.api.service.TVDPService.handle",
    "*.core.platform.TVDP.execute",
    "*.core.platform.TVDP.execute_many",
    "*.core.platform.TVDP._run_*",
    "*.shard.router.ShardRouter.execute",
    "*.shard.router.ShardRouter.execute_many",
    "*.shard.executor._worker_batch",
    "*.shard.executor._run_batch",
    "*.edge.dispatch.dispatch_model",
    "*.edge.dispatch.dispatch_fleet",
    "*.edge.dispatch.dispatch_fleet_resilient",
)

#: Construction/teardown methods whose writes are pre-publication.
CTOR_EXEMPT_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "__getstate__", "__setstate__", "__del__"}
)

#: Method calls that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append", "appendleft", "add", "insert", "extend", "extendleft",
        "update", "setdefault", "pop", "popitem", "popleft", "remove",
        "discard", "clear", "sort", "reverse",
    }
)

_CONTEXT_SCOPED_CTORS = frozenset(
    {"contextvars.ContextVar", "ContextVar", "threading.local", "local"}
)

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


def _dotted_of(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def discover_handlers(table: SymbolTable) -> tuple[str, ...]:
    """HTTP-handler qualnames: targets of ``route(m, t)(self._h)``
    decorator applications and ``router.add(m, t, self._h)`` calls."""
    handlers: set[str] = set()
    for info, class_context, _qualname, fn in iter_functions(table):
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            target: ast.expr | None = None
            if isinstance(node.func, ast.Call) and len(node.args) == 1:
                inner = node.func.func
                inner_name = (
                    inner.attr
                    if isinstance(inner, ast.Attribute)
                    else inner.id if isinstance(inner, ast.Name) else ""
                )
                if inner_name == "route":
                    target = node.args[0]
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "add"
                and len(node.args) == 3
                and all(isinstance(a, ast.Constant) for a in node.args[:2])
            ):
                target = node.args[2]
            if target is None:
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")
                and class_context is not None
            ):
                method = table.method_on(class_context, target.attr)
                if method is not None:
                    handlers.add(method)
            elif isinstance(target, ast.Name):
                resolved = table.resolve_export(f"{info.dotted}.{target.id}")
                if resolved is not None and not table.is_class(resolved):
                    handlers.add(resolved)
    return tuple(sorted(handlers))


def expand_concurrent_roots(
    table: SymbolTable, patterns: tuple[str, ...]
) -> tuple[str, ...]:
    """Root qualnames: pattern matches plus discovered HTTP handlers."""
    matched = {
        qualname
        for qualname in table.symbols
        if any(fnmatch(qualname, pattern) for pattern in patterns)
    }
    matched.update(discover_handlers(table))
    return tuple(sorted(matched))


@dataclass(slots=True)
class MutationSite:
    """One reachable write to a shared attribute."""

    qualname: str  # enclosing function
    path: str
    line: int
    held: frozenset[str]  # lexically-held locks at the site
    module: object  # SourceModule, for allow-comment checks
    kind: str  # "assign" | "augassign" | "store" | "method" | "delete"


@dataclass(slots=True)
class AttrClass:
    """Classification of one shared-class attribute."""

    owner: str
    attr: str
    classification: str
    guard: str = ""
    path: str = ""
    line: int = 0
    sites: list[MutationSite] = field(default_factory=list)


@dataclass(slots=True)
class EscapeAnalysis:
    """Everything the escape pass derived, reused by the atomicity pass
    and by the manifest builder."""

    roots: tuple[str, ...]
    handlers: tuple[str, ...]
    reachable: frozenset[str]
    shared_classes: frozenset[str]
    attrs: dict[tuple[str, str], AttrClass]
    #: function qualname -> locks provably held on every reachable call
    guarded_context: dict[str, frozenset[str]]
    lock_index: _LockIndex


def _class_nodes(table: SymbolTable) -> dict[str, tuple[ModuleInfo, ast.ClassDef]]:
    out: dict[str, tuple[ModuleInfo, ast.ClassDef]] = {}
    for dotted, info in table.modules.items():
        for node in info.module.tree.body:
            if isinstance(node, ast.ClassDef):
                out[f"{dotted}.{node.name}"] = (info, node)
    return out


def _held_types(
    table: SymbolTable, info: ModuleInfo, qualname: str, node: ast.ClassDef
) -> set[str]:
    """Class qualnames instances of ``qualname`` hold in attributes:
    inferred attr types, container element types, and annotated-param
    assigns (``self._db = db`` where ``db: Database``)."""
    held = set(table.attr_types.get(qualname, {}).values())
    held.update(table.attr_elem_types.get(qualname, {}).values())
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        locals_map = resolve_locals(table, info, qualname, method)
        for stmt in ast.walk(method):
            target_value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, target_value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, target_value = stmt.target, stmt.value
            else:
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(target_value, ast.Name)
                and target_value.id in locals_map
            ):
                held.add(locals_map[target_value.id])
    return held


def _shared_classes(
    table: SymbolTable,
    reachable: frozenset[str],
    roots: tuple[str, ...],
    nodes: dict[str, tuple[ModuleInfo, ast.ClassDef]],
) -> frozenset[str]:
    """Closure of classes whose instances concurrent roots can touch:
    owners of root methods, typed module globals referenced from
    reachable code, then everything they transitively hold."""
    seeds: set[str] = set()
    for qualname in roots:
        owner = qualname.rsplit(".", 1)[0]
        if table.is_class(owner):
            seeds.add(owner)
    for dotted, info in table.modules.items():
        if not info.var_types:
            continue
        candidates = set(info.var_types)
        for _info, _ctx, fn_qualname, fn in iter_functions(table):
            if _info.dotted != dotted or fn_qualname not in reachable:
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Name) and node.id in candidates:
                    type_qualname = info.var_types[node.id]
                    if table.is_class(type_qualname):
                        seeds.add(type_qualname)
    closure: set[str] = set()
    stack = list(seeds)
    while stack:
        current = stack.pop()
        if current in closure or current not in nodes:
            continue
        closure.add(current)
        info, node = nodes[current]
        for held in _held_types(table, info, current, node):
            if table.is_class(held) and held not in closure:
                stack.append(held)
    return frozenset(closure)


def _context_scoped_attrs(node: ast.ClassDef) -> dict[str, int]:
    """Attrs assigned a ContextVar / thread-local, with their line."""
    out: dict[str, int] = {}
    for stmt in ast.walk(node):
        value: ast.expr | None = None
        target: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if (
            value is not None
            and isinstance(value, ast.Call)
            and _dotted_of(value.func) in _CONTEXT_SCOPED_CTORS
            and isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in ("self", "cls")
        ):
            out[target.attr] = stmt.lineno
    return out


def _attr_inventory(
    info: ModuleInfo, qualname: str, node: ast.ClassDef
) -> dict[str, tuple[int, bool]]:
    """``{attr: (first line, is mutable-typed)}`` for every ``self.X``
    assignment in the class body plus annotated class-level fields."""
    out: dict[str, tuple[int, bool]] = {}

    def note(attr: str, line: int, mutable: bool) -> None:
        if attr not in out:
            out[attr] = (line, mutable)
        elif mutable and not out[attr][1]:
            out[attr] = (out[attr][0], True)

    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ann = ast.unparse(stmt.annotation) if stmt.annotation else ""
            mutable = any(tok in ann for tok in ("dict", "list", "set", "Dict", "List"))
            note(stmt.target.id, stmt.lineno, mutable)
    for stmt in ast.walk(node):
        value: ast.expr | None = None
        target: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if (
            target is not None
            and isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            mutable = isinstance(value, _MUTABLE_LITERALS) or isinstance(
                value, ast.Call
            )
            note(target.attr, stmt.lineno, mutable)
    return out


def _owner_of_base(
    table: SymbolTable,
    class_context: str | None,
    locals_map: dict[str, str],
    fresh: set[str],
    aliases: dict[str, tuple[str, str]],
    base: ast.expr,
) -> tuple[str, str] | None:
    """Resolve the receiver of a write: ``(owner class, attr)`` for
    ``self.X``, ``self.Y.X`` (one level of nesting), ``local.X`` where
    ``local`` has a known class type and is not freshly constructed, or
    a bare ``local`` that aliases ``self.X``."""
    if isinstance(base, ast.Attribute):
        inner = base.value
        if isinstance(inner, ast.Name):
            if inner.id in ("self", "cls") and class_context is not None:
                return class_context, base.attr
            if inner.id in aliases and base.attr:
                # alias.X: the alias points at (owner, attr); writing a
                # sub-attribute mutates the held object, attributed to
                # the held object's class when its type is known.
                owner, attr = aliases[inner.id]
                nested = attr_type_on(table, owner, attr)
                if nested is not None:
                    return nested, base.attr
                return None
            if inner.id in locals_map and inner.id not in fresh:
                return locals_map[inner.id], base.attr
            return None
        if (
            isinstance(inner, ast.Attribute)
            and isinstance(inner.value, ast.Name)
            and inner.value.id in ("self", "cls")
            and class_context is not None
        ):
            nested = attr_type_on(table, class_context, inner.attr)
            if nested is not None:
                return nested, base.attr
    return None


def analyze_escape(
    table: SymbolTable,
    graph: CallGraph,
    roots_patterns: tuple[str, ...] = DEFAULT_CONCURRENT_ROOTS,
) -> EscapeAnalysis:
    """Run the escape analysis; pure — no findings, no IO."""
    handlers = discover_handlers(table)
    roots = expand_concurrent_roots(table, roots_patterns)
    reachable = frozenset(graph.reachable(roots) | set(roots))
    nodes = _class_nodes(table)
    shared = _shared_classes(table, reachable, roots, nodes)
    lock_index = _index_locks(table)

    # Which shared classes have any reachable method at all: classes
    # never entered from a concurrent root are construction-only and
    # stay out of the manifest.
    active_classes: set[str] = set()
    for qualname in reachable:
        owner = qualname.rsplit(".", 1)[0]
        if owner in shared:
            active_classes.add(owner)

    sites: dict[tuple[str, str], list[MutationSite]] = {}
    # callee -> [(caller, lexically-held locks at the call)]
    call_contexts: dict[str, list[tuple[str, frozenset[str]]]] = {}

    for info, class_context, qualname, fn in iter_functions(table):
        if qualname not in reachable:
            continue
        locals_map = resolve_locals(table, info, class_context, fn)
        in_ctor = fn.name in CTOR_EXEMPT_METHODS

        # Locals bound to freshly-constructed objects: writes to them
        # are pre-publication (the clone_empty pattern).
        fresh: set[str] = set()
        aliases: dict[str, tuple[str, str]] = {}
        for stmt in ast.walk(fn):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(stmt.value, ast.Call):
                callee = resolve_call(
                    table, info, class_context, stmt.value.func, locals_map
                )
                if callee is not None and table.is_class(callee):
                    fresh.add(target.id)
            elif (
                isinstance(stmt.value, ast.Attribute)
                and isinstance(stmt.value.value, ast.Name)
                and stmt.value.value.id in ("self", "cls")
                and class_context is not None
            ):
                aliases[target.id] = (class_context, stmt.value.attr)

        def record(
            base: ast.expr,
            line: int,
            held: tuple[str, ...],
            kind: str,
            method: str = "",
        ) -> None:
            found = _owner_of_base(
                table, class_context, locals_map, fresh, aliases, base
            )
            if found is None:
                # a bare alias local mutated in place: campaign = self._x
                # then campaign.append(...) has base Name.
                if isinstance(base, ast.Name) and base.id in aliases:
                    found = aliases[base.id]
                else:
                    return
            owner, attr = found
            if owner not in shared:
                return
            if kind == "method" and method:
                # ``self._db.insert(...)`` where Database defines insert
                # is a method call, not a container mutation: the call
                # graph attributes its internal writes at their own
                # sites (under whatever lock that method takes).
                receiver = attr_type_on(table, owner, attr)
                if receiver is not None and table.method_on(receiver, method):
                    return
            sites.setdefault((owner, attr), []).append(
                MutationSite(
                    qualname=qualname,
                    path=info.module.rel_path,
                    line=line,
                    held=frozenset(held),
                    module=info.module,
                    kind=kind,
                )
            )

        def visit(node: ast.AST, held: tuple[str, ...]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                current = held
                for item in node.items:
                    visit(item.context_expr, current)
                    lock = _resolve_lock(
                        table, lock_index, info, class_context, item.context_expr
                    )
                    if lock is not None:
                        current = current + (lock,)
                for stmt in node.body:
                    visit(stmt, current)
                return
            if not in_ctor:
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Attribute):
                            record(target, node.lineno, held, "assign")
                        elif isinstance(target, ast.Subscript) and isinstance(
                            target.value, ast.Attribute
                        ):
                            record(target.value, node.lineno, held, "store")
                elif isinstance(node, ast.AugAssign):
                    if isinstance(node.target, ast.Attribute):
                        record(node.target, node.lineno, held, "augassign")
                    elif isinstance(node.target, ast.Subscript) and isinstance(
                        node.target.value, ast.Attribute
                    ):
                        record(node.target.value, node.lineno, held, "store")
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        if isinstance(target, ast.Subscript) and isinstance(
                            target.value, ast.Attribute
                        ):
                            record(target.value, node.lineno, held, "delete")
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATING_METHODS
                ):
                    record(
                        node.func.value, node.lineno, held, "method",
                        method=node.func.attr,
                    )
            if isinstance(node, ast.Call):
                callee = resolve_call(table, info, class_context, node.func, locals_map)
                if callee is not None and table.is_class(callee):
                    callee = table.method_on(callee, "__init__")
                if callee is not None and callee in reachable:
                    call_contexts.setdefault(callee, []).append(
                        (qualname, frozenset(held))
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in fn.body:
            visit(stmt, ())

    # Called-with-lock-held fixpoint: a function every reachable call
    # site of which runs with lock L held is itself guarded by L (the
    # ``_dense_matrix_locked`` / ``_prune`` caller-holds-lock idiom).
    guarded: dict[str, frozenset[str] | None] = {q: None for q in reachable}
    for root in roots:
        guarded[root] = frozenset()
    # Kleene iteration from the optimistic top (None = "all locks"):
    # unresolved callers are intersection-identity, which lets recursive
    # helpers (RTree._insert calling itself under the index lock)
    # converge to the lock their external callers hold.
    changed = True
    while changed:
        changed = False
        for callee, contexts in call_contexts.items():
            if guarded.get(callee) == frozenset():
                continue
            values = [
                held | caller_guard
                for caller, held in contexts
                if (caller_guard := guarded.get(caller)) is not None
            ]
            if not values:
                continue
            combined = frozenset.intersection(*values)
            previous = guarded.get(callee)
            if previous is not None:
                combined = combined & previous
            if combined != previous:
                guarded[callee] = combined
                changed = True
    guarded_context: dict[str, frozenset[str]] = {
        qualname: (locks if locks is not None else frozenset())
        for qualname, locks in guarded.items()
    }

    # Classify each attribute of each active shared class.
    attrs: dict[tuple[str, str], AttrClass] = {}
    for owner in sorted(active_classes):
        info, node = nodes[owner]
        context_scoped = _context_scoped_attrs(node)
        inventory = _attr_inventory(info, owner, node)
        lock_attrs = lock_index.class_attrs.get(owner, set())
        names = set(inventory) | {
            attr for (cls, attr) in sites if cls == owner
        }
        for attr in sorted(names):
            if attr in lock_attrs:
                continue
            line, mutable = inventory.get(attr, (node.lineno, True))
            if attr in context_scoped:
                attrs[(owner, attr)] = AttrClass(
                    owner=owner,
                    attr=attr,
                    classification="contextvar-scoped",
                    path=info.module.rel_path,
                    line=context_scoped[attr],
                )
                continue
            attr_sites = sites.get((owner, attr), [])
            # Sites sanctioned with an inline allow-comment drop out
            # before classification.
            live = [
                s
                for s in attr_sites
                if not s.module.allows(RULE, s.line)  # type: ignore[attr-defined]
            ]
            if not live:
                if mutable:
                    attrs[(owner, attr)] = AttrClass(
                        owner=owner,
                        attr=attr,
                        classification="immutable",
                        path=info.module.rel_path,
                        line=line,
                    )
                continue
            effective = [
                s.held | guarded_context.get(s.qualname, frozenset()) for s in live
            ]
            common = frozenset.intersection(*effective) if effective else frozenset()
            if common:
                own = sorted(lock for lock in common if lock.startswith(owner + "."))
                guard = own[0] if own else sorted(common)[0]
                attrs[(owner, attr)] = AttrClass(
                    owner=owner,
                    attr=attr,
                    classification="lock-guarded",
                    guard=guard,
                    path=info.module.rel_path,
                    line=line,
                    sites=live,
                )
            else:
                attrs[(owner, attr)] = AttrClass(
                    owner=owner,
                    attr=attr,
                    classification="unguarded-shared",
                    path=info.module.rel_path,
                    line=line,
                    sites=live,
                )

    return EscapeAnalysis(
        roots=roots,
        handlers=handlers,
        reachable=reachable,
        shared_classes=shared,
        attrs=attrs,
        guarded_context=guarded_context,
        lock_index=lock_index,
    )


def build_concurrency_manifest(
    analysis: EscapeAnalysis, roots_patterns: tuple[str, ...]
) -> dict:
    """The drift-gated manifest document (deterministic ordering)."""
    entries = []
    for (owner, attr) in sorted(analysis.attrs):
        record = analysis.attrs[(owner, attr)]
        if record.classification == "unguarded-shared":
            continue  # findings, not accepted state
        entries.append(
            {
                "attr": f"{owner}.{attr}",
                "classification": record.classification,
                "guard": record.guard,
                "path": record.path,
                "line": record.line,
            }
        )
    return {
        "schema": CONCURRENCY_MANIFEST_SCHEMA,
        "comment": (
            "Thread-safety classification of shared mutable state reachable "
            "from concurrent entry points; regenerate with "
            "`python -m repro.devtools.check --write-concurrency-manifest`. "
            "The lock-coverage sanitizer enforces lock-guarded rows at "
            "runtime under REPRO_SANITIZE=1."
        ),
        "roots": list(roots_patterns),
        "entries": entries,
    }


def render_concurrency_manifest(manifest: dict) -> str:
    """Canonical byte representation (same tree -> byte-identical)."""
    import json

    return json.dumps(manifest, indent=2, sort_keys=False) + "\n"


def check_thread_escape(
    table: SymbolTable,
    graph: CallGraph,
    roots_patterns: tuple[str, ...] = DEFAULT_CONCURRENT_ROOTS,
    checked_in: dict | None = None,
    manifest_rel: str = "tools/concurrency_manifest.json",
    analysis: EscapeAnalysis | None = None,
) -> tuple[list[Finding], dict, EscapeAnalysis]:
    """Findings + the regenerated manifest + the reusable analysis."""
    if analysis is None:
        analysis = analyze_escape(table, graph, roots_patterns)
    findings: list[Finding] = []
    for (owner, attr) in sorted(analysis.attrs):
        record = analysis.attrs[(owner, attr)]
        if record.classification != "unguarded-shared":
            continue
        witnesses = sorted(
            {(s.path, s.line) for s in record.sites}, key=lambda w: (w[0], w[1])
        )
        first = record.sites[0]
        shown = ", ".join(f"{p}:{ln}" for p, ln in witnesses[:3])
        more = f" (+{len(witnesses) - 3} more)" if len(witnesses) > 3 else ""
        owner_short = owner.rsplit(".", 1)[-1]
        findings.append(
            Finding(
                rule=RULE,
                path=first.path,
                line=first.line,
                message=(
                    f"{owner_short}.{attr} is shared across concurrent entry "
                    f"points but mutated without a consistent lock at {shown}"
                    f"{more}; guard every mutation with one lock or scope the "
                    "state per-request"
                ),
                scope=f"{owner_short}.{attr}",
            )
        )

    manifest = build_concurrency_manifest(analysis, roots_patterns)
    if checked_in is None:
        if manifest["entries"]:
            findings.append(
                Finding(
                    rule=RULE,
                    path=manifest_rel,
                    line=1,
                    message=(
                        f"concurrency manifest {manifest_rel} is missing; "
                        "regenerate with --write-concurrency-manifest"
                    ),
                    scope="manifest",
                )
            )
    elif checked_in != manifest:
        findings.append(
            Finding(
                rule=RULE,
                path=manifest_rel,
                line=1,
                message=(
                    f"concurrency manifest {manifest_rel} is stale (the tree's "
                    "classifications changed); regenerate with "
                    "--write-concurrency-manifest"
                ),
                scope="manifest",
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.scope))
    return findings, manifest, analysis
