"""mypy ratchet: type-checking gated on a recorded per-file baseline.

``pyproject.toml`` configures mypy leniently for the bulk of the tree
and strictly for an allowlist of fully-annotated modules.  This wrapper
runs mypy, tallies errors per file, and compares against the committed
baseline (``tools/mypy_baseline.json``):

* a file exceeding its recorded error count fails the run (regression),
* a file dropping below it prints a ratchet hint (run ``--update``),
* when mypy is not installed the wrapper reports that and exits 0, so
  the local test suite stays runnable in minimal environments while CI
  (which installs mypy) enforces the gate.

Run as ``python -m repro.devtools.typecheck [--update] [--json]``.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import re
import subprocess
import sys
from pathlib import Path

_ERROR_RE = re.compile(r"^(?P<path>[^:\n]+):(?P<line>\d+):(?:\d+:)?\s*error:")


def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def run_mypy(repo_root: Path) -> tuple[int, str]:
    """Invoke mypy with the pyproject config; returns (exit, stdout)."""
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=repo_root,
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr


def errors_by_file(output: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for line in output.splitlines():
        match = _ERROR_RE.match(line.strip())
        if match:
            path = match.group("path").replace("\\", "/")
            counts[path] = counts.get(path, 0) + 1
    return counts


def load_mypy_baseline(path: Path) -> dict[str, int]:
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    files = data.get("files", data) if isinstance(data, dict) else {}
    return {str(k): int(v) for k, v in files.items()}


def compare(
    counts: dict[str, int], baseline: dict[str, int]
) -> tuple[list[str], list[str]]:
    """(regressions, improvements) versus the baseline."""
    regressions: list[str] = []
    improvements: list[str] = []
    for path in sorted(set(counts) | set(baseline)):
        now = counts.get(path, 0)
        recorded = baseline.get(path, 0)
        if now > recorded:
            regressions.append(f"{path}: {recorded} -> {now} error(s)")
        elif now < recorded:
            improvements.append(f"{path}: {recorded} -> {now} error(s)")
    return regressions, improvements


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.devtools.typecheck")
    parser.add_argument("--repo-root", type=Path, default=None)
    parser.add_argument("--baseline", type=Path, default=None)
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline to current counts"
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    repo_root = (
        args.repo_root
        if args.repo_root is not None
        else Path(__file__).resolve().parents[3]
    )
    baseline_path = (
        args.baseline
        if args.baseline is not None
        else repo_root / "tools" / "mypy_baseline.json"
    )

    if not mypy_available():
        sys.stdout.write(
            "repro.devtools.typecheck: mypy is not installed — skipping "
            "(CI installs it and enforces the baseline)\n"
        )
        return 0

    exit_code, output = run_mypy(repo_root)
    counts = errors_by_file(output)
    if exit_code >= 2 and not counts:  # config/crash error, not type errors
        sys.stderr.write(output)
        return exit_code
    baseline = load_mypy_baseline(baseline_path)
    regressions, improvements = compare(counts, baseline)

    if args.update:
        payload = {
            "comment": "Per-file mypy error counts accepted as the ratchet baseline.",
            "files": dict(sorted(counts.items())),
        }
        baseline_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        sys.stdout.write(f"wrote baseline for {len(counts)} file(s) to {baseline_path}\n")
        return 0

    if args.json:
        sys.stdout.write(
            json.dumps(
                {
                    "ok": not regressions,
                    "errors_by_file": counts,
                    "regressions": regressions,
                    "improvements": improvements,
                },
                indent=2,
            )
            + "\n"
        )
    else:
        if regressions:
            sys.stdout.write("mypy regressions versus the recorded baseline:\n")
            for line in regressions:
                sys.stdout.write(f"  {line}\n")
            sys.stdout.write(output)
        else:
            total = sum(counts.values())
            sys.stdout.write(
                f"repro.devtools.typecheck: OK — {total} baselined error(s), no regressions\n"
            )
        if improvements:
            sys.stdout.write(
                "ratchet opportunity (run with --update to lock in):\n"
            )
            for line in improvements:
                sys.stdout.write(f"  {line}\n")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
