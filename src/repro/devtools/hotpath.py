"""Hot-path cost pass: per-item work on the query execution paths.

Shard workers will run the six query families at catalog scale, so
per-item Python work inside their reachable closure is exactly what
Spatialyze-style pruning and vectorisation must eliminate.  This pass
walks the callgraph from the data-plane roots (default:
``TVDP.execute``) and flags, inside that closure:

* NumPy calls inside per-item loops (one vectorised call over the
  collection is the fix),
* repeated ``sorted()`` / ``.sort()`` calls inside loops,
* full-collection scans (``.all_rows()`` / ``.scan()``) inside loops,
* per-item keyed table lookups in loops (the classic N+1 shape
  ``table(...).get(item)``), and
* loops driven directly by a full-table scan (an O(n) access path).

Sanctioning is *centralised*: the pass reads ``COST_MODEL`` — a pure
literal in ``core/costmodel.py``, parsed straight out of the scanned
AST with ``ast.literal_eval`` because the layer DAG keeps devtools
import-isolated — and suppresses findings inside functions listed as
``hot_sites``.  Those are the loops the model *documents* (and
``explain()`` annotates with the model's cost strings and dominant
probe counters, cross-checkable against measured ``counter_deltas``).
A listed hot site that no longer exists is itself a finding, so the
model cannot go stale; an un-listed hot loop fails the lint until it is
vectorised, modelled, or allowed inline.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from typing import Iterator

from repro.devtools.callgraph import CallGraph, ModuleInfo, SymbolTable, iter_functions
from repro.devtools.findings import Finding, SourceModule, scope_of
from repro.devtools.processsafety import DEFAULT_DATA_PLANE_ROOTS, expand_roots

RULE = "hot-path"

#: Where the cost model literal lives in a scanned tree.
COST_MODEL_GLOB = "*/core/costmodel.py"

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def load_cost_model(
    modules: list[SourceModule],
) -> tuple[dict, SourceModule | None, int]:
    """``(COST_MODEL literal, defining module, assign line)`` from the
    scanned tree — ``({}, None, 0)`` when no model module exists."""
    for module in modules:
        if not fnmatch(module.rel_path, COST_MODEL_GLOB):
            continue
        for node in module.tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "COST_MODEL" for t in targets
            ):
                continue
            value = node.value
            if value is None:
                continue
            try:
                model = ast.literal_eval(value)
            except (ValueError, SyntaxError):
                continue
            if isinstance(model, dict):
                return model, module, node.lineno
    return {}, None, 0


def model_hot_sites(cost_model: dict) -> frozenset[str]:
    """Every qualname the model sanctions as a documented hot loop."""
    sites: set[str] = set()
    for entry in cost_model.values():
        if isinstance(entry, dict):
            sites.update(str(site) for site in entry.get("hot_sites", []))
    return frozenset(sites)


def _dotted_of(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _repeated_nodes(loop: ast.AST) -> Iterator[ast.AST]:
    """AST nodes that execute once *per iteration* of ``loop`` (the
    ``for``'s iterable and a comprehension's first source run once)."""
    regions: list[ast.AST] = []
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        regions = [*loop.body, *loop.orelse]
    elif isinstance(loop, ast.While):
        regions = [loop.test, *loop.body, *loop.orelse]
    elif isinstance(loop, ast.DictComp):
        regions = [loop.key, loop.value]
    elif isinstance(loop, _COMPREHENSIONS):
        regions = [loop.elt]
    if isinstance(loop, _COMPREHENSIONS):
        for index, gen in enumerate(loop.generators):
            if index > 0:
                regions.append(gen.iter)
            regions.extend(gen.ifs)
    for region in regions:
        yield from ast.walk(region)


def _numpy_aliases(info: ModuleInfo) -> frozenset[str]:
    return frozenset(
        local for local, target in info.imports.items() if target == "numpy"
    )


def _loop_findings(
    info: ModuleInfo, fn: ast.FunctionDef | ast.AsyncFunctionDef
) -> list[tuple[int, str]]:
    """``(line, message)`` for per-item work inside ``fn``'s loops."""
    np_aliases = _numpy_aliases(info)
    hits: set[tuple[int, str]] = set()
    for loop in ast.walk(fn):
        if not isinstance(loop, (*_LOOPS, *_COMPREHENSIONS)):
            continue
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            iter_dotted = _dotted_of(
                loop.iter.func if isinstance(loop.iter, ast.Call) else loop.iter
            )
            if iter_dotted.endswith(("all_rows", "scan")):
                hits.add(
                    (
                        loop.lineno,
                        f"O(n) access path: loop driven by {iter_dotted}() scans "
                        f"the full collection — index it or document the cost in "
                        f"COST_MODEL",
                    )
                )
        for node in _repeated_nodes(loop):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            dotted = _dotted_of(func)
            head = dotted.split(".", 1)[0]
            if head in np_aliases:
                hits.add(
                    (
                        node.lineno,
                        f"NumPy call {dotted}() inside a per-item loop — hoist it "
                        f"into one vectorised call over the collection, or list "
                        f"the function in COST_MODEL hot_sites",
                    )
                )
            elif isinstance(func, ast.Name) and func.id == "sorted":
                hits.add(
                    (node.lineno, "repeated sorted() inside a loop — sort once outside")
                )
            elif isinstance(func, ast.Attribute) and func.attr == "sort":
                hits.add(
                    (node.lineno, "repeated .sort() inside a loop — sort once outside")
                )
            elif isinstance(func, ast.Attribute) and func.attr in ("all_rows", "scan"):
                hits.add(
                    (
                        node.lineno,
                        f"full-collection {func.attr}() inside a loop — O(n*m); "
                        f"hoist the scan or index the access",
                    )
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Attribute)
                and func.value.func.attr == "table"
            ):
                hits.add(
                    (
                        node.lineno,
                        "per-item table(...).get(...) inside a loop (N+1 lookups) — "
                        "batch the fetch or join before iterating",
                    )
                )
    return sorted(hits)


def _scan_findings(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, taken_lines: set[int]
) -> list[tuple[int, str]]:
    """Full-collection scans *anywhere* in a data-plane function — the
    O(n) access paths (``_run_temporal``'s predicate scan) that must be
    documented in COST_MODEL even when not nested in a loop."""
    hits: set[tuple[int, str]] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("all_rows", "scan")
            and node.lineno not in taken_lines
        ):
            hits.add(
                (
                    node.lineno,
                    f"O(n) access path: {func.attr}() scans the full collection "
                    f"on a query path — index it or document the cost in "
                    f"COST_MODEL",
                )
            )
    return sorted(hits)


def check_hot_path(
    modules: list[SourceModule],
    table: SymbolTable,
    graph: CallGraph,
    root_patterns: tuple[str, ...] = DEFAULT_DATA_PLANE_ROOTS,
    cost_model: dict | None = None,
    scope_cache: dict | None = None,
) -> list[Finding]:
    """Per-item-work findings on the data-plane closure, minus the
    sites the cost model documents; stale model sites are findings."""
    cache: dict = scope_cache if scope_cache is not None else {}
    if cost_model is None:
        cost_model, model_module, model_line = load_cost_model(modules)
    else:
        model_module, model_line = None, 0
        for module in modules:
            if fnmatch(module.rel_path, COST_MODEL_GLOB):
                model_module = module
                break
    sanctioned = model_hot_sites(cost_model)
    roots = expand_roots(table, root_patterns)
    reachable = graph.reachable(roots)

    findings: list[Finding] = []
    for info, _class_context, qualname, fn in iter_functions(table):
        if qualname not in reachable or qualname in sanctioned:
            continue
        module = info.module
        loop_hits = _loop_findings(info, fn)
        scan_hits = _scan_findings(fn, {line for line, _ in loop_hits})
        for line, message in [*loop_hits, *scan_hits]:
            if module.allows(RULE, line) or module.allows(RULE, fn.lineno):
                continue
            findings.append(
                Finding(
                    rule=RULE,
                    path=module.rel_path,
                    line=line,
                    message=message,
                    scope=scope_of(module, line, cache),
                )
            )

    for site in sorted(sanctioned):
        if site in table.symbols:
            continue
        if model_module is not None and model_module.allows(RULE, model_line):
            continue
        findings.append(
            Finding(
                rule=RULE,
                path=model_module.rel_path if model_module is not None else "<model>",
                line=model_line or 1,
                message=(
                    f"COST_MODEL lists hot site {site!r} but no such function "
                    f"exists — the cost model is stale"
                ),
                scope=site,
            )
        )
    return findings
