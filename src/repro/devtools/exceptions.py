"""Exception-flow analysis: entry points raise only taxonomy errors.

The platform's contract (``repro.errors``) is that every failure
crossing a public API/edge/db boundary is a :class:`TVDPError`
subclass — callers catch one root, the HTTP router maps one hierarchy,
and the resilience policies declare their retryable sets against it.
A bare ``OSError`` escaping ``db.persistence`` silently breaks all
three.

This pass infers, for every *public* entry point in the configured
entry packages, the set of exception types it can propagate:

* direct ``raise X(...)`` statements (bare ``raise`` re-raises the
  types of its enclosing ``except`` clause);
* a table of known external raisers (file IO raises ``OSError``,
  ``json.loads`` raises ``ValueError``);
* transitive propagation along the call graph, filtered by the
  ``try/except`` structure around each call site with real subclass
  checks (an ``except TVDPError`` absorbs ``QueryError``);
* higher-order propagation: a callable argument handed to a resilience
  policy ``call``/``execute`` contributes its own raises (the policy
  re-raises what the wrapped callable throws).

An exception may escape when it is a taxonomy member, appears in a
declared retryable set (``DEFAULT_TRANSIENT``-style tuples), or is one
of the sanctioned programmer-contract builtins (``ValueError``/
``TypeError``/``KeyError``/``AssertionError``/``NotImplementedError``
— misuse, not failure).  Anything else is a ``exception-flow``
finding at the entry point's definition.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field

from repro.devtools.callgraph import (
    CallGraph,
    ModuleInfo,
    SymbolTable,
    iter_functions,
    resolve_call,
    resolve_locals,
)
from repro.devtools.findings import Finding, SourceModule

RULE_EXCEPTION_FLOW = "exception-flow"

#: Packages (relative to the top package) whose public callables are
#: boundary entry points.
DEFAULT_ENTRY_PACKAGES: tuple[str, ...] = ("api", "edge", "db")

#: Packages whose raises are internal programming guards, not flow.
DEFAULT_EXEMPT_PACKAGES: tuple[str, ...] = ("obs", "devtools")

#: Root class name of the project error taxonomy.
TAXONOMY_ROOT = "TVDPError"

#: Builtins that signal caller misuse rather than runtime failure.
SANCTIONED_BUILTINS = frozenset(
    {"ValueError", "TypeError", "KeyError", "AssertionError", "NotImplementedError",
     "StopIteration"}
)

#: attr / dotted-suffix of an external call -> exceptions it raises.
KNOWN_RAISERS: dict[str, tuple[str, ...]] = {
    "open": ("OSError",),
    "read_text": ("OSError",),
    "read_bytes": ("OSError",),
    "write_text": ("OSError",),
    "write_bytes": ("OSError",),
    "unlink": ("OSError",),
    "replace": ("OSError",),
    "rename": ("OSError",),
    "mkdir": ("OSError",),
    "json.loads": ("ValueError",),
    "json.dumps": ("TypeError", "ValueError"),
}

#: Policy entry points whose callable arguments' raises propagate out.
_HIGHER_ORDER_SUFFIXES = (
    ".resilience.policies.execute",
    ".resilience.policies.Retry.call",
    ".resilience.policies.CircuitBreaker.call",
    ".resilience.policies.Fallback.call",
)


@dataclass(slots=True)
class ExceptionModel:
    """The taxonomy + builtin class hierarchy, by simple name."""

    #: taxonomy class name -> direct base names
    taxonomy_bases: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def is_taxonomy(self, name: str) -> bool:
        return self._reaches(name, TAXONOMY_ROOT)

    def _reaches(self, name: str, ancestor: str) -> bool:
        if name == ancestor:
            return True
        for base in self.taxonomy_bases.get(name, ()):
            if self._reaches(base, ancestor):
                return True
        return False

    def is_subclass(self, name: str, handler: str) -> bool:
        """Is exception ``name`` absorbed by ``except handler``?"""
        if handler in ("BaseException", "Exception"):
            return True
        if name == handler:
            return True
        if name in self.taxonomy_bases:
            return any(
                self.is_subclass(base, handler)
                for base in self.taxonomy_bases[name]
            ) or handler == TAXONOMY_ROOT and self.is_taxonomy(name)
        first = getattr(builtins, name, None)
        second = getattr(builtins, handler, None)
        if (
            isinstance(first, type)
            and isinstance(second, type)
            and issubclass(first, BaseException)
            and issubclass(second, BaseException)
        ):
            return issubclass(first, second)
        return False


def build_exception_model(table: SymbolTable) -> ExceptionModel:
    """Read the taxonomy hierarchy out of the symbol table."""
    model = ExceptionModel()
    roots = {
        qualname
        for qualname, symbol in table.symbols.items()
        if symbol.kind == "class" and symbol.name == TAXONOMY_ROOT
    }
    if not roots:
        return model
    # Walk every class whose base chain reaches the root, by name.
    for qualname, symbol in table.symbols.items():
        if symbol.kind != "class":
            continue
        base_names = tuple(base.rsplit(".", 1)[-1] for base in symbol.bases)
        model.taxonomy_bases.setdefault(symbol.name, base_names)
    # Keep only classes that actually reach the root (plus the root),
    # so unrelated same-named classes elsewhere don't pollute checks.
    reachable = {
        name for name in model.taxonomy_bases if model._reaches(name, TAXONOMY_ROOT)
    }
    model.taxonomy_bases = {
        name: bases for name, bases in model.taxonomy_bases.items() if name in reachable
    }
    return model


def _exception_name(node: ast.expr | None) -> str | None:
    """Simple class name of a raise/handler expression."""
    if node is None:
        return None
    if isinstance(node, ast.Call):
        node = node.func
    while isinstance(node, ast.Attribute):
        # repro.errors.QueryError / errors.QueryError -> QueryError
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _handler_names(handler: ast.ExceptHandler) -> tuple[str, ...] | None:
    """Names a handler catches; None means catch-everything."""
    if handler.type is None:
        return None
    if isinstance(handler.type, ast.Tuple):
        names = tuple(
            name
            for name in (_exception_name(el) for el in handler.type.elts)
            if name is not None
        )
        return names or None
    name = _exception_name(handler.type)
    # A dynamic handler expression (``except self._retryable``) catches
    # an unknowable set; treat as catch-everything so we do not invent
    # escapes the runtime filters out.
    if name is None:
        return None
    if name[0].islower():
        return None  # variable holding a tuple of types
    return (name,)


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """A handler containing a bare ``raise`` is *transparent*: it logs
    or annotates, then re-raises — it neither absorbs its caught types
    nor originates new ones."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


def _try_context(fn: ast.AST) -> dict[int, list[tuple[str, ...] | None]]:
    """Map each node id to the stack of handler-name-sets of the
    ``try`` bodies lexically enclosing it (innermost last).
    Transparent (re-raising) handlers are excluded — they don't
    protect the body."""
    context: dict[int, list[tuple[str, ...] | None]] = {}

    def visit(node: ast.AST, stack: list[tuple[str, ...] | None]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Try):
                handler_sets = [
                    _handler_names(h)
                    for h in child.handlers
                    if not _handler_reraises(h)
                ]
                body_stack = stack + handler_sets
                for stmt in child.body:
                    context[id(stmt)] = body_stack
                    visit(stmt, body_stack)
                # handlers / orelse / finalbody are outside this try's
                # own protection (a raise in a handler escapes it).
                for handler in child.handlers:
                    for stmt in handler.body:
                        context[id(stmt)] = stack
                        visit(stmt, stack)
                for stmt in [*child.orelse, *child.finalbody]:
                    context[id(stmt)] = stack
                    visit(stmt, stack)
            else:
                context[id(child)] = stack
                visit(child, stack)

    visit(fn, [])
    return context


def _caught(
    name: str, stack: list[tuple[str, ...] | None], model: ExceptionModel
) -> bool:
    for handler_set in stack:
        if handler_set is None:
            return True
        if any(model.is_subclass(name, handler) for handler in handler_set):
            return True
    return False


@dataclass(slots=True)
class _RaiseFacts:
    """Per-function facts before propagation."""

    #: exception name -> witness line (first seen)
    direct: dict[str, int] = field(default_factory=dict)
    #: call sites: (callee qualname|None, raw, line, try stack, callable-arg callees)
    calls: list[tuple[str | None, str, int, list[tuple[str, ...] | None], tuple[str, ...]]] = field(
        default_factory=list
    )


def _is_higher_order(qualname: str) -> bool:
    return any(qualname.endswith(suffix) for suffix in _HIGHER_ORDER_SUFFIXES)


def _collect_facts(
    table: SymbolTable,
    info: ModuleInfo,
    class_context: str | None,
    qualname: str,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    model: ExceptionModel,
) -> _RaiseFacts:
    facts = _RaiseFacts()
    locals_map = resolve_locals(table, info, class_context, fn)
    context = _try_context(fn)

    # Nested defs' bodies are walked with their lexical try context —
    # a fair stand-in for the enclosing function's protection, since
    # closures here are invoked from where they are defined (directly
    # or through a policy call we model higher-order).
    for node in ast.walk(fn):
        stack = context.get(id(node), [])
        if isinstance(node, ast.Raise):
            if node.exc is None:
                # bare re-raise inside a transparent handler: the try
                # body's raises already pass through (the handler was
                # excluded from the filter stack), so nothing to add.
                continue
            name = _exception_name(node.exc)
            if name is not None and not _caught(name, stack, model):
                facts.direct.setdefault(f"{name}@{node.lineno}", node.lineno)
        elif isinstance(node, ast.Call):
            callee = resolve_call(table, info, class_context, node.func, locals_map)
            if callee is not None and table.is_class(callee):
                callee = table.method_on(callee, "__init__")
            raw = _raw_dotted(node.func)
            arg_callees: list[str] = []
            if callee is not None and _is_higher_order(callee):
                for arg in node.args:
                    if isinstance(arg, ast.Lambda):
                        for sub in ast.walk(arg.body):
                            if isinstance(sub, ast.Call):
                                inner_callee = resolve_call(
                                    table, info, class_context, sub.func, locals_map
                                )
                                if inner_callee is not None:
                                    arg_callees.append(inner_callee)
                    else:
                        target = resolve_call(table, info, class_context, arg, locals_map)
                        if target is not None:
                            arg_callees.append(target)
            facts.calls.append((callee, raw, node.lineno, stack, tuple(arg_callees)))
    return facts


def _raw_dotted(expr: ast.expr) -> str:
    parts: list[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _external_raises(callee: str | None, raw: str) -> tuple[str, ...]:
    if callee is not None:
        return ()  # project-internal: handled by propagation
    if raw in KNOWN_RAISERS:
        return KNOWN_RAISERS[raw]
    attr = raw.rsplit(".", 1)[-1] if raw else ""
    for suffix in (raw, attr):
        if suffix in KNOWN_RAISERS:
            return KNOWN_RAISERS[suffix]
    return ()


@dataclass(slots=True)
class ExceptionFlow:
    """Propagated raise sets for every function in the project."""

    model: ExceptionModel
    #: qualname -> {exception name -> witness line in that function}
    raises: dict[str, dict[str, int]]


def analyze_exceptions(table: SymbolTable, graph: CallGraph) -> ExceptionFlow:
    model = build_exception_model(table)
    facts: dict[str, _RaiseFacts] = {}
    for info, class_context, qualname, fn in iter_functions(table):
        collected = _collect_facts(table, info, class_context, qualname, fn, model)
        # Strip witness-line suffixes from direct raises now that
        # duplicates are folded.
        direct: dict[str, int] = {}
        for key, line in collected.direct.items():
            name = key.split("@", 1)[0]
            if name not in direct:
                direct[name] = line
        collected.direct = direct
        facts[qualname] = collected

    raises: dict[str, dict[str, int]] = {
        qualname: dict(f.direct) for qualname, f in facts.items()
    }
    # Add external raisers, filtered by try context at the call site.
    for qualname, f in facts.items():
        out = raises[qualname]
        for callee, raw, line, stack, _args in f.calls:
            for name in _external_raises(callee, raw):
                if not _caught(name, stack, model):
                    out.setdefault(name, line)

    # Propagate through the call graph to a fixpoint, filtering each
    # call site's contribution through its try/except stack.
    changed = True
    while changed:
        changed = False
        for qualname, f in facts.items():
            out = raises[qualname]
            for callee, _raw, line, stack, arg_callees in f.calls:
                sources = []
                if callee is not None:
                    sources.append(callee)
                sources.extend(arg_callees)
                for source in sources:
                    for name in raises.get(source, {}):
                        if name in out:
                            continue
                        if _caught(name, stack, model):
                            continue
                        out[name] = line
                        changed = True
    return ExceptionFlow(model=model, raises=raises)


def _declared_retryable(table: SymbolTable) -> frozenset[str]:
    """Exception names appearing in ``*TRANSIENT*``/``*RETRYABLE*``
    module-level tuples — the policies' declared retryable sets."""
    names: set[str] = set()
    for info in table.modules.values():
        for node in info.module.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            upper = target.id.upper()
            if "TRANSIENT" not in upper and "RETRYABLE" not in upper:
                continue
            if isinstance(node.value, ast.Tuple):
                for el in node.value.elts:
                    name = _exception_name(el)
                    if name is not None:
                        names.add(name)
    return frozenset(names)


def check_exception_flow(
    table: SymbolTable,
    graph: CallGraph,
    modules: list[SourceModule],
    entry_packages: tuple[str, ...] = DEFAULT_ENTRY_PACKAGES,
    flow: ExceptionFlow | None = None,
) -> list[Finding]:
    """``exception-flow`` findings at boundary entry points."""
    facts = flow if flow is not None else analyze_exceptions(table, graph)
    model = facts.model
    retryable = _declared_retryable(table)
    by_rel: dict[str, SourceModule] = {m.rel_path: m for m in modules}
    top = table.top_package
    entry_prefixes = tuple(f"{top}.{pkg}." for pkg in entry_packages)

    findings: list[Finding] = []
    for qualname, symbol in sorted(table.symbols.items()):
        if symbol.kind == "class":
            continue
        if not qualname.startswith(entry_prefixes):
            continue
        if not symbol.is_public:
            continue
        # Dunder methods are internal protocol surface, not boundaries.
        if symbol.name.startswith("__"):
            continue
        # Methods of private classes are not public entry points.
        if symbol.kind == "method":
            class_qualname = qualname.rsplit(".", 1)[0]
            class_symbol = table.symbols.get(class_qualname)
            if class_symbol is not None and not class_symbol.is_public:
                continue
        module = by_rel.get(symbol.path)
        for name, line in sorted(facts.raises.get(qualname, {}).items()):
            if model.is_taxonomy(name):
                continue
            if name in retryable:
                continue
            if name in SANCTIONED_BUILTINS:
                continue
            if module is not None and (
                module.allows(RULE_EXCEPTION_FLOW, symbol.line)
                or module.allows(RULE_EXCEPTION_FLOW, line)
            ):
                continue
            findings.append(
                Finding(
                    rule=RULE_EXCEPTION_FLOW,
                    path=symbol.path,
                    line=symbol.line,
                    message=(
                        f"public entry point {qualname} can raise {name} "
                        f"(witness near {symbol.path}:{line}) which escapes the "
                        f"repro.errors taxonomy and every declared retryable set"
                    ),
                    scope=f"{qualname}:{name}",
                )
            )
    return findings
