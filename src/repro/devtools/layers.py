"""Layer-boundary checker: the package-dependency DAG, machine-checked.

The platform is layered so knowledge flows one way — storage and
geometry at the bottom, the ``core`` facade above them, user-facing
services on top (see ``docs/static_analysis.md`` for the picture):

* **bottom**    ``errors``, ``geo``, ``imaging``, ``ml``, ``db``
* **mid**       ``features``, ``index``, ``datasets``, ``crowd``
* **facade**    ``core``
* **top**       ``api``, ``edge``, ``analysis``
* **anywhere**  ``obs`` (observability is deliberately layer-free;
  this covers all of its submodules — ``metrics``, ``tracing``,
  ``logging``, ``profiling``, ``slo`` — since the DAG is
  package-granular)

``check_layers`` extracts *every* import edge — including lazy
function-local imports — and fails any edge not implied by the declared
DAG (direct dependencies, transitively closed).  The root facade
modules (``repro/__init__.py``, ``repro/__main__.py``) re-export from
everywhere by design and are exempt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.findings import Finding, SourceModule

RULE_LAYER = "layer-boundary"


@dataclass(frozen=True)
class LayerConfig:
    """The allowed package-dependency DAG for one top-level package."""

    top_package: str
    deps: dict[str, frozenset[str]]
    universal: frozenset[str] = frozenset()
    facade_modules: frozenset[str] = frozenset({"__init__", "__main__"})

    def closure(self) -> dict[str, frozenset[str]]:
        """Transitive closure of :attr:`deps` — a package may import
        anything beneath it, not just its direct dependencies."""
        closed: dict[str, frozenset[str]] = {}

        def resolve(pkg: str, trail: tuple[str, ...]) -> frozenset[str]:
            if pkg in closed:
                return closed[pkg]
            if pkg in trail:
                cycle = " -> ".join((*trail[trail.index(pkg):], pkg))
                raise ValueError(f"layer DAG has a cycle: {cycle}")
            reachable = set(self.deps.get(pkg, frozenset()))
            for dep in tuple(reachable):
                reachable |= resolve(dep, (*trail, pkg))
            closed[pkg] = frozenset(reachable)
            return closed[pkg]

        for pkg in self.deps:
            resolve(pkg, ())
        return closed


#: The shipped platform's DAG.  ``crowd`` sits mid-layer (campaign and
#: coverage logic over geometry only) so the ``api`` top layer may
#: consume it; ``resilience`` sits just above ``errors`` so every
#: failure surface (db persistence, edge transfers, the API client) can
#: wrap itself in policies; ``devtools`` is intentionally isolated.
DEFAULT_LAYER_CONFIG = LayerConfig(
    top_package="repro",
    deps={
        "errors": frozenset(),
        "obs": frozenset(),
        "devtools": frozenset(),
        "resilience": frozenset({"errors"}),
        "geo": frozenset({"errors"}),
        "imaging": frozenset({"errors"}),
        "ml": frozenset({"errors"}),
        "db": frozenset({"errors", "resilience"}),
        "index": frozenset({"errors", "geo"}),
        "datasets": frozenset({"errors", "geo", "imaging"}),
        "features": frozenset({"errors", "imaging", "ml"}),
        "crowd": frozenset({"errors", "geo"}),
        "core": frozenset(
            {"errors", "db", "index", "datasets", "features", "geo", "imaging", "ml"}
        ),
        "api": frozenset(
            {"errors", "core", "crowd", "db", "geo", "imaging", "ml", "resilience"}
        ),
        "edge": frozenset({"errors", "ml", "resilience"}),
        "shard": frozenset(
            {"errors", "core", "db", "geo", "index", "resilience"}
        ),
        "analysis": frozenset(
            {"errors", "core", "datasets", "features", "geo", "imaging", "ml"}
        ),
    },
    universal=frozenset({"obs"}),
)


@dataclass(frozen=True, slots=True)
class ImportEdge:
    """One import statement crossing package boundaries."""

    target_pkg: str
    imported: str  # dotted module/name as written
    line: int


def _package_of(rel_to_root: tuple[str, ...]) -> str | None:
    """Package name of a module path relative to the scanned root;
    ``None`` for root facade modules (handled by the caller)."""
    if len(rel_to_root) == 1:
        return rel_to_root[0].removesuffix(".py")
    return rel_to_root[0]


def _module_dotted(config: LayerConfig, rel_to_root: tuple[str, ...]) -> str:
    parts = [config.top_package, *rel_to_root]
    parts[-1] = parts[-1].removesuffix(".py")
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def iter_import_edges(
    module: SourceModule,
    config: LayerConfig,
    rel_to_root: tuple[str, ...],
) -> list[ImportEdge]:
    """Every cross-package import edge in one module, lazy imports
    included (``ast.walk`` descends into function bodies)."""
    top = config.top_package
    prefix = f"{top}."
    own_dotted = _module_dotted(config, rel_to_root)
    known = set(config.deps) | set(config.universal)
    edges: list[ImportEdge] = []

    def add(dotted: str, line: int) -> None:
        if dotted == top:
            edges.append(ImportEdge("<root>", dotted, line))
            return
        if not dotted.startswith(prefix):
            return  # stdlib / third-party: out of scope
        target = dotted[len(prefix):].split(".", 1)[0]
        edges.append(ImportEdge(target, dotted, line))

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                add(alias.name, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = own_dotted.split(".")
                # "from . import x" drops 1 segment, "from .. import x" 2, ...
                if node.level > len(base_parts):
                    continue
                base = base_parts[: len(base_parts) - node.level]
                stem = ".".join(base + ([node.module] if node.module else []))
            else:
                stem = node.module or ""
            if not stem:
                continue
            if stem == top:
                # "from repro import X": X may be a subpackage (edge to
                # X) or a facade attribute (edge to the root facade).
                for alias in node.names:
                    if alias.name in known:
                        add(f"{prefix}{alias.name}", node.lineno)
                    else:
                        edges.append(ImportEdge("<root>", f"{top}.{alias.name}", node.lineno))
            else:
                add(stem, node.lineno)
    return edges


def check_layers(
    modules: list[SourceModule],
    root: Path,
    config: LayerConfig = DEFAULT_LAYER_CONFIG,
) -> list[Finding]:
    """Layer-boundary findings for every module under ``root``."""
    closure = config.closure()
    findings: list[Finding] = []
    for module in modules:
        try:
            rel = module.path.relative_to(root).parts
        except ValueError:
            continue
        if len(rel) == 1 and rel[0].removesuffix(".py") in config.facade_modules:
            continue  # the root facade re-exports everything by design
        src_pkg = _package_of(rel)
        if src_pkg is None:
            continue
        if src_pkg not in config.deps:
            findings.append(
                Finding(
                    rule=RULE_LAYER,
                    path=module.rel_path,
                    line=1,
                    message=(
                        f"package {src_pkg!r} is not declared in the layer DAG; "
                        f"add it to repro.devtools.layers.DEFAULT_LAYER_CONFIG"
                    ),
                    scope="<undeclared>",
                )
            )
            continue
        allowed = closure[src_pkg] | config.universal | {src_pkg}
        for edge in iter_import_edges(module, config, rel):
            if module.allows(RULE_LAYER, edge.line):
                continue
            if edge.target_pkg == "<root>":
                findings.append(
                    Finding(
                        rule=RULE_LAYER,
                        path=module.rel_path,
                        line=edge.line,
                        message=(
                            f"{src_pkg} imports the {config.top_package} root facade "
                            f"({edge.imported}); import the concrete subpackage instead"
                        ),
                        scope="<root>",
                    )
                )
                continue
            if edge.target_pkg not in allowed:
                ordered = ", ".join(sorted(allowed - {src_pkg})) or "nothing"
                findings.append(
                    Finding(
                        rule=RULE_LAYER,
                        path=module.rel_path,
                        line=edge.line,
                        message=(
                            f"layer violation: {src_pkg} -> {edge.target_pkg} "
                            f"({edge.imported}); {src_pkg} may only import {ordered}"
                        ),
                        scope=edge.target_pkg,
                    )
                )
    return findings
