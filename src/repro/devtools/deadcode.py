"""Dead-code pass: public symbols nobody references are debt.

Reuses the whole-program symbol table: a *module-level* public function
or class defined under the scanned package is "dead" when no other
module — in the package itself or in the repo's ``examples/`` tree —
references its name.  Tests and benchmarks deliberately do **not**
keep a symbol alive: something only a test calls is test scaffolding
living in ``src``, which is exactly what this pass should surface.

References are counted by name, conservatively: any ``Name`` load,
attribute access (``mod.symbol``), or ``from x import symbol`` outside
the defining statement counts, including re-exports in package
``__init__`` files (a symbol lifted into a package namespace is
published API).  Name-level matching can keep a dead symbol alive via
an unrelated same-named use — the pass errs quiet, never noisy.

Intentional-but-unreferenced API surface gets an inline
``# devtools: allow[dead-code] — <why>`` on its ``def``/``class`` line.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.devtools.callgraph import SymbolTable
from repro.devtools.findings import Finding, SourceModule, collect_modules

RULE_DEAD_CODE = "dead-code"

#: Names that frameworks or the import system call implicitly.
_IMPLICIT = frozenset({"main"})


def _referenced_names(tree: ast.Module) -> set[str]:
    """Every simple name this module mentions outside ``__all__``."""
    names: set[str] = set()
    skip_strings: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    for sub in ast.walk(node.value):
                        skip_strings.add(id(sub))
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.name.rsplit(".", 1)[-1])
                if alias.asname:
                    names.add(alias.asname)
    return names


def check_dead_code(
    table: SymbolTable,
    modules: list[SourceModule],
    repo_root: Path | None = None,
) -> list[Finding]:
    """``dead-code`` findings for unreferenced public top-level symbols."""
    # Name -> referencing module rel_paths (the defining module's own
    # references are filtered per symbol below).
    references: dict[str, set[str]] = {}
    reference_modules: list[SourceModule] = list(modules)
    if repo_root is not None:
        examples = repo_root / "examples"
        if examples.is_dir():
            reference_modules += collect_modules(examples, repo_root=repo_root)
    for module in reference_modules:
        for name in _referenced_names(module.tree):
            references.setdefault(name, set()).add(module.rel_path)

    by_rel: dict[str, SourceModule] = {m.rel_path: m for m in modules}
    findings: list[Finding] = []
    for qualname, symbol in sorted(table.symbols.items()):
        if symbol.kind == "method":
            continue  # methods live and die with their class
        if not symbol.is_public or symbol.name in _IMPLICIT:
            continue
        if symbol.name.startswith("__"):
            continue
        referencing = references.get(symbol.name, set()) - {symbol.path}
        if referencing:
            continue
        module = by_rel.get(symbol.path)
        if module is not None:
            # The defining module may legitimately use its own symbol
            # (decorator application, registry append); those uses are
            # internal wiring, not API consumption — but a symbol the
            # defining module itself calls is not dead either.
            own_uses = _own_use_count(module.tree, symbol.name, symbol.line)
            if own_uses:
                continue
            if module.allows(RULE_DEAD_CODE, symbol.line):
                continue
        findings.append(
            Finding(
                rule=RULE_DEAD_CODE,
                path=symbol.path,
                line=symbol.line,
                message=(
                    f"public {symbol.kind} {qualname} is never referenced from "
                    f"src or examples — delete it, underscore it, or mark "
                    f"intentional API with an allow comment"
                ),
                scope=qualname,
            )
        )
    return findings


def _own_use_count(tree: ast.Module, name: str, def_line: int) -> int:
    """Uses of ``name`` inside its own module, excluding the definition."""
    count = 0
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == name and isinstance(node.ctx, ast.Load):
            count += 1
        elif isinstance(node, ast.Attribute) and node.attr == name:
            count += 1
    return count
