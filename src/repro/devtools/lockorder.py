"""Static lock-order analysis: no cycles, no blocking calls under locks.

Deadlocks in this codebase would come from two shapes:

1. **Order inversion** — thread A acquires lock L then M, thread B
   acquires M then L.  We extract every lock the project creates
   (``threading.Lock``/``RLock`` assigned to a module global or a
   ``self`` attribute), walk each function recording which locks are
   held when another is acquired — including *interprocedurally*, via a
   may-acquire fixpoint over the call graph — and fail on any cycle in
   the resulting acquisition graph.  Lock identity is the *creation
   site* (``repro.obs.metrics.Gauge._lock``), so every instance of a
   class shares one node and instance-level self-nesting is ignored
   (that is reentrancy, RLock's job, not ordering).

2. **Lock held across blocking work** — holding any lock across file
   IO, a sleep, or a resilience-policy ``call``/``execute`` (which may
   retry and back off for seconds) turns a micro-critical-section into
   a system-wide stall.  We flag direct blocking calls under a lock and
   calls to project functions that (transitively) reach one.

Both shapes report under the single rule id ``lock-order`` and honour
``# devtools: allow[lock-order]`` for the rare deliberate case (e.g. a
lock whose entire purpose is serialising writes to one file handle).

The runtime companion is :mod:`repro.devtools.sanitizers`, which checks
the same two properties against *actual* acquisition orders under
``REPRO_SANITIZE=1 pytest``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.callgraph import (
    CallGraph,
    ModuleInfo,
    SymbolTable,
    iter_functions,
    resolve_call,
    resolve_locals,
)
from repro.devtools.findings import Finding, SourceModule

RULE_LOCK_ORDER = "lock-order"

#: Call constructors that create a lock object.
_LOCK_CTORS = frozenset({"threading.Lock", "threading.RLock", "Lock", "RLock"})

#: Attribute names whose call is blocking regardless of receiver.
_BLOCKING_ATTRS = frozenset(
    {
        "sleep", "write", "flush", "write_text", "write_bytes", "read_text",
        "read_bytes", "replace", "unlink", "rename", "urlopen", "sendall",
        "recv", "connect", "join",
    }
)

def _is_string_op(node: ast.Call) -> bool:
    """String manipulation that shares a name with a blocking call:
    ``", ".join(...)`` (vs ``Thread.join``) and ``s.replace("a", "b")``
    (vs the ``Path.replace`` rename)."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if (
        func.attr == "join"
        and isinstance(func.value, ast.Constant)
        and isinstance(func.value.value, str)
    ):
        return True
    return func.attr == "replace" and any(
        isinstance(arg, ast.Constant) and isinstance(arg.value, str)
        for arg in node.args
    )


#: Project symbols whose call blocks (policies that retry/back off).
_BLOCKING_SYMBOL_SUFFIXES = (
    ".resilience.policies.execute",
    ".resilience.policies.Retry.call",
    ".resilience.policies.CircuitBreaker.call",
    ".resilience.policies.Fallback.call",
    ".resilience.clock.SystemClock.sleep",
)


@dataclass(frozen=True, slots=True)
class LockEdge:
    """``held`` was held while ``acquired`` was (or may be) acquired."""

    held: str
    acquired: str
    path: str
    line: int
    via: str  # "" for a direct nested ``with``; callee qualname otherwise


@dataclass(slots=True)
class LockGraph:
    """The whole-program acquisition graph, for passes/docs/tests."""

    locks: set[str] = field(default_factory=set)
    edges: dict[tuple[str, str], LockEdge] = field(default_factory=dict)

    def add(self, edge: LockEdge) -> None:
        if edge.held == edge.acquired:
            return  # reentrancy, not ordering
        self.edges.setdefault((edge.held, edge.acquired), edge)

    def successors(self, lock: str) -> list[str]:
        return sorted(dst for (src, dst) in self.edges if src == lock)

    def cycles(self) -> list[list[str]]:
        """Strongly connected components with more than one lock."""
        adjacency: dict[str, list[str]] = {lock: [] for lock in self.locks}
        for src, dst in self.edges:
            adjacency.setdefault(src, []).append(dst)
            adjacency.setdefault(dst, [])
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = 0
        sccs: list[list[str]] = []

        def strongconnect(start: str) -> None:
            nonlocal counter
            work: list[tuple[str, int]] = [(start, 0)]
            while work:
                node, child_index = work[-1]
                if child_index == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                children = adjacency[node]
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if child not in index:
                        work[-1] = (node, child_index)
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))

        for node in sorted(adjacency):
            if node not in index:
                strongconnect(node)
        return sccs


@dataclass(slots=True)
class _LockIndex:
    """Where every lock in the project is defined."""

    #: class qualname -> {attr name} holding a lock
    class_attrs: dict[str, set[str]] = field(default_factory=dict)
    #: module dotted -> {global name} holding a lock
    module_globals: dict[str, set[str]] = field(default_factory=dict)


def _is_lock_ctor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    parts: list[str] = []
    func: ast.expr = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
    dotted = ".".join(reversed(parts))
    return dotted in _LOCK_CTORS


def _index_locks(table: SymbolTable) -> _LockIndex:
    index = _LockIndex()
    for dotted, info in table.modules.items():
        for node in info.module.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_lock_ctor(node.value):
                    index.module_globals.setdefault(dotted, set()).add(target.id)
            elif isinstance(node, ast.ClassDef):
                class_qualname = f"{dotted}.{node.name}"
                for stmt in ast.walk(node):
                    value = None
                    target_node: ast.expr | None = None
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        target_node, value = stmt.targets[0], stmt.value
                    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                        target_node, value = stmt.target, stmt.value
                    if (
                        value is not None
                        and target_node is not None
                        and isinstance(target_node, ast.Attribute)
                        and isinstance(target_node.value, ast.Name)
                        and target_node.value.id in ("self", "cls")
                        and _is_lock_ctor(value)
                    ):
                        index.class_attrs.setdefault(class_qualname, set()).add(
                            target_node.attr
                        )
    return index


def _class_lock_attr(
    table: SymbolTable, index: _LockIndex, class_qualname: str, attr: str
) -> str | None:
    """Resolve ``self.<attr>`` to the (base-)class that defines it."""
    seen: set[str] = set()
    stack = [class_qualname]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        if attr in index.class_attrs.get(current, set()):
            return f"{current}.{attr}"
        stack.extend(table.class_bases.get(current, ()))
    return None


def _resolve_lock(
    table: SymbolTable,
    index: _LockIndex,
    info: ModuleInfo,
    class_context: str | None,
    expr: ast.expr,
) -> str | None:
    """Lock identity of a ``with`` context expression, or None."""
    parts: list[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    parts.reverse()

    if isinstance(node, ast.Name):
        base = node.id
        if base in ("self", "cls") and class_context is not None and len(parts) == 1:
            found = _class_lock_attr(table, index, class_context, parts[0])
            if found is not None:
                return found
            if "lock" in parts[0].lower():
                return f"{class_context}.{parts[0]}"
            return None
        if not parts:
            if base in index.module_globals.get(info.dotted, set()):
                return f"{info.dotted}.{base}"
            if base in info.imports:
                target = info.imports[base]
                head, _, name = target.rpartition(".")
                if name in index.module_globals.get(head, set()):
                    return target
            return None
        if base in info.imports and len(parts) == 1:
            target_module = info.imports[base]
            if parts[0] in index.module_globals.get(target_module, set()):
                return f"{target_module}.{parts[0]}"
    return None


def _is_blocking_symbol(qualname: str) -> bool:
    return any(qualname.endswith(suffix) for suffix in _BLOCKING_SYMBOL_SUFFIXES)


def _raw_dotted(expr: ast.expr) -> str:
    parts: list[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass(frozen=True, slots=True)
class _HeldCall:
    """One call made while at least one lock was held."""

    caller: str
    held: tuple[str, ...]
    callee: str | None
    raw: str
    module: SourceModule
    line: int
    #: ``", ".join(...)``-style string ops that merely share a name
    #: with a blocking call — never blocking, whatever the attr says.
    str_op: bool = False


@dataclass(slots=True)
class LockAnalysis:
    """Everything the static pass extracted, reusable by docs/tests."""

    graph: LockGraph
    #: function qualname -> locks it may (transitively) acquire
    may_acquire: dict[str, frozenset[str]]
    #: function qualname -> blocking raw call that makes it blocking ("" if none)
    may_block: dict[str, str]
    held_calls: list[_HeldCall] = field(default_factory=list)


def analyze_locks(table: SymbolTable, graph: CallGraph) -> LockAnalysis:
    """Build the acquisition graph and blocking facts for the project."""
    index = _index_locks(table)
    lock_graph = LockGraph()
    for dotted, names in index.module_globals.items():
        lock_graph.locks.update(f"{dotted}.{name}" for name in names)
    for class_qualname, attrs in index.class_attrs.items():
        lock_graph.locks.update(f"{class_qualname}.{attr}" for attr in attrs)

    direct_acquires: dict[str, set[str]] = {}
    direct_blocking: dict[str, str] = {}
    held_calls: list[_HeldCall] = []

    for info, class_context, qualname, fn in iter_functions(table):
        locals_map = resolve_locals(table, info, class_context, fn)
        acquires = direct_acquires.setdefault(qualname, set())

        def visit(node: ast.AST, held: tuple[str, ...]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                current = held
                for item in node.items:
                    visit(item.context_expr, current)
                    lock = _resolve_lock(
                        table, index, info, class_context, item.context_expr
                    )
                    if lock is not None:
                        acquires.add(lock)
                        for holder in current:
                            lock_graph.add(
                                LockEdge(
                                    held=holder,
                                    acquired=lock,
                                    path=info.module.rel_path,
                                    line=item.context_expr.lineno,
                                    via="",
                                )
                            )
                        current = current + (lock,)
                for stmt in node.body:
                    visit(stmt, current)
                return
            if isinstance(node, ast.Call):
                callee = resolve_call(table, info, class_context, node.func, locals_map)
                if callee is not None and table.is_class(callee):
                    callee = table.method_on(callee, "__init__")
                raw = _raw_dotted(node.func)
                str_op = _is_string_op(node) or raw == "os.path.join"
                if held:
                    held_calls.append(
                        _HeldCall(
                            caller=qualname,
                            held=held,
                            callee=callee,
                            raw=raw,
                            module=info.module,
                            line=node.lineno,
                            str_op=str_op,
                        )
                    )
                attr = raw.rsplit(".", 1)[-1] if raw else ""
                if (
                    not str_op
                    and (
                        attr in _BLOCKING_ATTRS
                        or raw == "open"
                        or (callee is not None and _is_blocking_symbol(callee))
                    )
                    and qualname not in direct_blocking
                ):
                    direct_blocking[qualname] = raw or "<call>"
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in fn.body:
            visit(stmt, ())

    # May-acquire fixpoint over the call graph.
    may_acquire: dict[str, set[str]] = {
        qualname: set(locks) for qualname, locks in direct_acquires.items()
    }
    changed = True
    while changed:
        changed = False
        for caller in list(may_acquire):
            combined = may_acquire[caller]
            before = len(combined)
            for callee in graph.callees(caller):
                combined |= may_acquire.get(callee, set())
            if len(combined) != before:
                changed = True

    # May-block fixpoint (witness = the raw blocking call reached).
    may_block: dict[str, str] = dict(direct_blocking)
    changed = True
    while changed:
        changed = False
        for info, class_context, qualname, _fn in iter_functions(table):
            if qualname in may_block:
                continue
            for callee in graph.callees(qualname):
                witness = may_block.get(callee)
                if witness:
                    may_block[qualname] = f"{callee.rsplit('.', 1)[-1]} -> {witness}"
                    changed = True
                    break

    # Interprocedural edges: a call under lock L to a function that may
    # acquire M adds L -> M.
    for call in held_calls:
        if call.callee is None:
            continue
        for acquired in may_acquire.get(call.callee, set()):
            for holder in call.held:
                lock_graph.add(
                    LockEdge(
                        held=holder,
                        acquired=acquired,
                        path=call.module.rel_path,
                        line=call.line,
                        via=call.callee,
                    )
                )

    return LockAnalysis(
        graph=lock_graph,
        may_acquire={q: frozenset(s) for q, s in may_acquire.items()},
        may_block=may_block,
        held_calls=held_calls,
    )


def check_lock_order(
    table: SymbolTable,
    graph: CallGraph,
    modules: list[SourceModule],
    analysis: LockAnalysis | None = None,
) -> list[Finding]:
    """``lock-order`` findings: acquisition cycles and blocking-under-lock."""
    facts = analysis if analysis is not None else analyze_locks(table, graph)
    by_rel: dict[str, SourceModule] = {m.rel_path: m for m in modules}
    findings: list[Finding] = []

    for cycle in facts.graph.cycles():
        witnesses = [
            edge
            for (src, dst), edge in sorted(facts.graph.edges.items())
            if src in cycle and dst in cycle
        ]
        witness = witnesses[0] if witnesses else None
        path = witness.path if witness else "<unknown>"
        line = witness.line if witness else 0
        module = by_rel.get(path)
        if module is not None and module.allows(RULE_LOCK_ORDER, line):
            continue
        detail = "; ".join(
            f"{e.held.rsplit('.', 1)[-1]} -> {e.acquired.rsplit('.', 1)[-1]} "
            f"at {e.path}:{e.line}" + (f" via {e.via}" if e.via else "")
            for e in witnesses[:4]
        )
        findings.append(
            Finding(
                rule=RULE_LOCK_ORDER,
                path=path,
                line=line,
                message=(
                    f"lock acquisition cycle between {', '.join(cycle)} — "
                    f"threads taking these in different orders can deadlock "
                    f"({detail})"
                ),
                scope="cycle:" + "|".join(cycle),
            )
        )

    seen: set[tuple[str, str, str]] = set()
    for call in facts.held_calls:
        if call.str_op:
            continue
        blocking: str | None = None
        attr = call.raw.rsplit(".", 1)[-1] if call.raw else ""
        if attr in _BLOCKING_ATTRS or call.raw == "open":
            blocking = call.raw
        elif call.callee is not None and _is_blocking_symbol(call.callee):
            blocking = call.callee
        elif call.callee is not None:
            witness = facts.may_block.get(call.callee)
            if witness:
                blocking = f"{call.raw} ({witness})"
        if blocking is None:
            continue
        key = (call.caller, call.held[-1], blocking)
        if key in seen:
            continue
        seen.add(key)
        if call.module.allows(RULE_LOCK_ORDER, call.line):
            continue
        findings.append(
            Finding(
                rule=RULE_LOCK_ORDER,
                path=call.module.rel_path,
                line=call.line,
                message=(
                    f"{call.caller.rsplit('.', 2)[-2]}.{call.caller.rsplit('.', 1)[-1]} "
                    f"holds {call.held[-1]} across blocking call {blocking} — "
                    f"release the lock before IO/sleep/policy calls"
                ),
                scope=f"{call.caller}:{blocking}",
            )
        )
    return findings
