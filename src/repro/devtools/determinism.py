"""Determinism lint: no unseeded entropy or wall-clock on result paths.

Bench trajectories (PR 3) and chaos campaigns (PR 4) are only
comparable because every run is a pure function of its seeds; the
platform funnels time through the ``resilience.Clock`` seam and
randomness through explicitly seeded ``random.Random``/
``numpy.random.default_rng(seed)`` instances.  This lint flags the
escape hatches:

* wall-clock reads — ``time.time``/``time.time_ns``/``time.monotonic``/
  ``time.perf_counter``, ``datetime.now``/``utcnow``/``today``;
* process-global or unseeded RNG — ``random.<fn>()`` on the module
  (``random.Random(seed)`` is the sanctioned form), ``np.random.<fn>``
  globals, ``default_rng()`` with no arguments;
* raw entropy — ``os.urandom``, ``uuid.uuid4``, anything ``secrets.*``;
* iteration over unordered sets — ``for x in {...}``, ``for x in
  set(...)``, and comprehensions over either, unless wrapped in
  ``sorted(...)`` (set *membership* is fine; set *order* is not).

Modules matching :data:`DEFAULT_EXEMPT_GLOBS` (the observability layer,
whose whole job is reading real clocks, and the Clock seam itself) are
skipped; elsewhere, ``# devtools: allow[determinism]`` marks the
sanctioned sites.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from repro.devtools.findings import Finding, SourceModule, scope_of

RULE_DETERMINISM = "determinism"

#: Paths where wall-clock use is the point, not a bug.
DEFAULT_EXEMPT_GLOBS: tuple[str, ...] = (
    "*/repro/obs/*.py",
    "*/repro/resilience/clock.py",
    "*/repro/devtools/*.py",
)

_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    }
)

_ENTROPY = frozenset({"os.urandom", "uuid.uuid4", "uuid.uuid1"})

#: random-module functions that hit the process-global RNG.
_GLOBAL_RANDOM = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "sample", "shuffle", "gauss", "normalvariate", "betavariate",
        "expovariate", "triangular", "seed", "getrandbits",
    }
)


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _classify_call(node: ast.Call) -> str | None:
    """A human-readable reason this call is nondeterministic, or None."""
    dotted = _dotted(node.func)
    if not dotted:
        return None
    if dotted in _WALL_CLOCK or dotted.endswith((".datetime.now", ".datetime.utcnow")):
        return f"wall-clock read {dotted}() — route timing through resilience.Clock"
    if dotted in _ENTROPY or dotted.startswith("secrets."):
        return f"raw entropy {dotted}() — derive values from a seeded RNG"
    head, _, tail = dotted.rpartition(".")
    if head == "random" and tail in _GLOBAL_RANDOM:
        return (
            f"process-global RNG {dotted}() — use an explicitly seeded "
            f"random.Random(seed) instance"
        )
    if head in ("np.random", "numpy.random") and tail != "default_rng":
        return (
            f"process-global NumPy RNG {dotted}() — use "
            f"np.random.default_rng(seed)"
        )
    if tail == "default_rng" and not node.args and not node.keywords:
        return "default_rng() without a seed draws OS entropy — pass a seed"
    return None


def _is_unordered_iterable(node: ast.expr) -> bool:
    """Set literal / ``set(...)`` / set-comprehension — unordered."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else ""
        if name in ("set", "frozenset"):
            return True
        if name in ("sorted", "list", "tuple", "min", "max", "sum", "len"):
            return False
        attr = func.attr if isinstance(func, ast.Attribute) else ""
        if attr in ("union", "intersection", "difference", "symmetric_difference"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # set algebra: a | b, a & b, a - b, a ^ b over set operands —
        # only flag when an operand is itself visibly a set.
        return _is_unordered_iterable(node.left) or _is_unordered_iterable(node.right)
    return False


def check_determinism(
    modules: list[SourceModule],
    exempt_globs: tuple[str, ...] = DEFAULT_EXEMPT_GLOBS,
    scope_cache: dict | None = None,
) -> list[Finding]:
    """``determinism`` findings across ``modules``."""
    cache: dict = scope_cache if scope_cache is not None else {}
    findings: list[Finding] = []
    for module in modules:
        posix = module.path.as_posix()
        if any(fnmatch(posix, glob) for glob in exempt_globs):
            continue

        def report(line: int, message: str, token: str) -> None:
            if module.allows(RULE_DETERMINISM, line):
                return
            findings.append(
                Finding(
                    rule=RULE_DETERMINISM,
                    path=module.rel_path,
                    line=line,
                    message=message,
                    scope=f"{scope_of(module, line, cache)}:{token}",
                )
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                reason = _classify_call(node)
                if reason is not None:
                    report(node.lineno, reason, _dotted(node.func))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_unordered_iterable(node.iter):
                    report(
                        node.iter.lineno,
                        "iteration over an unordered set — wrap in sorted(...) "
                        "so result order is reproducible",
                        "set-iteration",
                    )
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                # (a SetComp over a set yields a set again — no order leak)
                for gen in node.generators:
                    if _is_unordered_iterable(gen.iter):
                        report(
                            gen.iter.lineno,
                            "comprehension over an unordered set — wrap in "
                            "sorted(...) so result order is reproducible",
                            "set-iteration",
                        )
    return findings
