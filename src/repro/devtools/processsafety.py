"""Process-safety pass: classify module-global state for scale-out.

A multiprocessing worker pool forks/spawns the interpreter, so every
module-level mutable object and process-wide singleton silently becomes
*per-process* state.  Some of that is fine (locks guard per-process
resources), some must be merged back at the coordinator (metrics
counters, the hot-query tracker), and anything unclassified is a
correctness hazard: two workers each mutate their own copy and the
results silently diverge.

This pass finds every module-global mutable that is *referenced by a
function reachable from the data-plane roots* (default:
``TVDP.execute``, which fans out to all six query families), classifies
it with :func:`classify`, and emits the result as a deterministic
manifest the future shard executor will consume
(``tools/shard_safety_manifest.json``):

* ``worker-local-ok`` — each process keeps its own (locks, loggers,
  circuit breakers guarding process-local resources);
* ``must-merge-at-coordinator`` — worker copies hold partial state the
  coordinator has to combine (counters sum, histograms merge buckets,
  hot-query tables merge by count, span streams concatenate);
* anything else is an ``unsafe`` **finding** — fix it, classify it by
  extending the rules here, or sanction it with an inline
  ``# devtools: allow[process-safety]`` comment (allowed globals are
  excluded from the manifest entirely).

The checked-in manifest is drift-gated: when the computed manifest
differs from the file, the pass fails until it is regenerated with
``python -m repro.devtools.check --write-manifest``.
"""

from __future__ import annotations

import ast
import json
from fnmatch import fnmatch

from typing import Callable

from repro.devtools.callgraph import CallGraph, ModuleInfo, SymbolTable, iter_functions
from repro.devtools.concurrency import _MUTATING_METHODS, _is_mutable_value
from repro.devtools.findings import Finding, SourceModule

RULE = "process-safety"

MANIFEST_SCHEMA = 1

#: Qualname patterns whose reachable closure is "the data plane".
#: ``execute`` dispatches the six families through a dict of bound
#: methods — an indirect call the callgraph cannot follow — so the
#: family runners are roots in their own right.
DEFAULT_DATA_PLANE_ROOTS: tuple[str, ...] = (
    "*.core.platform.TVDP.execute",
    "*.core.platform.TVDP._run_*",
)

_LOCK_CTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.local",
    }
)

#: Project class name -> (classification, merge strategy, reason).
_CLASS_RULES: dict[str, tuple[str, str, str]] = {
    "Counter": (
        "must-merge-at-coordinator",
        "sum",
        "monotone counter — the coordinator sums worker deltas",
    ),
    "Gauge": (
        "must-merge-at-coordinator",
        "last-write",
        "point-in-time gauge — the coordinator keeps the freshest value",
    ),
    "Histogram": (
        "must-merge-at-coordinator",
        "bucket-sum",
        "latency histogram — the coordinator sums per-bucket counts",
    ),
    "MetricsRegistry": (
        "must-merge-at-coordinator",
        "per-metric",
        "process-wide metrics registry — merge each metric by its own kind",
    ),
    "HotQueryTracker": (
        "must-merge-at-coordinator",
        "top-k-by-count",
        "hot-query shape table — merge worker tables, re-rank by count",
    ),
    "Tracer": (
        "must-merge-at-coordinator",
        "concat",
        "span stream — the coordinator concatenates worker traces",
    ),
    "SpanRing": (
        "must-merge-at-coordinator",
        "concat",
        "span ring buffer — the coordinator concatenates worker traces",
    ),
    "SlowSpanLog": (
        "must-merge-at-coordinator",
        "top-k-by-duration",
        "slow-span exemplars — merge worker logs, keep the global worst",
    ),
    "UsageTable": (
        "must-merge-at-coordinator",
        "charge-sum",
        "per-principal resource charges — workers pickle their tables "
        "back and the coordinator sums charges via UsageTable.merge",
    ),
    "JsonlExporter": (
        "must-merge-at-coordinator",
        "concat",
        "trace export stream — workers append to per-process files",
    ),
    "WindowSet": (
        "must-merge-at-coordinator",
        "bucket-sum",
        "rolling latency windows — merge per-bucket histograms",
    ),
    "Logger": (
        "worker-local-ok",
        "none",
        "loggers write process-local streams",
    ),
    "CircuitBreaker": (
        "worker-local-ok",
        "none",
        "circuit breakers guard process-local resources",
    ),
}


def classify(
    name: str, type_qualname: str | None, ctor: str, kind: str
) -> tuple[str, str, str] | None:
    """``(classification, merge, reason)`` for one module global, or
    ``None`` when no rule matches (an *unsafe* finding)."""
    if ctor in _LOCK_CTORS:
        return (
            "worker-local-ok",
            "none",
            "synchronisation primitive — each process creates and guards its own",
        )
    if ctor == "logging.getLogger":
        return _CLASS_RULES["Logger"]
    if type_qualname:
        rule = _CLASS_RULES.get(type_qualname.rsplit(".", 1)[-1])
        if rule is not None:
            return rule
    if name == "_breakers":
        return _CLASS_RULES["CircuitBreaker"]
    if name.lstrip("_").isupper() and kind == "container":
        # Only while actually read-only: a mutated container arrives
        # here with kind="mutated-container" and falls through to the
        # unsafe finding regardless of its name.
        return (
            "worker-local-ok",
            "none",
            "read-only constant (UPPER_CASE convention) — runtime mutation "
            "is gated by the module-mutable-state lint",
        )
    return None


def _dotted_of(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def expand_roots(table: SymbolTable, patterns: tuple[str, ...]) -> tuple[str, ...]:
    """Qualnames in ``table`` matching any root pattern, sorted."""
    return tuple(
        sorted(
            qualname
            for qualname in table.symbols
            if any(fnmatch(qualname, pattern) for pattern in patterns)
        )
    )


def _module_global_candidates(
    info: ModuleInfo, resolved_ctor: Callable[[str], str]
) -> list[tuple[str, str | None, str, str, int]]:
    """``(name, type_qualname, ctor, kind, line)`` for each module-level
    assign that creates mutable / stateful-object globals."""
    out: list[tuple[str, str | None, str, str, int]] = []
    for node in info.module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not isinstance(target, ast.Name) or target.id.startswith("__"):
            continue
        name = target.id
        type_qualname = info.var_types.get(name)
        ctor = ""
        kind = ""
        if isinstance(value, ast.Call):
            ctor = resolved_ctor(_dotted_of(value.func))
        if type_qualname is not None:
            kind = "object"
        elif ctor in _LOCK_CTORS or ctor == "logging.getLogger":
            kind = "object"
        elif _is_mutable_value(value):
            kind = "container"
        else:
            continue
        out.append((name, type_qualname, ctor, kind, node.lineno))
    return out


def _names_referenced(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, candidates: set[str]
) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id in candidates:
            used.add(node.id)
        elif isinstance(node, ast.Global):
            used.update(name for name in node.names if name in candidates)
    return used


def _names_mutated(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, candidates: set[str]
) -> set[str]:
    """Candidate globals a function writes to: subscript/attribute
    stores, augmented assigns, deletes, mutating method calls, and
    ``global`` rebinds."""

    def base_name(node: ast.AST) -> str | None:
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    mutated: set[str] = set()
    for node in ast.walk(fn):
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if not isinstance(t, ast.Name)]
        elif isinstance(node, (ast.AugAssign, ast.Delete)):
            targets = node.targets if isinstance(node, ast.Delete) else [node.target]
        elif isinstance(node, ast.Global):
            mutated.update(name for name in node.names if name in candidates)
            continue
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
        ):
            targets = [node.func.value]
        for target in targets:
            name = base_name(target)
            if name in candidates:
                mutated.add(name)
    return mutated


def build_manifest(entries: list[dict], roots: tuple[str, ...]) -> dict:
    """The manifest document (deterministic: entries pre-sorted)."""
    return {
        "schema": MANIFEST_SCHEMA,
        "comment": (
            "Shard-safety classification of module-global state reachable "
            "from the data plane; regenerate with "
            "`python -m repro.devtools.check --write-manifest`."
        ),
        "roots": list(roots),
        "entries": entries,
    }


def render_manifest(manifest: dict) -> str:
    """Canonical byte representation (same tree -> byte-identical file)."""
    return json.dumps(manifest, indent=2, sort_keys=False) + "\n"


def check_process_safety(
    modules: list[SourceModule],
    table: SymbolTable,
    graph: CallGraph,
    root_patterns: tuple[str, ...] = DEFAULT_DATA_PLANE_ROOTS,
    checked_in: dict | None = None,
    manifest_rel: str = "tools/shard_safety_manifest.json",
) -> tuple[list[Finding], dict]:
    """``(findings, computed manifest)`` over the scanned tree."""
    roots = expand_roots(table, root_patterns)
    reachable = graph.reachable(roots)

    # Group the reachable function bodies by defining module.
    fns_by_module: dict[str, list] = {}
    for info, _class_context, qualname, fn in iter_functions(table):
        if qualname in reachable:
            fns_by_module.setdefault(info.dotted, []).append(fn)

    findings: list[Finding] = []
    entries: list[dict] = []
    for dotted in sorted(table.modules):
        info = table.modules[dotted]
        module = info.module

        def resolved_ctor(raw: str, _info: ModuleInfo = info) -> str:
            head, sep, rest = raw.partition(".")
            target = _info.imports.get(head)
            if target is None:
                return raw
            return f"{target}{sep}{rest}" if rest else target

        candidates = _module_global_candidates(info, resolved_ctor)
        if not candidates:
            continue
        names = {name for name, *_ in candidates}
        referenced: set[str] = set()
        mutated: set[str] = set()
        for fn in fns_by_module.get(dotted, []):
            referenced |= _names_referenced(fn, names)
            mutated |= _names_mutated(fn, names)
        for name, type_qualname, ctor, kind, line in candidates:
            if name not in referenced:
                continue
            if module.allows(RULE, line):
                continue
            if kind == "container" and name in mutated:
                kind = "mutated-container"
            rule = classify(name, type_qualname, ctor, kind)
            if rule is None:
                findings.append(
                    Finding(
                        rule=RULE,
                        path=module.rel_path,
                        line=line,
                        message=(
                            f"module-global mutable {name!r} is reachable from the "
                            f"data plane but has no shard-safety classification — "
                            f"worker processes would silently diverge; classify it "
                            f"in repro.devtools.processsafety or refactor it away"
                        ),
                        scope=name,
                    )
                )
                continue
            classification, merge, reason = rule
            entries.append(
                {
                    "module": dotted,
                    "name": name,
                    "type": type_qualname or ctor or kind,
                    "classification": classification,
                    "merge": merge,
                    "reason": reason,
                    "path": module.rel_path,
                    "line": line,
                }
            )

    entries.sort(key=lambda e: (e["module"], e["name"]))
    manifest = build_manifest(entries, roots)

    if checked_in is None:
        if entries:
            findings.append(
                Finding(
                    rule=RULE,
                    path=manifest_rel,
                    line=1,
                    message=(
                        f"shard-safety manifest is missing but {len(entries)} "
                        f"classified global(s) exist — generate it with "
                        f"--write-manifest"
                    ),
                    scope="manifest",
                )
            )
    elif checked_in != manifest:
        findings.append(
            Finding(
                rule=RULE,
                path=manifest_rel,
                line=1,
                message=(
                    "shard-safety manifest is stale (tree and manifest "
                    "disagree) — regenerate it with --write-manifest"
                ),
                scope="manifest",
            )
        )
    return findings, manifest
