"""Picklability pass: can shard-boundary objects cross a process?

The scale-out arc ships index structures, catalog records, and query
specs into multiprocessing workers by pickling them.  This pass walks
the whole-program attribute-type closure from designated *shard-boundary
roots* — every class defined in a module matching
:data:`DEFAULT_PICKLE_ROOT_GLOBS` — and flags instance state that cannot
cross a process boundary:

* synchronisation primitives (``threading.Lock`` and friends),
* live threads and thread-local storage,
* open file handles and sockets,
* lambdas, closures over nested defs, and generators,
* context variables.

A class that defines ``__getstate__`` *and* ``__setstate__`` is treated
as having taken responsibility for its own wire format (the runtime
``tools/pickle_audit.py`` harness verifies the round-trip actually
works); defining only one of the pair is itself a finding, because a
``__getstate__`` that drops a lock without a ``__setstate__`` to
recreate it unpickles into a broken object.

The closure follows the callgraph's inferred ``self.<attr>`` types plus
annotated constructor parameters (``def __init__(self, db: Database)``
with ``self._db = db``), so a root that *holds* an unpicklable object
is reported even when the offending class lives outside the root globs.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from repro.devtools.callgraph import ModuleInfo, SymbolTable, resolve_locals
from repro.devtools.findings import Finding, SourceModule, scope_of

RULE = "picklability"

#: Modules whose classes are shard-boundary roots by default: the index
#: structures, catalog records, and query specs the scale-out executor
#: will pickle into workers.
DEFAULT_PICKLE_ROOT_GLOBS: tuple[str, ...] = (
    "*/index/*.py",
    "*/core/catalog.py",
    "*/core/queries.py",
    "*/shard/partition.py",
)

#: Constructor dotted name (import-resolved) -> what it creates.
_UNPICKLABLE_CALLS: dict[str, str] = {
    "threading.Lock": "a threading lock",
    "threading.RLock": "a reentrant lock",
    "threading.Condition": "a condition variable",
    "threading.Event": "a threading event",
    "threading.Semaphore": "a semaphore",
    "threading.BoundedSemaphore": "a bounded semaphore",
    "threading.Barrier": "a thread barrier",
    "threading.local": "thread-local storage",
    "threading.Thread": "a live thread",
    "open": "an open file handle",
    "io.open": "an open file handle",
    "contextvars.ContextVar": "a context variable",
    "socket.socket": "a socket",
    "sqlite3.connect": "a database connection",
}


def _resolved_dotted(info: ModuleInfo, dotted: str) -> str:
    """Expand the leading import alias of ``dotted`` (``Lock`` written
    under ``from threading import Lock`` -> ``threading.Lock``)."""
    head, sep, rest = dotted.partition(".")
    target = info.imports.get(head)
    if target is None:
        return dotted
    return f"{target}{sep}{rest}" if rest else target


def _dotted_of(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _class_nodes(
    table: SymbolTable,
) -> dict[str, tuple[ModuleInfo, ast.ClassDef]]:
    """Every top-level class in the table, keyed by qualname."""
    out: dict[str, tuple[ModuleInfo, ast.ClassDef]] = {}
    for dotted, info in table.modules.items():
        for node in info.module.tree.body:
            if isinstance(node, ast.ClassDef):
                out[f"{dotted}.{node.name}"] = (info, node)
    return out


def _methods_of(node: ast.ClassDef) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _self_attr_target(stmt: ast.stmt) -> tuple[str, ast.expr | None, int] | None:
    """``(attr, value, line)`` when ``stmt`` is ``self.<attr> = value``."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value = stmt.targets[0], stmt.value
    elif isinstance(stmt, ast.AnnAssign):
        target, value = stmt.target, stmt.value
    else:
        return None
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr, value, stmt.lineno
    return None


def _held_class_types(
    table: SymbolTable, info: ModuleInfo, qualname: str, node: ast.ClassDef
) -> set[str]:
    """Class qualnames an instance of ``qualname`` holds in attributes:
    the table's inferred attr types plus annotated-parameter assigns
    (``self._db = db`` where ``db: Database``)."""
    held = set(table.attr_types.get(qualname, {}).values())
    for method in _methods_of(node):
        locals_map = resolve_locals(table, info, qualname, method)
        for stmt in ast.walk(method):
            found = _self_attr_target(stmt)
            if found is None:
                continue
            _, value, _ = found
            if isinstance(value, ast.Name) and value.id in locals_map:
                held.add(locals_map[value.id])
    return held


def _unpicklable_assigns(
    info: ModuleInfo, node: ast.ClassDef
) -> list[tuple[str, str, int]]:
    """``(attr, description, line)`` for every ``self.<attr> = <bad>``."""
    problems: list[tuple[str, str, int]] = []
    for method in _methods_of(node):
        nested_defs: dict[str, bool] = {}  # name -> contains yield
        for stmt in ast.walk(method):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt is method:
                    continue
                has_yield = any(
                    isinstance(inner, (ast.Yield, ast.YieldFrom))
                    for inner in ast.walk(stmt)
                )
                nested_defs[stmt.name] = has_yield
        for stmt in ast.walk(method):
            found = _self_attr_target(stmt)
            if found is None:
                continue
            attr, value, line = found
            if value is None:
                continue
            if isinstance(value, ast.Call):
                dotted = _resolved_dotted(info, _dotted_of(value.func))
                desc = _UNPICKLABLE_CALLS.get(dotted)
                if desc is not None:
                    problems.append((attr, desc, line))
                elif (
                    isinstance(value.func, ast.Name)
                    and nested_defs.get(value.func.id) is True
                ):
                    problems.append((attr, "a generator", line))
            elif isinstance(value, ast.Lambda):
                problems.append((attr, "a lambda", line))
            elif isinstance(value, ast.GeneratorExp):
                problems.append((attr, "a generator", line))
            elif isinstance(value, ast.Name) and value.id in nested_defs:
                problems.append((attr, "a closure (nested def)", line))
    return problems


def check_picklability(
    modules: list[SourceModule],
    table: SymbolTable,
    root_globs: tuple[str, ...] = DEFAULT_PICKLE_ROOT_GLOBS,
    scope_cache: dict | None = None,
) -> list[Finding]:
    """Flag unpicklable instance state on the shard-boundary closure."""
    cache: dict = scope_cache if scope_cache is not None else {}
    classes = _class_nodes(table)

    roots = sorted(
        qualname
        for qualname, (info, _) in classes.items()
        if any(fnmatch(info.module.rel_path, glob) for glob in root_globs)
    )

    # Breadth-first closure over held-attribute types, remembering which
    # root pulled each class in (first root wins — deterministic, since
    # roots and edges are visited in sorted order).
    provenance: dict[str, str] = {}
    queue: list[tuple[str, str]] = [(root, root) for root in roots]
    while queue:
        qualname, root = queue.pop(0)
        if qualname in provenance:
            continue
        provenance[qualname] = root
        entry = classes.get(qualname)
        if entry is None:
            continue
        info, node = entry
        for held in sorted(_held_class_types(table, info, qualname, node)):
            if held not in provenance:
                queue.append((held, root))

    findings: list[Finding] = []
    for qualname in sorted(provenance):
        entry = classes.get(qualname)
        if entry is None:
            continue
        info, node = entry
        module = info.module
        methods = table.methods.get(qualname, {})
        has_getstate = "__getstate__" in methods
        has_setstate = "__setstate__" in methods
        class_name = node.name
        root = provenance[qualname]
        via = "" if root == qualname else f" (reachable from shard root {root})"
        if has_getstate != has_setstate:
            present = "__getstate__" if has_getstate else "__setstate__"
            absent = "__setstate__" if has_getstate else "__getstate__"
            line = node.lineno
            if not module.allows(RULE, line):
                findings.append(
                    Finding(
                        rule=RULE,
                        path=module.rel_path,
                        line=line,
                        message=(
                            f"{class_name} defines {present} without {absent} — "
                            f"it will not survive a pickle round-trip intact{via}"
                        ),
                        scope=scope_of(module, line, cache),
                    )
                )
            continue
        if has_getstate and has_setstate:
            continue  # class owns its wire format; the runtime audit verifies it
        for attr, desc, line in _unpicklable_assigns(info, node):
            if module.allows(RULE, line):
                continue
            findings.append(
                Finding(
                    rule=RULE,
                    path=module.rel_path,
                    line=line,
                    message=(
                        f"{class_name} holds {desc} in self.{attr} — unpicklable "
                        f"across the shard boundary; drop it in __getstate__ and "
                        f"recreate it in __setstate__{via}"
                    ),
                    scope=scope_of(module, line, cache),
                )
            )
    return findings
