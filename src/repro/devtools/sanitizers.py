"""Runtime lock-order sanitizer ("tsan-lite") for the test suite.

The static pass (:mod:`repro.devtools.lockorder`) proves the *source*
encodes no cycle; this module checks the *executions* we actually run.
Under ``REPRO_SANITIZE=1``, ``tests/conftest.py`` installs a
:class:`LockOrderSanitizer` before collection, after which every
``threading.Lock()``/``threading.RLock()`` created *from repro source
files* is transparently wrapped.  Each wrapped lock records, per
thread, the stack of locks held when it is acquired; edges accumulate
in one process-global order graph keyed by the lock's **creation
site** (file:line), so all instances of ``Counter._lock`` share a node
exactly like the static analysis.

Detected at acquire time, appended to :attr:`LockOrderSanitizer.violations`:

* **inversion** — acquiring B while holding A when some earlier
  acquisition (any thread, any instances) took A while holding B;
* **held-across-blocking** — a patched blocking entry point
  (``SystemClock.sleep``, ``resilience.execute``) runs while this
  thread holds any sanitized lock.

The autouse fixture in ``tests/conftest.py`` fails the test that
introduced a violation, with both witness stacks in the message.

Implementation notes: the wrapper factory decides repro-vs-other by
the *caller's* source file, so pytest/stdlib locks stay native; the
sanitizer's own bookkeeping uses a raw ``_thread`` lock to stay out of
its own graph; and repro modules are reached via
``importlib.import_module`` at install time only — ``repro.devtools``
deliberately imports nothing from the rest of the platform at module
scope (see the layer DAG), and this runtime seam keeps it that way.
"""

from __future__ import annotations

import _thread
import importlib
import os
import sys
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "LockCoverageSanitizer",
    "LockCoverageViolation",
    "LockOrderSanitizer",
    "LockOrderViolation",
    "current_sanitizer",
]

#: Path fragment identifying project source for auto-wrapping.
_PROJECT_FRAGMENT = f"{os.sep}repro{os.sep}"
_SELF_FILE = os.path.abspath(__file__)


@dataclass(frozen=True, slots=True)
class LockOrderViolation:
    """One runtime ordering/blocking hazard."""

    kind: str  # "inversion" | "held-across-blocking"
    first: str  # lock site held
    second: str  # lock site acquired / blocking call name
    thread: str
    detail: str
    stack: tuple[str, ...] = ()

    def render(self) -> str:
        lines = [
            f"[{self.kind}] {self.first} then {self.second} on {self.thread}",
            f"  {self.detail}",
        ]
        lines.extend(f"  {frame}" for frame in self.stack[-6:])
        return "\n".join(lines)


def _creation_site(skip_files: tuple[str, ...]) -> str:
    """file:line of the nearest caller frame outside ``skip_files``."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if os.path.abspath(filename) not in skip_files:
            return f"{os.path.basename(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class _SanitizedLock:
    """Wraps one real lock; reports acquisitions to the sanitizer."""

    __slots__ = ("_real", "_site", "_sanitizer", "_reentrant")

    def __init__(
        self, real: Any, site: str, sanitizer: "LockOrderSanitizer", reentrant: bool
    ) -> None:
        self._real = real
        self._site = site
        self._sanitizer = sanitizer
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._real.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._on_acquire(self)
        return acquired

    def release(self) -> None:
        self._sanitizer._on_release(self)
        self._real.release()

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RLock" if self._reentrant else "Lock"
        return f"<Sanitized{kind} {self._site}>"


@dataclass(slots=True)
class _HeldEntry:
    lock: _SanitizedLock
    count: int = 1


class LockOrderSanitizer:
    """Process-global acquisition-order tracker.

    Use :meth:`install` to patch ``threading.Lock``/``RLock`` (wrapping
    only locks created from repro source) and the known blocking entry
    points, or create locks explicitly with :meth:`make_lock`/
    :meth:`make_rlock` in targeted tests.
    """

    def __init__(self) -> None:
        self._meta = _thread.allocate_lock()  # guards the order graph
        self._local = threading.local()
        #: site -> {successor site -> witness detail}
        self._order: dict[str, dict[str, str]] = {}
        self.violations: list[LockOrderViolation] = []
        self._installed = False
        self._saved_lock: Callable[..., Any] | None = None
        self._saved_rlock: Callable[..., Any] | None = None
        self._saved_blocking: list[tuple[Any, str, Any]] = []

    # -- explicit construction (tests) --------------------------------------

    def make_lock(self, name: str | None = None) -> _SanitizedLock:
        site = name or _creation_site((_SELF_FILE,))
        return _SanitizedLock(_thread.allocate_lock(), site, self, reentrant=False)

    def make_rlock(self, name: str | None = None) -> _SanitizedLock:
        site = name or _creation_site((_SELF_FILE,))
        return _SanitizedLock(threading._RLock(), site, self, reentrant=True)

    # -- bookkeeping ---------------------------------------------------------

    def _held(self) -> list[_HeldEntry]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = []
            self._local.held = held
        return held

    def _on_acquire(self, lock: _SanitizedLock) -> None:
        held = self._held()
        for entry in held:
            if entry.lock is lock:  # reentrant re-acquire of an RLock
                entry.count += 1
                return
        thread_name = threading.current_thread().name
        stack = tuple(
            f"{os.path.basename(f.filename)}:{f.lineno} in {f.name}"
            for f in traceback.extract_stack()[:-2]
            if "sanitizers" not in f.filename
        )
        with self._meta:
            for entry in held:
                src, dst = entry.lock._site, lock._site
                if src == dst:
                    continue  # instance fan-out of one class-level lock
                reverse = self._order.get(dst, {}).get(src)
                witness = f"{thread_name} held {src} acquiring {dst}"
                self._order.setdefault(src, {}).setdefault(dst, witness)
                if reverse is not None:
                    self.violations.append(
                        LockOrderViolation(
                            kind="inversion",
                            first=src,
                            second=dst,
                            thread=thread_name,
                            detail=(
                                f"opposite order previously observed: {reverse}"
                            ),
                            stack=stack,
                        )
                    )
        held.append(_HeldEntry(lock))

    def _on_release(self, lock: _SanitizedLock) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i].lock is lock:
                held[i].count -= 1
                if held[i].count == 0:
                    del held[i]
                return

    def is_held(self, lock: Any) -> bool:
        """True when the *current thread* holds ``lock`` (a sanitized
        wrapper created by this sanitizer)."""
        return any(entry.lock is lock for entry in self._held())

    def note_blocking(self, name: str) -> None:
        """Called from patched blocking entry points."""
        held = self._held()
        if not held:
            return
        thread_name = threading.current_thread().name
        stack = tuple(
            f"{os.path.basename(f.filename)}:{f.lineno} in {f.name}"
            for f in traceback.extract_stack()[:-2]
            if "sanitizers" not in f.filename
        )
        with self._meta:
            self.violations.append(
                LockOrderViolation(
                    kind="held-across-blocking",
                    first=held[-1].lock._site,
                    second=name,
                    thread=thread_name,
                    detail=(
                        f"{name} ran while holding "
                        f"{[entry.lock._site for entry in held]}"
                    ),
                    stack=stack,
                )
            )

    # -- introspection -------------------------------------------------------

    def order_edges(self) -> dict[str, tuple[str, ...]]:
        """Observed acquisition order (site -> successor sites)."""
        with self._meta:
            return {src: tuple(sorted(dsts)) for src, dsts in self._order.items()}

    def reset(self) -> None:
        with self._meta:
            self._order.clear()
            self.violations.clear()

    # -- installation --------------------------------------------------------

    def install(self) -> None:
        """Patch lock construction and blocking entry points."""
        if self._installed:
            return
        self._installed = True
        _set_current(self)
        sanitizer = self
        real_lock = threading.Lock
        real_rlock = threading.RLock
        self._saved_lock = real_lock
        self._saved_rlock = real_rlock

        def lock_factory() -> Any:
            real = real_lock()
            site = _creation_site((_SELF_FILE,))
            if _PROJECT_FRAGMENT in _site_path(sys._getframe(1)):
                return _SanitizedLock(real, site, sanitizer, reentrant=False)
            return real

        def rlock_factory() -> Any:
            real = real_rlock()
            site = _creation_site((_SELF_FILE,))
            if _PROJECT_FRAGMENT in _site_path(sys._getframe(1)):
                return _SanitizedLock(real, site, sanitizer, reentrant=True)
            return real

        threading.Lock = lock_factory  # type: ignore[misc, assignment]
        threading.RLock = rlock_factory  # type: ignore[misc, assignment]
        self._patch_blocking()

    def uninstall(self) -> None:
        if not self._installed:
            return
        self._installed = False
        if self._saved_lock is not None:
            threading.Lock = self._saved_lock  # type: ignore[misc, assignment]
        if self._saved_rlock is not None:
            threading.RLock = self._saved_rlock  # type: ignore[misc, assignment]
        for owner, attr, original in self._saved_blocking:
            setattr(owner, attr, original)
        self._saved_blocking.clear()
        _set_current(None)

    def _patch_blocking(self) -> None:
        """Wrap the blocking entry points the static pass knows about.

        Imported lazily by dotted string: ``repro.devtools`` must not
        depend on the platform at import time (layer DAG), and the
        sanitizer must work even when only parts of it are loaded.
        """
        sanitizer = self
        targets = (
            ("repro.resilience.clock", "SystemClock", "sleep"),
            ("repro.resilience.policies", None, "execute"),
        )
        for module_name, class_name, attr in targets:
            try:
                module = importlib.import_module(module_name)
            except ImportError:  # platform not importable in this env
                continue
            owner: Any = getattr(module, class_name) if class_name else module
            original = getattr(owner, attr, None)
            if original is None:
                continue
            label = f"{module_name}.{class_name + '.' if class_name else ''}{attr}"

            def wrapped(*args: Any, _orig: Any = original, _label: str = label, **kwargs: Any) -> Any:
                sanitizer.note_blocking(_label)
                return _orig(*args, **kwargs)

            setattr(owner, attr, wrapped)
            self._saved_blocking.append((owner, attr, original))


# -- lock-coverage sanitizer -------------------------------------------------

_MISSING = object()


def _capture_stack() -> tuple[str, ...]:
    return tuple(
        f"{os.path.basename(f.filename)}:{f.lineno} in {f.name}"
        for f in traceback.extract_stack()[:-2]
        if "sanitizers" not in f.filename
    )


@dataclass(frozen=True, slots=True)
class LockCoverageViolation:
    """One mutation of a lock-guarded attribute without its lock held."""

    attr: str  # "ClassName.attr"
    guard: str  # name of the lock attribute that should have been held
    op: str  # "rebind", "delete", or the mutating container method
    thread: str
    stack: tuple[str, ...] = ()

    def render(self) -> str:
        lines = [
            f"[lock-coverage] {self.op} of {self.attr} without "
            f"{self.guard} held on {self.thread}"
        ]
        lines.extend(f"  {frame}" for frame in self.stack[-6:])
        return "\n".join(lines)


@dataclass(slots=True)
class _GuardBinding:
    """Ties a guarded container back to its owner's declared lock."""

    sanitizer: "LockCoverageSanitizer"
    owner: Any
    label: str
    lock_attr: str

    def check(self, op: str) -> None:
        self.sanitizer._check(self.owner, self.label, self.lock_attr, op)


#: Mutating methods per builtin container the coverage sanitizer wraps.
_DICT_MUTATORS = (
    "__setitem__", "__delitem__", "__ior__",
    "clear", "pop", "popitem", "setdefault", "update",
)
_LIST_MUTATORS = (
    "__setitem__", "__delitem__", "__iadd__", "__imul__",
    "append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse",
)
_SET_MUTATORS = (
    "__ior__", "__iand__", "__isub__", "__ixor__",
    "add", "discard", "remove", "pop", "clear", "update",
    "difference_update", "intersection_update", "symmetric_difference_update",
)


def _guarded_container(base: type, mutators: tuple[str, ...]) -> type:
    """A ``base`` subclass whose mutating methods report to the coverage
    sanitizer before delegating; pickles/copies back to the plain
    builtin so guarded values cross the shard boundary untouched."""

    def _make(name: str) -> Callable[..., Any]:
        original = getattr(base, name)

        def method(self: Any, *args: Any, **kwargs: Any) -> Any:
            binding = self._cov_binding
            if binding is not None:
                binding.check(name)
            return original(self, *args, **kwargs)

        method.__name__ = name
        return method

    namespace: dict[str, Any] = {name: _make(name) for name in mutators}
    namespace["_cov_binding"] = None

    def __reduce__(self: Any) -> tuple:
        return (base, (base(self),))

    namespace["__reduce__"] = __reduce__
    return type(f"_Guarded_{base.__name__}", (base,), namespace)


class _GuardedAttribute:
    """Data descriptor over one lock-guarded attribute.

    Values live in the instance ``__dict__`` under their own name (so
    ``vars()``, ``__getstate__`` and pickling see them unchanged); the
    descriptor checks the declared lock on every rebind after the first
    (publication from ``__init__`` is lock-free by design) and wraps
    plain dict/list/set values so in-place mutations are checked too.
    """

    __slots__ = ("name", "label", "lock_attr", "sanitizer", "class_default")

    def __init__(
        self,
        name: str,
        label: str,
        lock_attr: str,
        sanitizer: "LockCoverageSanitizer",
        class_default: Any,
    ) -> None:
        self.name = name
        self.label = label
        self.lock_attr = lock_attr
        self.sanitizer = sanitizer
        self.class_default = class_default

    def __get__(self, obj: Any, objtype: type | None = None) -> Any:
        if obj is None:
            return self
        try:
            return obj.__dict__[self.name]
        except KeyError:
            if self.class_default is not _MISSING:
                return self.class_default
            raise AttributeError(self.name) from None

    def __set__(self, obj: Any, value: Any) -> None:
        if self.name in obj.__dict__:
            self.sanitizer._check(obj, self.label, self.lock_attr, "rebind")
        obj.__dict__[self.name] = self.sanitizer._wrap(
            value, obj, self.label, self.lock_attr
        )

    def __delete__(self, obj: Any) -> None:
        self.sanitizer._check(obj, self.label, self.lock_attr, "delete")
        try:
            del obj.__dict__[self.name]
        except KeyError:
            raise AttributeError(self.name) from None


class LockCoverageSanitizer:  # devtools: allow[dead-code] — installed by tests/conftest.py under REPRO_SANITIZE=1
    """Runtime enforcement of the concurrency manifest's lock-guarded rows.

    The thread-escape pass proves (statically) that every *source*
    mutation of a lock-guarded attribute sits under its declared lock;
    this sanitizer checks the *executions*: instrument the classes the
    manifest names, and any rebind or container mutation of a guarded
    attribute while the owning instance's declared lock is not held by
    the current thread is recorded in :attr:`violations` (the autouse
    fixture in ``tests/conftest.py`` fails the offending test).

    Classes whose instances have no ``__dict__`` (``__slots__``) are
    skipped — slot descriptors cannot be shadowed without changing
    storage.  Manifest rows whose guard lives on a *different* class
    than the attribute (e.g. tree nodes guarded by the tree's lock) are
    skipped too: there is no per-instance lock to test.
    """

    def __init__(self) -> None:
        self._meta = _thread.allocate_lock()
        self.violations: list[LockCoverageViolation] = []
        self._instrumented: list[tuple[type, str, Any]] = []
        self._active = True
        self._guarded_dict = _guarded_container(dict, _DICT_MUTATORS)
        self._guarded_list = _guarded_container(list, _LIST_MUTATORS)
        self._guarded_set = _guarded_container(set, _SET_MUTATORS)

    # -- instrumentation -----------------------------------------------------

    def instrument_class(self, cls: type, guards: dict[str, str]) -> int:
        """Install guarded descriptors for ``{attr: lock_attr}``; returns
        how many attributes were instrumented (0 for slotted classes)."""
        if getattr(cls, "__dictoffset__", 0) == 0:
            return 0  # no instance __dict__ to shadow into
        count = 0
        for attr, lock_attr in sorted(guards.items()):
            existing = cls.__dict__.get(attr, _MISSING)
            if isinstance(existing, _GuardedAttribute):
                continue
            descriptor = _GuardedAttribute(
                attr, f"{cls.__name__}.{attr}", lock_attr, self, existing
            )
            setattr(cls, attr, descriptor)
            self._instrumented.append((cls, attr, existing))
            count += 1
        return count

    def install_from_manifest(self, manifest: dict) -> int:
        """Instrument every resolvable ``lock-guarded`` manifest row.

        Modules are imported lazily by dotted name (the devtools layer
        must not import the platform at module scope); unimportable
        modules and unresolvable classes are skipped, not fatal.
        """
        per_class: dict[tuple[str, str], dict[str, str]] = {}
        for entry in manifest.get("entries", []):
            if entry.get("classification") != "lock-guarded":
                continue
            try:
                owner_q, attr = str(entry.get("attr", "")).rsplit(".", 1)
                guard_q, lock_attr = str(entry.get("guard", "")).rsplit(".", 1)
            except ValueError:
                continue
            if owner_q != guard_q:
                continue  # guard on another class: no instance lock to test
            module_name, cls_name = owner_q.rsplit(".", 1)
            per_class.setdefault((module_name, cls_name), {})[attr] = lock_attr
        total = 0
        for (module_name, cls_name), guards in sorted(per_class.items()):
            try:
                module = importlib.import_module(module_name)
            except ImportError:
                continue
            cls = getattr(module, cls_name, None)
            if isinstance(cls, type):
                total += self.instrument_class(cls, guards)
        return total

    def uninstrument(self) -> None:
        """Restore the original class attributes and stop recording."""
        self._active = False
        for cls, attr, original in reversed(self._instrumented):
            if original is _MISSING:
                try:
                    delattr(cls, attr)
                except AttributeError:
                    pass
            else:
                setattr(cls, attr, original)
        self._instrumented.clear()

    def reset(self) -> None:
        with self._meta:
            self.violations.clear()

    # -- checking ------------------------------------------------------------

    def _wrap(self, value: Any, owner: Any, label: str, lock_attr: str) -> Any:
        guarded = {
            dict: self._guarded_dict,
            list: self._guarded_list,
            set: self._guarded_set,
        }.get(type(value))
        if guarded is None:
            return value
        wrapped = guarded(value)
        wrapped._cov_binding = _GuardBinding(self, owner, label, lock_attr)
        return wrapped

    def _check(self, owner: Any, label: str, lock_attr: str, op: str) -> None:
        if not self._active:
            return
        lock = getattr(owner, lock_attr, None)
        if lock is None:
            return  # pre-publication: the guard itself is not built yet
        if self._holds(lock):
            return
        with self._meta:
            self.violations.append(
                LockCoverageViolation(
                    attr=label,
                    guard=lock_attr,
                    op=op,
                    thread=threading.current_thread().name,
                    stack=_capture_stack(),
                )
            )

    @staticmethod
    def _holds(lock: Any) -> bool:
        """Best-effort 'current thread holds this lock'."""
        if isinstance(lock, _SanitizedLock):
            order = current_sanitizer()
            if order is not None:
                return order.is_held(lock)
            lock = lock._real
        owned = getattr(lock, "_is_owned", None)
        if owned is not None:
            try:
                return bool(owned())
            except Exception:  # pragma: no cover - exotic lock impls  # devtools: allow[broad-except] — ownership probe must never raise inside __setattr__
                return False
        locked = getattr(lock, "locked", None)
        return bool(locked()) if callable(locked) else False


def _site_path(frame: Any) -> str:
    while frame is not None:
        filename = os.path.abspath(frame.f_code.co_filename)
        if filename != _SELF_FILE:
            return filename
        frame = frame.f_back
    return ""


_current: LockOrderSanitizer | None = None
_current_lock = _thread.allocate_lock()


def _set_current(sanitizer: LockOrderSanitizer | None) -> None:
    global _current  # devtools: allow[module-mutable-state] — guarded right below
    with _current_lock:
        _current = sanitizer


# Consumed by tests/conftest.py (tests deliberately don't keep src alive).
# devtools: allow[dead-code] — intentional API surface
def current_sanitizer() -> LockOrderSanitizer | None:
    """The installed sanitizer, if any (used by tests/conftest.py)."""
    return _current
