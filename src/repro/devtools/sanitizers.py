"""Runtime lock-order sanitizer ("tsan-lite") for the test suite.

The static pass (:mod:`repro.devtools.lockorder`) proves the *source*
encodes no cycle; this module checks the *executions* we actually run.
Under ``REPRO_SANITIZE=1``, ``tests/conftest.py`` installs a
:class:`LockOrderSanitizer` before collection, after which every
``threading.Lock()``/``threading.RLock()`` created *from repro source
files* is transparently wrapped.  Each wrapped lock records, per
thread, the stack of locks held when it is acquired; edges accumulate
in one process-global order graph keyed by the lock's **creation
site** (file:line), so all instances of ``Counter._lock`` share a node
exactly like the static analysis.

Detected at acquire time, appended to :attr:`LockOrderSanitizer.violations`:

* **inversion** — acquiring B while holding A when some earlier
  acquisition (any thread, any instances) took A while holding B;
* **held-across-blocking** — a patched blocking entry point
  (``SystemClock.sleep``, ``resilience.execute``) runs while this
  thread holds any sanitized lock.

The autouse fixture in ``tests/conftest.py`` fails the test that
introduced a violation, with both witness stacks in the message.

Implementation notes: the wrapper factory decides repro-vs-other by
the *caller's* source file, so pytest/stdlib locks stay native; the
sanitizer's own bookkeeping uses a raw ``_thread`` lock to stay out of
its own graph; and repro modules are reached via
``importlib.import_module`` at install time only — ``repro.devtools``
deliberately imports nothing from the rest of the platform at module
scope (see the layer DAG), and this runtime seam keeps it that way.
"""

from __future__ import annotations

import _thread
import importlib
import os
import sys
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "LockOrderSanitizer",
    "LockOrderViolation",
    "current_sanitizer",
]

#: Path fragment identifying project source for auto-wrapping.
_PROJECT_FRAGMENT = f"{os.sep}repro{os.sep}"
_SELF_FILE = os.path.abspath(__file__)


@dataclass(frozen=True, slots=True)
class LockOrderViolation:
    """One runtime ordering/blocking hazard."""

    kind: str  # "inversion" | "held-across-blocking"
    first: str  # lock site held
    second: str  # lock site acquired / blocking call name
    thread: str
    detail: str
    stack: tuple[str, ...] = ()

    def render(self) -> str:
        lines = [
            f"[{self.kind}] {self.first} then {self.second} on {self.thread}",
            f"  {self.detail}",
        ]
        lines.extend(f"  {frame}" for frame in self.stack[-6:])
        return "\n".join(lines)


def _creation_site(skip_files: tuple[str, ...]) -> str:
    """file:line of the nearest caller frame outside ``skip_files``."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if os.path.abspath(filename) not in skip_files:
            return f"{os.path.basename(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class _SanitizedLock:
    """Wraps one real lock; reports acquisitions to the sanitizer."""

    __slots__ = ("_real", "_site", "_sanitizer", "_reentrant")

    def __init__(
        self, real: Any, site: str, sanitizer: "LockOrderSanitizer", reentrant: bool
    ) -> None:
        self._real = real
        self._site = site
        self._sanitizer = sanitizer
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._real.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._on_acquire(self)
        return acquired

    def release(self) -> None:
        self._sanitizer._on_release(self)
        self._real.release()

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RLock" if self._reentrant else "Lock"
        return f"<Sanitized{kind} {self._site}>"


@dataclass(slots=True)
class _HeldEntry:
    lock: _SanitizedLock
    count: int = 1


class LockOrderSanitizer:
    """Process-global acquisition-order tracker.

    Use :meth:`install` to patch ``threading.Lock``/``RLock`` (wrapping
    only locks created from repro source) and the known blocking entry
    points, or create locks explicitly with :meth:`make_lock`/
    :meth:`make_rlock` in targeted tests.
    """

    def __init__(self) -> None:
        self._meta = _thread.allocate_lock()  # guards the order graph
        self._local = threading.local()
        #: site -> {successor site -> witness detail}
        self._order: dict[str, dict[str, str]] = {}
        self.violations: list[LockOrderViolation] = []
        self._installed = False
        self._saved_lock: Callable[..., Any] | None = None
        self._saved_rlock: Callable[..., Any] | None = None
        self._saved_blocking: list[tuple[Any, str, Any]] = []

    # -- explicit construction (tests) --------------------------------------

    def make_lock(self, name: str | None = None) -> _SanitizedLock:
        site = name or _creation_site((_SELF_FILE,))
        return _SanitizedLock(_thread.allocate_lock(), site, self, reentrant=False)

    def make_rlock(self, name: str | None = None) -> _SanitizedLock:
        site = name or _creation_site((_SELF_FILE,))
        return _SanitizedLock(threading._RLock(), site, self, reentrant=True)

    # -- bookkeeping ---------------------------------------------------------

    def _held(self) -> list[_HeldEntry]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = []
            self._local.held = held
        return held

    def _on_acquire(self, lock: _SanitizedLock) -> None:
        held = self._held()
        for entry in held:
            if entry.lock is lock:  # reentrant re-acquire of an RLock
                entry.count += 1
                return
        thread_name = threading.current_thread().name
        stack = tuple(
            f"{os.path.basename(f.filename)}:{f.lineno} in {f.name}"
            for f in traceback.extract_stack()[:-2]
            if "sanitizers" not in f.filename
        )
        with self._meta:
            for entry in held:
                src, dst = entry.lock._site, lock._site
                if src == dst:
                    continue  # instance fan-out of one class-level lock
                reverse = self._order.get(dst, {}).get(src)
                witness = f"{thread_name} held {src} acquiring {dst}"
                self._order.setdefault(src, {}).setdefault(dst, witness)
                if reverse is not None:
                    self.violations.append(
                        LockOrderViolation(
                            kind="inversion",
                            first=src,
                            second=dst,
                            thread=thread_name,
                            detail=(
                                f"opposite order previously observed: {reverse}"
                            ),
                            stack=stack,
                        )
                    )
        held.append(_HeldEntry(lock))

    def _on_release(self, lock: _SanitizedLock) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i].lock is lock:
                held[i].count -= 1
                if held[i].count == 0:
                    del held[i]
                return

    def note_blocking(self, name: str) -> None:
        """Called from patched blocking entry points."""
        held = self._held()
        if not held:
            return
        thread_name = threading.current_thread().name
        stack = tuple(
            f"{os.path.basename(f.filename)}:{f.lineno} in {f.name}"
            for f in traceback.extract_stack()[:-2]
            if "sanitizers" not in f.filename
        )
        with self._meta:
            self.violations.append(
                LockOrderViolation(
                    kind="held-across-blocking",
                    first=held[-1].lock._site,
                    second=name,
                    thread=thread_name,
                    detail=(
                        f"{name} ran while holding "
                        f"{[entry.lock._site for entry in held]}"
                    ),
                    stack=stack,
                )
            )

    # -- introspection -------------------------------------------------------

    def order_edges(self) -> dict[str, tuple[str, ...]]:
        """Observed acquisition order (site -> successor sites)."""
        with self._meta:
            return {src: tuple(sorted(dsts)) for src, dsts in self._order.items()}

    def reset(self) -> None:
        with self._meta:
            self._order.clear()
            self.violations.clear()

    # -- installation --------------------------------------------------------

    def install(self) -> None:
        """Patch lock construction and blocking entry points."""
        if self._installed:
            return
        self._installed = True
        _set_current(self)
        sanitizer = self
        real_lock = threading.Lock
        real_rlock = threading.RLock
        self._saved_lock = real_lock
        self._saved_rlock = real_rlock

        def lock_factory() -> Any:
            real = real_lock()
            site = _creation_site((_SELF_FILE,))
            if _PROJECT_FRAGMENT in _site_path(sys._getframe(1)):
                return _SanitizedLock(real, site, sanitizer, reentrant=False)
            return real

        def rlock_factory() -> Any:
            real = real_rlock()
            site = _creation_site((_SELF_FILE,))
            if _PROJECT_FRAGMENT in _site_path(sys._getframe(1)):
                return _SanitizedLock(real, site, sanitizer, reentrant=True)
            return real

        threading.Lock = lock_factory  # type: ignore[misc, assignment]
        threading.RLock = rlock_factory  # type: ignore[misc, assignment]
        self._patch_blocking()

    def uninstall(self) -> None:
        if not self._installed:
            return
        self._installed = False
        if self._saved_lock is not None:
            threading.Lock = self._saved_lock  # type: ignore[misc, assignment]
        if self._saved_rlock is not None:
            threading.RLock = self._saved_rlock  # type: ignore[misc, assignment]
        for owner, attr, original in self._saved_blocking:
            setattr(owner, attr, original)
        self._saved_blocking.clear()
        _set_current(None)

    def _patch_blocking(self) -> None:
        """Wrap the blocking entry points the static pass knows about.

        Imported lazily by dotted string: ``repro.devtools`` must not
        depend on the platform at import time (layer DAG), and the
        sanitizer must work even when only parts of it are loaded.
        """
        sanitizer = self
        targets = (
            ("repro.resilience.clock", "SystemClock", "sleep"),
            ("repro.resilience.policies", None, "execute"),
        )
        for module_name, class_name, attr in targets:
            try:
                module = importlib.import_module(module_name)
            except ImportError:  # platform not importable in this env
                continue
            owner: Any = getattr(module, class_name) if class_name else module
            original = getattr(owner, attr, None)
            if original is None:
                continue
            label = f"{module_name}.{class_name + '.' if class_name else ''}{attr}"

            def wrapped(*args: Any, _orig: Any = original, _label: str = label, **kwargs: Any) -> Any:
                sanitizer.note_blocking(_label)
                return _orig(*args, **kwargs)

            setattr(owner, attr, wrapped)
            self._saved_blocking.append((owner, attr, original))


def _site_path(frame: Any) -> str:
    while frame is not None:
        filename = os.path.abspath(frame.f_code.co_filename)
        if filename != _SELF_FILE:
            return filename
        frame = frame.f_back
    return ""


_current: LockOrderSanitizer | None = None
_current_lock = _thread.allocate_lock()


def _set_current(sanitizer: LockOrderSanitizer | None) -> None:
    global _current  # devtools: allow[module-mutable-state] — guarded right below
    with _current_lock:
        _current = sanitizer


# Consumed by tests/conftest.py (tests deliberately don't keep src alive).
# devtools: allow[dead-code] — intentional API surface
def current_sanitizer() -> LockOrderSanitizer | None:
    """The installed sanitizer, if any (used by tests/conftest.py)."""
    return _current
