"""Concurrency lints: shared mutable state must be lock-protected.

Two rules (companion runtime check: ``tests/devtools/test_race_harness.py``):

* ``module-mutable-state`` — a module-level mutable container (or any
  name rebound through ``global``) that the module itself mutates at
  runtime must do so under a lock.  Read-only registry dicts assigned
  once at import are fine; the moment a function writes to one outside
  a ``with <...lock...>:`` block, the lint fires at the write site.
* ``unlocked-mutation`` — inside concurrency-critical modules (the
  index structures and the metrics registry), *public* methods that
  mutate ``self`` state (container writes, augmented assignments) must
  hold a lock.  Underscore-prefixed helpers are assumed to be called
  with the lock already held, which keeps recursive tree code hot.

A ``with`` statement counts as lock-protected when any context
expression's dotted name contains ``"lock"`` (``self._lock``,
``_registry_lock``, ``cls._big_lock``, ...).
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from repro.devtools.findings import Finding, SourceModule, scope_of

RULE_MODULE_STATE = "module-mutable-state"
RULE_UNLOCKED = "unlocked-mutation"

#: Modules whose classes are mutated from many threads (index structures
#: shared by the platform, the process-wide metrics registry/tracer).
DEFAULT_CRITICAL_GLOBS: tuple[str, ...] = (
    "*/repro/index/*.py",
    "*/repro/obs/*.py",
)

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "OrderedDict", "Counter"}
)
_MUTATING_METHODS = frozenset(
    {
        "append", "appendleft", "add", "insert", "extend", "extendleft",
        "update", "setdefault", "pop", "popitem", "popleft", "remove",
        "discard", "clear", "sort", "reverse",
    }
)


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in _MUTABLE_CALLS
    return False


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append(_dotted(node.func))
    return ".".join(reversed(parts))


def _annotate_parents(tree: ast.Module) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._devtools_parent = node  # type: ignore[attr-defined]


def _under_lock(node: ast.AST) -> bool:
    """True when ``node`` sits inside a ``with`` whose context mentions
    a lock-ish name."""
    current = getattr(node, "_devtools_parent", None)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                if "lock" in _dotted(item.context_expr).lower():
                    return True
        current = getattr(current, "_devtools_parent", None)
    return False


def _base_name(node: ast.AST) -> ast.AST:
    """Strip subscripts off an assignment target: ``x[k][j]`` -> ``x``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _global_mutations(tree: ast.Module, names: set[str]) -> list[tuple[int, str, str]]:
    """(line, name, verb) for every mutation of a tracked global."""
    hits: list[tuple[int, str, str]] = []

    def track(target: ast.AST, verb: str, line: int) -> None:
        base = _base_name(target)
        if isinstance(base, ast.Name) and base.id in names:
            hits.append((line, base.id, verb))

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = node.targets if isinstance(node, (ast.Assign, ast.Delete)) else [node.target]
            verb = "augmented assignment" if isinstance(node, ast.AugAssign) else "write"
            for target in targets:
                # Plain module-level rebinds at import time are fine;
                # only subscript writes / augassign mutate shared state.
                if isinstance(target, ast.Subscript) or isinstance(node, ast.AugAssign):
                    track(target, verb, node.lineno)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS and isinstance(node.func.value, ast.Name):
                if node.func.value.id in names:
                    hits.append((node.lineno, node.func.value.id, f".{node.func.attr}()"))
    return hits


def _global_rebinds(tree: ast.Module) -> list[tuple[ast.stmt, int, str]]:
    """(node, line, name) for assignments to ``global``-declared names
    inside functions — rebinding shared module state at runtime."""
    hits: list[tuple[ast.stmt, int, str]] = []
    seen: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        declared = {
            name
            for stmt in node.body
            for s in ast.walk(stmt)
            if isinstance(s, ast.Global)
            for name in s.names
        }
        if not declared:
            continue
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared
                        and id(stmt) not in seen
                    ):
                        seen.add(id(stmt))
                        hits.append((stmt, stmt.lineno, target.id))
    return hits


def check_module_state(
    modules: list[SourceModule], scope_cache: dict | None = None
) -> list[Finding]:
    """``module-mutable-state`` findings across ``modules``."""
    cache: dict = scope_cache if scope_cache is not None else {}
    findings: list[Finding] = []
    for module in modules:
        _annotate_parents(module.tree)
        tracked: set[str] = set()
        line_of: dict[str, int] = {}
        for node in module.tree.body:
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if isinstance(target, ast.Name) and not target.id.startswith("__"):
                if _is_mutable_value(value):
                    tracked.add(target.id)
                    line_of[target.id] = node.lineno

        mutation_nodes: list[tuple[ast.AST, int, str, str]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript) or isinstance(node, ast.AugAssign):
                        base = _base_name(target)
                        if isinstance(base, ast.Name) and base.id in tracked:
                            mutation_nodes.append((node, node.lineno, base.id, "write"))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        base = _base_name(target)
                        if isinstance(base, ast.Name) and base.id in tracked:
                            mutation_nodes.append((node, node.lineno, base.id, "del"))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if (
                    node.func.attr in _MUTATING_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in tracked
                ):
                    mutation_nodes.append(
                        (node, node.lineno, node.func.value.id, f".{node.func.attr}()")
                    )

        for node, line, name, verb in mutation_nodes:
            if line == line_of.get(name):
                continue  # the initialising statement itself
            if _under_lock(node) or module.allows(RULE_MODULE_STATE, line):
                continue
            findings.append(
                Finding(
                    rule=RULE_MODULE_STATE,
                    path=module.rel_path,
                    line=line,
                    message=(
                        f"module-level mutable {name!r} (defined line "
                        f"{line_of[name]}) is mutated here ({verb}) outside a lock"
                    ),
                    scope=f"{scope_of(module, line, cache)}:{name}",
                )
            )

        for node, line, name in _global_rebinds(module.tree):
            if _under_lock(node) or module.allows(RULE_MODULE_STATE, line):
                continue
            findings.append(
                Finding(
                    rule=RULE_MODULE_STATE,
                    path=module.rel_path,
                    line=line,
                    message=(
                        f"'global {name}' rebinding outside a lock — shared module "
                        f"state must be guarded"
                    ),
                    scope=f"{scope_of(module, line, cache)}:{name}",
                )
            )
    return findings


def check_unlocked_mutations(
    modules: list[SourceModule],
    critical_globs: tuple[str, ...] = DEFAULT_CRITICAL_GLOBS,
    scope_cache: dict | None = None,
) -> list[Finding]:
    """``unlocked-mutation`` findings in concurrency-critical modules."""
    cache: dict = scope_cache if scope_cache is not None else {}
    findings: list[Finding] = []
    for module in modules:
        posix = module.path.as_posix()
        if not any(fnmatch(posix, glob) for glob in critical_globs):
            continue
        _annotate_parents(module.tree)
        for cls in [n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)]:
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name.startswith("_"):
                    continue  # helpers run with the lock already held
                for node, line, attr, verb in _self_mutations(method):
                    if _under_lock(node) or module.allows(RULE_UNLOCKED, line):
                        continue
                    findings.append(
                        Finding(
                            rule=RULE_UNLOCKED,
                            path=module.rel_path,
                            line=line,
                            message=(
                                f"{cls.name}.{method.name} mutates self.{attr} "
                                f"({verb}) without holding a lock — this module is "
                                f"declared concurrency-critical"
                            ),
                            scope=f"{cls.name}.{method.name}:{attr}",
                        )
                    )
    return findings


def _self_mutations(
    method: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[ast.AST, int, str, str]]:
    """Mutations of ``self.<attr>`` state inside one method."""

    def self_attr(node: ast.AST) -> str | None:
        node = _base_name(node)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    hits: list[tuple[ast.AST, int, str, str]] = []
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr = self_attr(target)
                    if attr is not None:
                        hits.append((node, node.lineno, attr, "item write"))
        elif isinstance(node, ast.AugAssign):
            attr = self_attr(node.target)
            if attr is not None:
                hits.append((node, node.lineno, attr, "augmented assignment"))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr = self_attr(target)
                    if attr is not None:
                        hits.append((node, node.lineno, attr, "item delete"))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS:
                attr = self_attr(node.func.value)
                if attr is not None:
                    hits.append((node, node.lineno, attr, f".{node.func.attr}()"))
    return hits


def check_concurrency(
    modules: list[SourceModule],
    critical_globs: tuple[str, ...] = DEFAULT_CRITICAL_GLOBS,
    scope_cache: dict | None = None,
) -> list[Finding]:
    """Both concurrency rules over ``modules``."""
    cache: dict = scope_cache if scope_cache is not None else {}
    return check_module_state(modules, cache) + check_unlocked_mutations(
        modules, critical_globs, cache
    )
