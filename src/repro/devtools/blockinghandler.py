"""Blocking calls reachable from HTTP handlers.

The serving arc will run every registered route on a bounded thread
pool; a handler that blocks — file IO, an untimed ``Future.result()``,
a subprocess, a socket operation, or a resilience policy that sleeps —
ties up a worker for an unbounded time and collapses throughput under
load.  This pass discovers handlers from ``Router`` registrations
(``route(method, template)(self._handler)`` / ``router.add(...)``),
propagates may-block facts over the call graph, and reports each
blocking *site* once, naming the handlers that reach it and the call
chain from one of them.

Findings anchor at the blocking call site (not the handler ``def``), so
a single justified ``# devtools: allow[blocking-in-handler]`` at a
deliberately-blocking site — e.g. the shard dispatch retry, whose
backoff is budget-bounded — covers every handler that reaches it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.devtools.callgraph import (
    CallGraph,
    SymbolTable,
    iter_functions,
    resolve_call,
    resolve_locals,
)
from repro.devtools.findings import Finding
from repro.devtools.lockorder import (
    _BLOCKING_ATTRS,
    _is_blocking_symbol,
    _is_string_op,
    _raw_dotted,
)
from repro.devtools.threadescape import discover_handlers

RULE = "blocking-in-handler"

_SUBPROCESS_CALLS = frozenset(
    {"run", "Popen", "call", "check_call", "check_output", "communicate", "wait"}
)

_SOCKET_ATTRS = frozenset({"accept", "makefile", "recv_into", "recvfrom"})


@dataclass(frozen=True, slots=True)
class _BlockingSite:
    """One direct blocking call in one function."""

    qualname: str
    raw: str
    reason: str
    path: str
    line: int


def _result_without_timeout(node: ast.Call) -> bool:
    """``x.result()`` with no timeout argument blocks indefinitely."""
    if node.args:
        return False
    return not any(kw.arg == "timeout" for kw in node.keywords)


def _has_timeout_policy(node: ast.Call) -> bool:
    """True when a resilience ``execute(...)`` call includes a Timeout
    policy (positionally or via any argument naming one)."""
    for arg in list(node.args) + [kw.value for kw in node.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, (ast.Name, ast.Attribute)):
                dotted = _raw_dotted(sub) if isinstance(sub, ast.Attribute) else sub.id
                if "Timeout" in dotted or "timeout" in dotted:
                    return True
    return False


def _direct_blocking(
    table: SymbolTable,
) -> dict[str, _BlockingSite]:
    """First blocking call per function, with why it blocks."""
    out: dict[str, _BlockingSite] = {}
    for info, class_context, qualname, fn in iter_functions(table):
        if qualname in out:
            continue
        locals_map = resolve_locals(table, info, class_context, fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            raw = _raw_dotted(node.func)
            attr = raw.rsplit(".", 1)[-1] if raw else ""
            reason = ""
            if raw == "open" or attr in _BLOCKING_ATTRS:
                if _is_string_op(node) or raw == "os.path.join":
                    continue
                reason = "file/socket IO or sleep"
            elif attr == "result" and _result_without_timeout(node):
                reason = "Future.result() without a timeout"
            elif raw.startswith("subprocess.") and attr in _SUBPROCESS_CALLS:
                reason = "subprocess call"
            elif attr in _SOCKET_ATTRS:
                reason = "socket operation"
            else:
                callee = resolve_call(table, info, class_context, node.func, locals_map)
                if callee is not None and _is_blocking_symbol(callee):
                    if callee.endswith(".resilience.policies.execute") and (
                        _has_timeout_policy(node)
                    ):
                        continue
                    reason = "resilience policy that can sleep"
            if reason:
                if info.module.allows(RULE, node.lineno):
                    continue
                out[qualname] = _BlockingSite(
                    qualname=qualname,
                    raw=raw or "<call>",
                    reason=reason,
                    path=info.module.rel_path,
                    line=node.lineno,
                )
                break
    return out


def check_blocking_in_handler(
    table: SymbolTable,
    graph: CallGraph,
    handlers: tuple[str, ...] | None = None,
) -> list[Finding]:
    if handlers is None:
        handlers = discover_handlers(table)
    if not handlers:
        return []
    blocking = _direct_blocking(table)

    # Per handler: BFS to the nearest blocking site, keeping the chain.
    # Findings group by blocking site so one allow-comment at a
    # sanctioned site covers every handler reaching it.
    grouped: dict[tuple[str, str], tuple[_BlockingSite, list[str], list[str]]] = {}
    for handler in sorted(handlers):
        parents: dict[str, str | None] = {handler: None}
        queue = [handler]
        hit: str | None = None
        while queue and hit is None:
            current = queue.pop(0)
            if current in blocking:
                hit = current
                break
            for callee in sorted(graph.callees(current)):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        if hit is None:
            continue
        chain: list[str] = []
        walk: str | None = hit
        while walk is not None:
            chain.append(walk.rsplit(".", 1)[-1])
            walk = parents[walk]
        chain.reverse()
        site = blocking[hit]
        key = (site.qualname, site.raw)
        if key in grouped:
            grouped[key][1].append(handler.rsplit(".", 1)[-1])
        else:
            grouped[key] = (site, [handler.rsplit(".", 1)[-1]], chain)

    findings: list[Finding] = []
    for (site_fn, raw), (site, names, chain) in sorted(grouped.items()):
        shown = ", ".join(sorted(set(names))[:4])
        more = len(set(names)) - len(sorted(set(names))[:4])
        suffix = f" (+{more} more)" if more > 0 else ""
        fn_short = ".".join(site_fn.rsplit(".", 2)[-2:])
        findings.append(
            Finding(
                rule=RULE,
                path=site.path,
                line=site.line,
                message=(
                    f"blocking call {raw}() ({site.reason}) is reachable from "
                    f"HTTP handler(s) {shown}{suffix} via "
                    f"{' -> '.join(chain)}; move it off the request path, bound "
                    "it with a timeout, or justify it with an allow-comment"
                ),
                scope=f"{fn_short}:{raw}",
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.scope))
    return findings
