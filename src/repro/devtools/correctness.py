"""Correctness lints: the mistakes this codebase has actually made.

* ``broad-except`` — a bare ``except:`` / ``except Exception:`` whose
  handler neither re-raises, nor logs, nor counts the error.  Swallowed
  failures are invisible failures; the API boundary is allowed to
  translate exceptions *because* it logs and bumps ``api.errors``.
* ``mutable-default`` — ``def f(x=[])`` shares one list across calls.
* ``no-print`` — library code reports through ``repro.obs`` loggers,
  never ``print()`` (this rule absorbed ``tools/check_no_print.py``).
* ``geo-range`` — literal latitudes outside [-90, 90] or longitudes
  outside [-180, 180] passed to geographic constructors or lat/lng
  keywords; a transposed ``GeoPoint(lng, lat)`` fails at runtime only
  for |lng| > 90, so the static check catches what tests may miss.
* ``no-sleep`` — ``time.sleep()`` in library code blocks a real thread
  and makes tests slow and flaky; time-shaped behaviour goes through
  the injectable ``repro.resilience.Clock`` instead.  The one
  sanctioned call site (``SystemClock.sleep``) carries an inline
  ``# devtools: allow[no-sleep]``.
"""

from __future__ import annotations

import ast

from repro.devtools.findings import Finding, SourceModule, scope_of

RULE_BROAD_EXCEPT = "broad-except"
RULE_MUTABLE_DEFAULT = "mutable-default"
RULE_NO_PRINT = "no-print"
RULE_GEO_RANGE = "geo-range"
RULE_NO_SLEEP = "no-sleep"

_BROAD_NAMES = frozenset({"Exception", "BaseException"})
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque", "defaultdict"})

_LAT_KEYWORDS = frozenset({"lat", "latitude", "min_lat", "max_lat", "center_lat"})
_LNG_KEYWORDS = frozenset(
    {"lng", "lon", "longitude", "min_lng", "max_lng", "center_lng"}
)


def _type_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    if _type_name(handler.type) in _BROAD_NAMES:
        return True
    if isinstance(handler.type, ast.Tuple):
        return any(_type_name(el) in _BROAD_NAMES for el in handler.type.elts)
    return False


def _handler_accounts_for_error(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises, logs, or counts the failure."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _LOG_METHODS:
                return True
            if node.func.attr == "inc":  # error-counter bump
                return True
    return False


def check_broad_except(
    modules: list[SourceModule], scope_cache: dict | None = None
) -> list[Finding]:
    cache: dict = scope_cache if scope_cache is not None else {}
    findings: list[Finding] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node) or _handler_accounts_for_error(node):
                continue
            if module.allows(RULE_BROAD_EXCEPT, node.lineno):
                continue
            caught = "bare except" if node.type is None else f"except {_type_name(node.type) or '...'}"
            findings.append(
                Finding(
                    rule=RULE_BROAD_EXCEPT,
                    path=module.rel_path,
                    line=node.lineno,
                    message=(
                        f"{caught} swallows the error: re-raise, log via "
                        f"repro.obs.get_logger, or count it — or narrow the clause"
                    ),
                    scope=scope_of(module, node.lineno, cache),
                )
            )
    return findings


def check_mutable_defaults(
    modules: list[SourceModule], scope_cache: dict | None = None
) -> list[Finding]:
    cache: dict = scope_cache if scope_cache is not None else {}
    findings: list[Finding] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                bad = isinstance(default, (ast.List, ast.Dict, ast.Set))
                if isinstance(default, ast.Call) and isinstance(default.func, ast.Name):
                    bad = bad or default.func.id in _MUTABLE_CALLS
                if not bad or module.allows(RULE_MUTABLE_DEFAULT, default.lineno):
                    continue
                findings.append(
                    Finding(
                        rule=RULE_MUTABLE_DEFAULT,
                        path=module.rel_path,
                        line=default.lineno,
                        message=(
                            f"mutable default argument in {node.name}(): the object "
                            f"is shared across calls; default to None instead"
                        ),
                        scope=scope_of(module, node.lineno, cache),
                    )
                )
    return findings


def check_no_print(
    modules: list[SourceModule], scope_cache: dict | None = None
) -> list[Finding]:
    cache: dict = scope_cache if scope_cache is not None else {}
    findings: list[Finding] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                continue
            if module.allows(RULE_NO_PRINT, node.lineno):
                continue
            findings.append(
                Finding(
                    rule=RULE_NO_PRINT,
                    path=module.rel_path,
                    line=node.lineno,
                    message=(
                        "print() in library code: use repro.obs.get_logger "
                        "(or obs.console for CLI-facing output)"
                    ),
                    scope=scope_of(module, node.lineno, cache),
                )
            )
    return findings


def check_no_sleep(
    modules: list[SourceModule], scope_cache: dict | None = None
) -> list[Finding]:
    """Flag ``time.sleep(...)`` calls — including ones through a
    ``from time import sleep`` alias — anywhere in library code."""
    cache: dict = scope_cache if scope_cache is not None else {}
    findings: list[Finding] = []
    for module in modules:
        # Names that ``from time import sleep [as alias]`` bound locally.
        sleep_aliases: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        sleep_aliases.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_sleep = (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ) or (isinstance(func, ast.Name) and func.id in sleep_aliases)
            if not is_sleep:
                continue
            if module.allows(RULE_NO_SLEEP, node.lineno):
                continue
            findings.append(
                Finding(
                    rule=RULE_NO_SLEEP,
                    path=module.rel_path,
                    line=node.lineno,
                    message=(
                        "time.sleep() blocks a real thread: route waits through "
                        "the injectable repro.resilience.Clock so simulated time "
                        "can stand in (SystemClock.sleep is the one allowed site)"
                    ),
                    scope=scope_of(module, node.lineno, cache),
                )
            )
    return findings


def _literal_number(node: ast.AST) -> float | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _literal_number(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    return None


def _geo_violation(kind: str, value: float) -> str | None:
    if kind == "lat" and not (-90.0 <= value <= 90.0):
        return f"latitude literal {value:g} outside [-90, 90]"
    if kind == "lng" and not (-180.0 <= value <= 180.0):
        return f"longitude literal {value:g} outside [-180, 180]"
    return None


def check_geo_literals(
    modules: list[SourceModule], scope_cache: dict | None = None
) -> list[Finding]:
    """Out-of-range lat/lng literal heuristics at geo call sites."""
    cache: dict = scope_cache if scope_cache is not None else {}
    # Positional argument meanings of the geographic constructors.
    positional = {
        "GeoPoint": ("lat", "lng"),
        "BoundingBox": ("lat", "lng", "lat", "lng"),
    }
    findings: list[Finding] = []

    def report(module: SourceModule, line: int, message: str) -> None:
        if module.allows(RULE_GEO_RANGE, line):
            return
        findings.append(
            Finding(
                rule=RULE_GEO_RANGE,
                path=module.rel_path,
                line=line,
                message=message,
                scope=scope_of(module, line, cache),
            )
        )

    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func_name = _type_name(node.func)
            kinds = positional.get(func_name)
            if kinds is not None:
                for kind, arg in zip(kinds, node.args):
                    value = _literal_number(arg)
                    if value is None:
                        continue
                    problem = _geo_violation(kind, value)
                    if problem:
                        report(
                            module,
                            arg.lineno,
                            f"{problem} in {func_name}(...) — lat/lng transposed?",
                        )
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                kind = (
                    "lat"
                    if keyword.arg in _LAT_KEYWORDS
                    else "lng"
                    if keyword.arg in _LNG_KEYWORDS
                    else None
                )
                if kind is None:
                    continue
                value = _literal_number(keyword.value)
                if value is None:
                    continue
                problem = _geo_violation(kind, value)
                if problem:
                    report(module, keyword.value.lineno, f"{problem} ({keyword.arg}=...)")
    return findings
