"""Static-analysis suite guarding the platform's architecture.

Four families of AST-based checks keep the codebase honest as it
grows (``docs/static_analysis.md`` has the full rule catalogue):

* **layer-boundary** — the package-dependency DAG (geo/imaging at the
  bottom, features/ml/index/db mid, core above, api/edge/crowd/analysis
  on top, ``obs`` importable everywhere) is machine-checked, including
  lazy function-local imports.
* **concurrency** — module-level mutable state mutated outside a lock,
  and unlocked mutations of index / metrics-registry internals.
* **correctness** — silently-swallowing broad ``except`` clauses,
  mutable default arguments, ``print()`` in library code, and
  out-of-range latitude/longitude literals.
* **typecheck** — a mypy ratchet over an allowlist of fully-annotated
  modules (``repro.devtools.typecheck``).

Run the suite with ``python -m repro.devtools.check`` (or just
``python -m repro.devtools``).  Findings are suppressed either by an
inline ``# devtools: allow[rule-id]`` comment on (or directly above)
the offending line, or by a checked-in baseline file of fingerprints
(``tools/devtools_baseline.json``); only *new* findings fail the run.

This package deliberately imports nothing from the rest of ``repro`` —
it sits outside the layer DAG it enforces.
"""

from __future__ import annotations

from typing import Any

from repro.devtools.findings import Finding, load_baseline, write_baseline
from repro.devtools.layers import DEFAULT_LAYER_CONFIG, LayerConfig, check_layers
from repro.devtools.concurrency import check_concurrency
from repro.devtools.correctness import (
    check_broad_except,
    check_geo_literals,
    check_mutable_defaults,
    check_no_print,
)

__all__ = [
    "CheckResult",
    "DEFAULT_LAYER_CONFIG",
    "Finding",
    "LayerConfig",
    "check_broad_except",
    "check_concurrency",
    "check_geo_literals",
    "check_layers",
    "check_mutable_defaults",
    "check_no_print",
    "load_baseline",
    "run_check",
    "write_baseline",
]


def __getattr__(name: str) -> Any:
    # check.py is imported lazily so ``python -m repro.devtools.check``
    # doesn't trip runpy's found-in-sys.modules warning.
    if name in ("CheckResult", "run_check"):
        from repro.devtools import check

        return getattr(check, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
