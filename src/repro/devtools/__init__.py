"""Static-analysis suite guarding the platform's architecture.

Two generations of checks keep the codebase honest as it grows
(``docs/static_analysis.md`` has the full rule catalogue).

Per-file AST lints (v1):

* **layer-boundary** — the package-dependency DAG (geo/imaging at the
  bottom, features/ml/index/db mid, core above, api/edge/crowd/analysis
  on top, ``obs`` importable everywhere) is machine-checked, including
  lazy function-local imports.
* **concurrency** — module-level mutable state mutated outside a lock,
  and unlocked mutations of index / metrics-registry internals.
* **correctness** — silently-swallowing broad ``except`` clauses,
  mutable default arguments, ``print()`` in library code,
  out-of-range latitude/longitude literals, and real ``time.sleep``.

Whole-program analyses (v2), built on a project-wide symbol table and
call graph (``repro.devtools.callgraph``):

* **lock-order** — extracts the lock-acquisition graph across the
  whole tree (interprocedurally, via a may-acquire fixpoint), fails on
  cycles and on locks held across blocking IO/sleep/policy calls.
  Runtime companion: ``repro.devtools.sanitizers`` ("tsan-lite"),
  enabled with ``REPRO_SANITIZE=1 pytest``.
* **exception-flow** — infers what each public api/edge/db entry point
  can raise and fails when a type escapes both the ``repro.errors``
  taxonomy and every declared retryable set.
* **determinism** — wall-clock reads, unseeded/global RNG, raw
  entropy, and unordered-set iteration outside the sanctioned
  ``resilience.Clock`` / seeded-RNG seams.
* **dead-code** — public module-level symbols nothing in src or
  examples references.
* **typecheck** — a mypy ratchet over an allowlist of fully-annotated
  modules (``repro.devtools.typecheck``).

Run the suite with ``python -m repro.devtools.check`` (or just
``python -m repro.devtools``).  Findings are suppressed either by an
inline ``# devtools: allow[rule-id]`` comment on (or directly above)
the offending line, or by a checked-in baseline file of fingerprints
(``tools/devtools_baseline.json``); only *new* findings fail the run.

This package deliberately imports nothing from the rest of ``repro`` —
it sits outside the layer DAG it enforces.  (The runtime sanitizer
reaches platform seams through ``importlib`` at install time only.)
"""

from __future__ import annotations

from typing import Any

from repro.devtools.findings import Finding, load_baseline, write_baseline
from repro.devtools.layers import DEFAULT_LAYER_CONFIG, LayerConfig, check_layers
from repro.devtools.callgraph import (
    CallGraph,
    SymbolTable,
    build_call_graph,
    build_symbol_table,
)
from repro.devtools.concurrency import check_concurrency
from repro.devtools.correctness import (
    check_broad_except,
    check_geo_literals,
    check_mutable_defaults,
    check_no_print,
)
from repro.devtools.deadcode import check_dead_code
from repro.devtools.determinism import check_determinism
from repro.devtools.exceptions import analyze_exceptions, check_exception_flow
from repro.devtools.lockorder import analyze_locks, check_lock_order
from repro.devtools.sanitizers import LockOrderSanitizer, LockOrderViolation

__all__ = [
    "CallGraph",
    "CheckResult",
    "DEFAULT_LAYER_CONFIG",
    "Finding",
    "LayerConfig",
    "LockOrderSanitizer",
    "LockOrderViolation",
    "SymbolTable",
    "analyze_exceptions",
    "analyze_locks",
    "build_call_graph",
    "build_symbol_table",
    "check_broad_except",
    "check_concurrency",
    "check_dead_code",
    "check_determinism",
    "check_exception_flow",
    "check_geo_literals",
    "check_layers",
    "check_lock_order",
    "check_mutable_defaults",
    "check_no_print",
    "load_baseline",
    "run_check",
    "write_baseline",
]


def __getattr__(name: str) -> Any:
    # check.py is imported lazily so ``python -m repro.devtools.check``
    # doesn't trip runpy's found-in-sys.modules warning.
    if name in ("CheckResult", "run_check"):
        from repro.devtools import check

        return getattr(check, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
