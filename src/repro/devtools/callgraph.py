"""Whole-program symbol table and call graph over one package tree.

The first-generation lints see one line at a time; the properties that
matter now — lock-order inversions, exceptions escaping the taxonomy,
nondeterminism on result paths — are *whole-program* facts.  This
module builds the shared substrate the v2 passes stand on:

* :class:`SymbolTable` — every module-level function, class, and method
  under the scanned root, keyed by dotted qualname
  (``repro.index.rtree.RTree.insert``), plus each module's import map
  (local alias -> dotted target) with package re-exports resolved
  through ``__init__`` chains.
* :class:`CallGraph` — resolved call edges between those symbols,
  built from a deliberately *modest* type inference: local defs,
  import aliases, ``self``/``cls`` dispatch (base classes included),
  constructor results, parameter/variable annotations, and
  return-annotation chaining (``obs.metrics().counter(...)`` resolves
  through ``metrics() -> MetricsRegistry`` to
  ``MetricsRegistry.counter``).  Unresolvable calls are kept as
  :class:`CallSite` records with ``callee=None`` so downstream passes
  can still pattern-match external calls (file IO, ``time.sleep``).

Resolution is best-effort by design: a missed edge weakens an analysis
but never crashes it, which is the right trade for a lint suite that
must stay fast and dependency-free.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.findings import SourceModule

#: Symbol kinds recorded in the table.
KIND_FUNCTION = "function"
KIND_METHOD = "method"
KIND_CLASS = "class"

#: Decorators that turn a method into an attribute access.
_PROPERTY_DECORATORS = frozenset(
    {"property", "cached_property", "functools.cached_property"}
)


@dataclass(frozen=True, slots=True)
class Symbol:
    """One module-level function, class, or method."""

    qualname: str  # dotted: <module>.<Class>.<name> / <module>.<name>
    name: str
    kind: str  # function | class | method
    module: str  # dotted module the symbol is defined in
    path: str  # repo-relative path of the defining file
    line: int
    is_public: bool
    #: For methods/functions: the return annotation as written (best
    #: effort, dotted), or "".  For classes: "".
    returns: str = ""
    #: For classes: base-class names as written (dotted, unresolved).
    bases: tuple[str, ...] = ()
    #: Decorator expressions as written (dotted, best effort).
    decorators: tuple[str, ...] = ()

    @property
    def is_property(self) -> bool:
        """True for ``@property`` / ``@cached_property`` accessors —
        attribute *reads* whose type is the return annotation."""
        return any(dec in _PROPERTY_DECORATORS for dec in self.decorators)


@dataclass(slots=True)
class ModuleInfo:
    """Per-module facts the resolver needs."""

    dotted: str
    module: SourceModule
    #: local alias -> dotted target ("repro.obs", "repro.obs.metrics.Counter", ...)
    imports: dict[str, str] = field(default_factory=dict)
    #: names defined at module top level (functions/classes/assignments)
    local_names: set[str] = field(default_factory=set)
    #: module-level variable -> inferred class qualname (``_tracer = Tracer()``)
    var_types: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class CallSite:
    """One call expression, resolved or not."""

    caller: str  # qualname of the enclosing function/method ("<module>" scope uses the module dotted name)
    callee: str | None  # resolved qualname, or None
    #: dotted rendering of the call target as written (``self._file.write``)
    raw: str
    path: str
    line: int


class SymbolTable:
    """Symbols, modules, and the name-resolution machinery."""

    def __init__(self, top_package: str) -> None:
        self.top_package = top_package
        self.symbols: dict[str, Symbol] = {}
        self.modules: dict[str, ModuleInfo] = {}
        #: class qualname -> resolved base-class qualnames (best effort)
        self.class_bases: dict[str, tuple[str, ...]] = {}
        #: class qualname -> {method name -> method qualname}
        self.methods: dict[str, dict[str, str]] = {}
        #: class qualname -> {attr name -> inferred class qualname}
        self.attr_types: dict[str, dict[str, str]] = {}
        #: class qualname -> {container attr -> element class qualname}
        #: (``self._lsh: dict[str, LSHIndex]`` maps ``_lsh -> LSHIndex``,
        #: so ``self._lsh[key].query(...)`` dispatches correctly).
        self.attr_elem_types: dict[str, dict[str, str]] = {}

    # -- construction --------------------------------------------------------

    def module_for(self, dotted: str) -> ModuleInfo | None:
        return self.modules.get(dotted)

    def add_symbol(self, symbol: Symbol) -> None:
        # A package __init__ may define a function shadowing a submodule
        # name (repro.obs.metrics is both).  Symbols win at resolution
        # time, matching Python's own shadowing in that pattern.
        self.symbols[symbol.qualname] = symbol

    # -- resolution ----------------------------------------------------------

    def resolve_export(self, dotted: str, _seen: frozenset[str] = frozenset()) -> str | None:
        """Resolve ``dotted`` to a symbol qualname, chasing re-exports.

        ``repro.resilience.Retry`` resolves through the package
        ``__init__``'s import of ``repro.resilience.policies.Retry``.
        Returns ``None`` for plain modules and unknown names.
        """
        if dotted in _seen:
            return None
        if dotted in self.symbols:
            return dotted
        head, _, tail = dotted.rpartition(".")
        if not head or not tail:
            return None
        info = self.modules.get(head)
        if info is not None and tail in info.imports:
            return self.resolve_export(info.imports[tail], _seen | {dotted})
        return None

    def method_on(self, class_qualname: str, name: str, _seen: frozenset[str] = frozenset()) -> str | None:
        """Find ``name`` on a class or its (resolved) bases."""
        if class_qualname in _seen:
            return None
        methods = self.methods.get(class_qualname, {})
        if name in methods:
            return methods[name]
        for base in self.class_bases.get(class_qualname, ()):
            found = self.method_on(base, name, _seen | {class_qualname})
            if found is not None:
                return found
        return None

    def is_class(self, qualname: str) -> bool:
        symbol = self.symbols.get(qualname)
        return symbol is not None and symbol.kind == KIND_CLASS


class CallGraph:
    """Resolved call edges plus every raw call site."""

    def __init__(self) -> None:
        self.edges: dict[str, set[str]] = {}
        self.sites: list[CallSite] = []
        #: caller -> its call sites (resolved and not)
        self.sites_by_caller: dict[str, list[CallSite]] = {}

    def add(self, site: CallSite) -> None:
        self.sites.append(site)
        self.sites_by_caller.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self.edges.setdefault(site.caller, set()).add(site.callee)

    def callees(self, qualname: str) -> frozenset[str]:
        return frozenset(self.edges.get(qualname, set()))

    def reachable(self, roots: tuple[str, ...]) -> frozenset[str]:
        """Every qualname reachable from ``roots`` along call edges."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return frozenset(seen)


def _dotted_of(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute/Call chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        inner = _dotted_of(node.func)
        if inner:
            parts.append(f"{inner}()")
    return ".".join(reversed(parts))


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """Dotted renderings of a def's decorators (``@router.route(...)``
    renders its callee, ``router.route``)."""
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = _dotted_of(target)
        if dotted:
            names.append(dotted)
    return tuple(names)


def _annotation_name(node: ast.AST | None) -> str:
    """The class name an annotation points at, stripped of Optional /
    union noise (``Clock | None`` -> ``Clock``); "" when unusable."""
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return ""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_name(node.left)
        if left and left != "None":
            return left
        return _annotation_name(node.right)
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = _dotted_of(node)
        return "" if dotted == "None" else dotted
    if isinstance(node, ast.Subscript):
        return ""  # containers: not a class we can dispatch on
    return ""


_SEQUENCE_CONTAINERS = frozenset(
    {"list", "List", "set", "Set", "frozenset", "FrozenSet", "deque", "Deque"}
)
_MAPPING_CONTAINERS = frozenset({"dict", "Dict", "defaultdict", "DefaultDict"})


def _container_elem_annotation(node: ast.AST | None) -> str:
    """The element/value class of a container annotation:
    ``dict[str, LSHIndex]`` -> ``LSHIndex``, ``list[Foo]`` -> ``Foo``."""
    if not isinstance(node, ast.Subscript):
        return ""
    base = _dotted_of(node.value).rpartition(".")[2]
    inner = node.slice
    if base in _MAPPING_CONTAINERS:
        if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
            return _annotation_name(inner.elts[1])
        return ""
    if base in _SEQUENCE_CONTAINERS:
        return _annotation_name(inner)
    return ""


def module_dotted(root: Path, top_package: str, path: Path) -> str | None:
    """Dotted module name of ``path`` under ``root`` (None if outside)."""
    try:
        rel = path.relative_to(root).parts
    except ValueError:
        return None
    parts = [top_package, *rel]
    parts[-1] = parts[-1].removesuffix(".py")
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _collect_imports(info: ModuleInfo, top_package: str) -> None:
    """Fill ``info.imports`` from the module's import statements
    (function-local imports included — lazy imports resolve too)."""
    own_parts = info.dotted.split(".")
    for node in ast.walk(info.module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                info.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                if node.level > len(own_parts):
                    continue
                # For a module repro.a.b, "from . import x" means repro.a.x;
                # for the package repro.a (__init__), it means repro.a.x too.
                keep = len(own_parts) - node.level + (1 if _is_package(info) else 0)
                base = own_parts[:keep]
                stem = ".".join(base + ([node.module] if node.module else []))
            else:
                stem = node.module or ""
            if not stem:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = f"{stem}.{alias.name}"


def _is_package(info: ModuleInfo) -> bool:
    return info.module.rel_path.endswith("__init__.py")


def build_symbol_table(
    modules: list[SourceModule], root: Path, top_package: str | None = None
) -> SymbolTable:
    """Index every def/class under ``root`` and each module's imports."""
    top = top_package if top_package is not None else root.name
    table = SymbolTable(top)

    for module in modules:
        dotted = module_dotted(root, top, module.path)
        if dotted is None:
            continue
        info = ModuleInfo(dotted=dotted, module=module)
        table.modules[dotted] = info
        _collect_imports(info, top)

        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.local_names.add(node.name)
                table.add_symbol(
                    Symbol(
                        qualname=f"{dotted}.{node.name}",
                        name=node.name,
                        kind=KIND_FUNCTION,
                        module=dotted,
                        path=module.rel_path,
                        line=node.lineno,
                        is_public=not node.name.startswith("_"),
                        returns=_annotation_name(node.returns),
                        decorators=_decorator_names(node),
                    )
                )
            elif isinstance(node, ast.ClassDef):
                info.local_names.add(node.name)
                class_qualname = f"{dotted}.{node.name}"
                table.add_symbol(
                    Symbol(
                        qualname=class_qualname,
                        name=node.name,
                        kind=KIND_CLASS,
                        module=dotted,
                        path=module.rel_path,
                        line=node.lineno,
                        is_public=not node.name.startswith("_"),
                        bases=tuple(
                            b for b in (_dotted_of(base) for base in node.bases) if b
                        ),
                    )
                )
                methods: dict[str, str] = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qualname = f"{class_qualname}.{item.name}"
                        methods[item.name] = method_qualname
                        table.add_symbol(
                            Symbol(
                                qualname=method_qualname,
                                name=item.name,
                                kind=KIND_METHOD,
                                module=dotted,
                                path=module.rel_path,
                                line=item.lineno,
                                is_public=not item.name.startswith("_"),
                                returns=_annotation_name(item.returns),
                                decorators=_decorator_names(item),
                            )
                        )
                table.methods[class_qualname] = methods
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info.local_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                info.local_names.add(node.target.id)

    # Second pass: resolve class bases and infer self-attribute and
    # module-variable types, now that every module's symbols and
    # imports exist.
    for dotted, info in table.modules.items():
        for node in info.module.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                owner = _callee_class(table, info, None, node.value)
                if owner is not None:
                    info.var_types.setdefault(node.targets[0].id, owner)
                continue
            if not isinstance(node, ast.ClassDef):
                continue
            class_qualname = f"{dotted}.{node.name}"
            resolved_bases: list[str] = []
            for base in table.symbols[class_qualname].bases:
                target = _resolve_name(table, info, base)
                if target is not None and table.is_class(target):
                    resolved_bases.append(target)
            table.class_bases[class_qualname] = tuple(resolved_bases)
            attr_types, elem_types = _infer_attr_types(
                table, info, class_qualname, node
            )
            table.attr_types[class_qualname] = attr_types
            table.attr_elem_types[class_qualname] = elem_types
    return table


def _resolve_name(table: SymbolTable, info: ModuleInfo, dotted: str) -> str | None:
    """Resolve a dotted name written in ``info``'s namespace to a symbol
    qualname (local def > import alias > absolute)."""
    if not dotted:
        return None
    head, _, rest = dotted.partition(".")
    if head in info.local_names:
        candidate = f"{info.dotted}.{dotted}"
        return table.resolve_export(candidate)
    if head in info.imports:
        target = info.imports[head]
        candidate = f"{target}.{rest}" if rest else target
        return table.resolve_export(candidate)
    if dotted.startswith(f"{table.top_package}."):
        return table.resolve_export(dotted)
    return None


def _infer_attr_types(
    table: SymbolTable, info: ModuleInfo, class_qualname: str, node: ast.ClassDef
) -> tuple[dict[str, str], dict[str, str]]:
    """``(self.<attr> -> class qualname, container attr -> element class
    qualname)`` from annotated assigns and constructor-call assigns
    anywhere in the class body."""
    types: dict[str, str] = {}
    elem_types: dict[str, str] = {}

    def note(attr: str, value: ast.expr | None, annotation: ast.expr | None) -> None:
        target = None
        if annotation is not None:
            name = _annotation_name(annotation)
            if name:
                target = _resolve_name(table, info, name)
            elem_name = _container_elem_annotation(annotation)
            if elem_name:
                elem = _resolve_name(table, info, elem_name)
                if elem is not None and table.is_class(elem):
                    elem_types.setdefault(attr, elem)
        if target is None and isinstance(value, ast.Call):
            target = _callee_class(table, info, class_qualname, value)
        if target is not None and table.is_class(target):
            types.setdefault(attr, target)

    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target_node = stmt.targets[0]
            if (
                isinstance(target_node, ast.Attribute)
                and isinstance(target_node.value, ast.Name)
                and target_node.value.id == "self"
            ):
                note(target_node.attr, stmt.value, None)
        elif isinstance(stmt, ast.AnnAssign):
            target_node = stmt.target
            if (
                isinstance(target_node, ast.Attribute)
                and isinstance(target_node.value, ast.Name)
                and target_node.value.id == "self"
            ):
                note(target_node.attr, stmt.value, stmt.annotation)
    # Annotated-parameter assigns: ``self.platform = platform`` where
    # the enclosing method declares ``platform: TVDP``.  Plain-name
    # assigns carry no annotation of their own, so without this the
    # service -> platform edge (and every guard inferred through it)
    # would be invisible to the whole-program passes.
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        arguments = method.args
        params: dict[str, ast.expr] = {
            arg.arg: arg.annotation
            for arg in [*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs]
            if arg.annotation is not None
        }
        if not params:
            continue
        for stmt in ast.walk(method):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Attribute)
                and isinstance(stmt.targets[0].value, ast.Name)
                and stmt.targets[0].value.id == "self"
                and isinstance(stmt.value, ast.Name)
                and stmt.value.id in params
            ):
                note(stmt.targets[0].attr, None, params[stmt.value.id])
    return types, elem_types


def _callee_class(
    table: SymbolTable, info: ModuleInfo, class_context: str | None, call: ast.Call
) -> str | None:
    """The class qualname a call expression evaluates to: either the
    constructed class, or the resolved return annotation of the callee."""
    callee = _resolve_call_target(table, info, class_context, call.func, locals_map=None)
    if callee is None:
        return None
    symbol = table.symbols.get(callee)
    if symbol is None:
        return None
    if symbol.kind == KIND_CLASS:
        return callee
    if symbol.returns:
        defining = table.modules.get(symbol.module)
        if defining is not None:
            returned = _resolve_name(table, defining, symbol.returns)
            if returned is not None and table.is_class(returned):
                return returned
    return None


def attr_type_on(table: SymbolTable, owner: str, attr: str) -> str | None:
    """The class qualname of ``<owner instance>.<attr>`` — inferred
    instance attributes first, then ``@property`` accessors whose return
    annotation resolves to a known class."""
    inferred = table.attr_types.get(owner, {}).get(attr)
    if inferred is not None:
        return inferred
    method = table.method_on(owner, attr)
    if method is None:
        return None
    symbol = table.symbols.get(method)
    if symbol is None or not symbol.is_property or not symbol.returns:
        return None
    defining = table.modules.get(symbol.module)
    if defining is None:
        return None
    returned = _resolve_name(table, defining, symbol.returns)
    if returned is not None and table.is_class(returned):
        return returned
    return None


def _resolve_call_target(
    table: SymbolTable,
    info: ModuleInfo,
    class_context: str | None,
    func: ast.expr,
    locals_map: dict[str, str] | None,
) -> str | None:
    """Resolve one call's target expression to a symbol qualname."""
    if isinstance(func, ast.Name):
        if locals_map and func.id in locals_map:
            return table.method_on(locals_map[func.id], "__call__")
        return _resolve_name(table, info, func.id)

    if not isinstance(func, ast.Attribute):
        return None

    # Walk the attribute chain down to its base expression.
    chain: list[str] = []
    base: ast.expr = func
    while isinstance(base, ast.Attribute):
        chain.append(base.attr)
        base = base.value
    chain.reverse()  # attr access order, excluding the base

    owner: str | None = None  # class qualname the chain is being applied to
    start = 0
    if isinstance(base, ast.Name):
        if base.id in ("self", "cls") and class_context is not None:
            owner = class_context
        elif locals_map is not None and base.id in locals_map:
            owner = locals_map[base.id]
        elif base.id in info.var_types and chain:
            owner = info.var_types[base.id]
        else:
            # Module alias / local symbol: fold leading attrs into a
            # dotted name until something resolves.
            dotted = base.id
            resolved = _resolve_name(table, info, dotted)
            while resolved is None and start < len(chain) - 1:
                dotted = f"{dotted}.{chain[start]}"
                start += 1
                resolved = _resolve_name(table, info, dotted)
            if resolved is None:
                # Maybe the full chain is a module attr (mod.sub.fn).
                full = ".".join([base.id, *chain])
                return _resolve_name(table, info, full)
            symbol = table.symbols.get(resolved)
            if symbol is None:
                return None
            if start == len(chain):
                return resolved
            if symbol.kind == KIND_CLASS:
                owner = resolved
            else:
                return None
    elif isinstance(base, ast.Call):
        owner = _callee_class(table, info, class_context, base)
    else:
        return None

    if owner is None:
        return None

    # Apply the remaining attribute chain via attr types, @property
    # return annotations, and methods.
    for i, attr in enumerate(chain[start:]):
        last = i == len(chain[start:]) - 1
        if last:
            return table.method_on(owner, attr)
        next_owner = attr_type_on(table, owner, attr)
        if next_owner is None:
            return None
        owner = next_owner
    return None


def _local_types(
    table: SymbolTable,
    info: ModuleInfo,
    class_context: str | None,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, str]:
    """variable/parameter name -> class qualname, best effort."""
    types: dict[str, str] = {}
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        name = _annotation_name(arg.annotation)
        if name:
            resolved = _resolve_name(table, info, name)
            if resolved is not None and table.is_class(resolved):
                types[arg.arg] = resolved
    for stmt in ast.walk(fn):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Call):
                owner = _callee_class(table, info, class_context, stmt.value)
                if owner is not None:
                    types.setdefault(target.id, owner)
            elif (
                isinstance(target, ast.Name)
                and isinstance(stmt.value, ast.Subscript)
                and class_context is not None
            ):
                # ``lsh = self._lsh[key]``: the annotated container's
                # element type is the variable's type.
                base = stmt.value.value
                if (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                ):
                    elem = table.attr_elem_types.get(class_context, {}).get(base.attr)
                    if elem is not None:
                        types.setdefault(target.id, elem)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name = _annotation_name(stmt.annotation)
            if name:
                resolved = _resolve_name(table, info, name)
                if resolved is not None and table.is_class(resolved):
                    types.setdefault(stmt.target.id, resolved)
    return types


def iter_functions(
    table: SymbolTable,
) -> list[tuple[ModuleInfo, str | None, str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function/method in the table with its context:
    ``(module info, enclosing class qualname or None, qualname, node)``.

    Nested functions (closures) are attributed to their enclosing
    def's qualname — their calls happen on behalf of the outer scope.
    """
    out: list[tuple[ModuleInfo, str | None, str, ast.FunctionDef | ast.AsyncFunctionDef]] = []
    for dotted, info in table.modules.items():
        for node in info.module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((info, None, f"{dotted}.{node.name}", node))
            elif isinstance(node, ast.ClassDef):
                class_qualname = f"{dotted}.{node.name}"
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        out.append(
                            (info, class_qualname, f"{class_qualname}.{item.name}", item)
                        )
    return out


def _partial_bound_target(
    table: SymbolTable,
    info: ModuleInfo,
    class_context: str | None,
    call: ast.Call,
    locals_map: dict[str, str] | None,
) -> str | None:
    """For ``functools.partial(fn, ...)`` calls, the qualname ``fn``
    resolves to — the partial *will* call it, so the edge belongs in
    the graph even though the call expression targets ``partial``."""
    dotted = _dotted_of(call.func)
    if dotted == "partial":
        if info.imports.get("partial") != "functools.partial":
            return None
    elif dotted.endswith(".partial"):
        head = dotted.rsplit(".", 1)[0]
        if info.imports.get(head, head) != "functools":
            return None
    else:
        return None
    if not call.args:
        return None
    return _resolve_call_target(table, info, class_context, call.args[0], locals_map)


def _callable_arg_target(
    table: SymbolTable,
    info: ModuleInfo,
    class_context: str | None,
    arg: ast.expr,
    locals_map: dict[str, str] | None,
) -> str | None:
    """A function/method qualname an *argument expression* references
    without calling — ``self._execute(query, self._run_sharded)`` passes
    the bound method ``_run_sharded`` to be invoked by the callee, so the
    address-taken reference belongs in the graph as a may-call edge."""
    if isinstance(arg, ast.Attribute):
        resolved = _resolve_call_target(table, info, class_context, arg, locals_map)
    elif isinstance(arg, ast.Name):
        resolved = _resolve_name(table, info, arg.id)
    else:
        return None
    if resolved is None:
        return None
    symbol = table.symbols.get(resolved)
    if symbol is None or symbol.kind not in (KIND_FUNCTION, KIND_METHOD):
        return None
    return resolved


def build_call_graph(table: SymbolTable) -> CallGraph:
    """Resolve every call expression in every function/method."""
    graph = CallGraph()
    for info, class_context, qualname, fn in iter_functions(table):
        locals_map = _local_types(table, info, class_context, fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            callee = _resolve_call_target(
                table, info, class_context, node.func, locals_map
            )
            if callee is None:
                callee = _partial_bound_target(
                    table, info, class_context, node, locals_map
                )
            # Constructor call: the work happens in __init__.
            if callee is not None and table.is_class(callee):
                init = table.method_on(callee, "__init__")
                if init is not None:
                    callee = init
            graph.add(
                CallSite(
                    caller=qualname,
                    callee=callee,
                    raw=_dotted_of(node.func),
                    path=info.module.rel_path,
                    line=node.lineno,
                )
            )
            # Higher-order: callable references passed as arguments may
            # be invoked by the callee (callbacks, merge fns, handlers).
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                taken = _callable_arg_target(
                    table, info, class_context, arg, locals_map
                )
                if taken is not None and taken != callee:
                    graph.add(
                        CallSite(
                            caller=qualname,
                            callee=taken,
                            raw=_dotted_of(arg),
                            path=info.module.rel_path,
                            line=node.lineno,
                        )
                    )
    return graph


def resolve_locals(
    table: SymbolTable,
    info: ModuleInfo,
    class_context: str | None,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, str]:
    """Public wrapper over the local type inference (used by passes that
    need per-function resolution beyond the prebuilt graph)."""
    return _local_types(table, info, class_context, fn)


def resolve_call(
    table: SymbolTable,
    info: ModuleInfo,
    class_context: str | None,
    func: ast.expr,
    locals_map: dict[str, str] | None = None,
) -> str | None:
    """Public wrapper over call-target resolution."""
    return _resolve_call_target(table, info, class_context, func, locals_map)
