"""SARIF 2.1.0 export and GitHub workflow annotations for check runs.

CI uploads the SARIF document as an artifact (and code-scanning UIs can
ingest it directly); the annotation lines use GitHub's workflow-command
syntax so new findings surface inline on the pull-request diff.
"""

from __future__ import annotations

from repro.devtools.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: One-line rule descriptions for the SARIF rule metadata.
RULE_DESCRIPTIONS: dict[str, str] = {
    "layer-boundary": "Import crosses the declared layer DAG.",
    "module-mutable-state": "Module-level mutable state mutated outside a lock.",
    "unlocked-mutation": "Unlocked self-state mutation in a concurrency-critical module.",
    "broad-except": "Broad exception handler swallows errors.",
    "mutable-default": "Mutable default argument.",
    "no-print": "print() in library code (use repro.obs logging).",
    "geo-range": "Latitude/longitude literal out of range.",
    "no-sleep": "Raw sleep in library code (use the Clock seam).",
    "lock-order": "Lock-order inversion or lock held across blocking work.",
    "exception-flow": "Exception escaping an entry point outside the taxonomy.",
    "determinism": "Nondeterminism (clock, RNG, set order) on a result path.",
    "dead-code": "Unreferenced public symbol.",
    "picklability": "Shard-boundary object holds unpicklable state.",
    "process-safety": "Unclassified module-global state reachable from the data plane.",
    "hot-path": "Per-item work on a query path outside the cost model.",
    "thread-escape": "Shared mutable state mutated without a consistent lock on a concurrent path.",
    "atomicity": "Check-then-act / read-modify-write gap on lock-guarded shared state.",
    "blocking-in-handler": "Blocking call reachable from an HTTP handler.",
}


def to_sarif(findings: list[Finding], rules: tuple[str, ...]) -> dict:
    """A single-run SARIF document for ``findings``."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.devtools.check",
                        "informationUri": "docs/static_analysis.md",
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {
                                    "text": RULE_DESCRIPTIONS.get(rule, rule)
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": finding.rule,
                        "level": "error",
                        "message": {"text": finding.message},
                        "partialFingerprints": {
                            "devtoolsFingerprint/v1": finding.fingerprint
                        },
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {"uri": finding.path},
                                    "region": {"startLine": max(1, finding.line)},
                                }
                            }
                        ],
                    }
                    for finding in findings
                ],
            }
        ],
    }


def _sanitize(text: str) -> str:
    """Escape the characters GitHub's command parser treats specially."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def github_annotations(findings: list[Finding]) -> list[str]:
    """``::error`` workflow-command lines, one per finding."""
    return [
        f"::error file={_sanitize(f.path)},line={max(1, f.line)},"
        f"title={_sanitize(f.rule)}::{_sanitize(f.message)}"
        for f in findings
    ]
