"""Atomicity lints over state the escape pass proved shared.

:mod:`repro.devtools.threadescape` guarantees every mutation of a
``lock-guarded`` attribute holds its designated lock; this pass closes
the remaining gaps that make individually-locked operations racy in
composition:

* **check-then-act** — a membership / ``is None`` / ``.get()`` /
  truthiness test of a guarded attribute *outside* its lock, followed
  by a mutation of the same attribute later in the function: the state
  can change between the check and the act.  Hold the lock across both.
* **read-gap** (guarded-write / unguarded-read) — iteration, ``len()``,
  membership, ``.items()``-style traversal, or copy-construction of a
  guarded attribute outside its lock: a concurrent mutation under the
  lock can resize the container mid-iteration.  Single-key subscript
  reads are deliberately exempt — one dict lookup is atomic under the
  GIL and flagging it would drown the signal.
* **compound ops** — ``+=`` / ``setdefault`` on a guarded attribute
  outside its lock (read-modify-write torn between the read and the
  write).
* **publish-before-init** — a shared attribute is assigned a freshly
  constructed object with no lock held and then further initialised
  through the attribute: other threads can observe the
  partially-constructed object between the two statements.
"""

from __future__ import annotations

import ast

from repro.devtools.callgraph import (
    CallGraph,
    SymbolTable,
    attr_type_on,
    iter_functions,
    resolve_call,
    resolve_locals,
)
from repro.devtools.findings import Finding, SourceModule
from repro.devtools.lockorder import _resolve_lock
from repro.devtools.threadescape import (
    CTOR_EXEMPT_METHODS,
    DEFAULT_CONCURRENT_ROOTS,
    MUTATING_METHODS,
    EscapeAnalysis,
    _owner_of_base,
    analyze_escape,
)

RULE = "atomicity"

#: Builtins whose single-argument call traverses the whole container.
_TRAVERSING_CALLS = frozenset(
    {"len", "sorted", "list", "dict", "set", "tuple", "frozenset", "sum", "min", "max", "any", "all"}
)

#: Attribute methods that traverse the receiver.
_TRAVERSING_METHODS = frozenset({"items", "keys", "values", "copy"})


def _attr_access(
    table,
    class_context: str | None,
    locals_map: dict[str, str],
    node: ast.AST,
) -> tuple[str, str] | None:
    """``(owner class, attr)`` when ``node`` reads a tracked attribute
    (``self.X`` or ``typed_local.X``)."""
    if not isinstance(node, ast.Attribute):
        return None
    base = node.value
    if isinstance(base, ast.Name):
        if base.id in ("self", "cls") and class_context is not None:
            return class_context, node.attr
        if base.id in locals_map:
            return locals_map[base.id], node.attr
    return None


def check_atomicity(
    table: SymbolTable,
    graph: CallGraph,
    roots_patterns: tuple[str, ...] = DEFAULT_CONCURRENT_ROOTS,
    analysis: EscapeAnalysis | None = None,
) -> list[Finding]:
    if analysis is None:
        analysis = analyze_escape(table, graph, roots_patterns)
    guarded_attrs: dict[tuple[str, str], str] = {
        key: record.guard
        for key, record in analysis.attrs.items()
        if record.classification == "lock-guarded"
    }
    shared_attrs = set(analysis.attrs)
    if not shared_attrs:
        return []

    findings: list[Finding] = []
    seen: set[tuple[str, int, str]] = set()

    def emit(
        module: SourceModule,
        line: int,
        qualname: str,
        owner: str,
        attr: str,
        message: str,
    ) -> None:
        if module.allows(RULE, line):
            return
        owner_short = owner.rsplit(".", 1)[-1]
        fn_short = ".".join(qualname.rsplit(".", 2)[-2:])
        key = (module.rel_path, line, f"{fn_short}:{owner_short}.{attr}")
        if key in seen:
            return
        seen.add(key)
        findings.append(
            Finding(
                rule=RULE,
                path=module.rel_path,
                line=line,
                message=message,
                scope=f"{fn_short}:{owner_short}.{attr}",
            )
        )

    for info, class_context, qualname, fn in iter_functions(table):
        if qualname not in analysis.reachable or fn.name in CTOR_EXEMPT_METHODS:
            continue
        locals_map = resolve_locals(table, info, class_context, fn)
        entry_guard = analysis.guarded_context.get(qualname, frozenset())

        fresh: set[str] = set()
        for stmt in ast.walk(fn):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                callee = resolve_call(
                    table, info, class_context, stmt.value.func, locals_map
                )
                if callee is not None and table.is_class(callee):
                    fresh.add(stmt.targets[0].id)

        # (line, (owner, attr), held) per access category.
        test_reads: list[tuple[int, tuple[str, str], frozenset[str]]] = []
        traversals: list[tuple[int, tuple[str, str], frozenset[str], str]] = []
        mutations: list[tuple[int, tuple[str, str], frozenset[str], str]] = []
        publishes: list[tuple[int, tuple[str, str], frozenset[str]]] = []

        def tracked(node: ast.AST) -> tuple[str, str] | None:
            found = _attr_access(table, class_context, locals_map, node)
            if found is not None and found in shared_attrs:
                return found
            return None

        def scan_test(test: ast.expr, held: tuple[str, ...]) -> None:
            """Collect check-style reads inside a condition."""
            for node in ast.walk(test):
                found = None
                if isinstance(node, ast.Compare) and any(
                    isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot))
                    for op in node.ops
                ):
                    for side in [node.left, *node.comparators]:
                        found = tracked(side)
                        if found:
                            break
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"
                ):
                    found = tracked(node.func.value)
                elif isinstance(node, ast.Attribute):
                    found = tracked(node)
                if found is not None:
                    test_reads.append((node.lineno, found, frozenset(held)))

        def visit(node: ast.AST, held: tuple[str, ...]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                current = held
                for item in node.items:
                    visit(item.context_expr, current)
                    lock = _resolve_lock(
                        table, analysis.lock_index, info, class_context,
                        item.context_expr,
                    )
                    if lock is not None:
                        current = current + (lock,)
                for stmt in node.body:
                    visit(stmt, current)
                return
            if isinstance(node, (ast.If, ast.While)):
                scan_test(node.test, held)
            elif isinstance(node, ast.IfExp):
                scan_test(node.test, held)
            elif isinstance(node, ast.Assert):
                scan_test(node.test, held)
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                for side in node.comparators:
                    found = tracked(side)
                    if found is not None:
                        traversals.append(
                            (node.lineno, found, frozenset(held), "membership test of")
                        )
            elif isinstance(node, ast.For):
                found = tracked(node.iter)
                if found is not None:
                    traversals.append(
                        (node.lineno, found, frozenset(held), "iteration over")
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    found = tracked(gen.iter)
                    if found is not None:
                        traversals.append(
                            (node.lineno, found, frozenset(held), "iteration over")
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _TRAVERSING_CALLS
                    and len(node.args) >= 1
                ):
                    found = tracked(node.args[0])
                    if found is not None:
                        traversals.append(
                            (node.lineno, found, frozenset(held), f"{func.id}() over")
                        )
                elif isinstance(func, ast.Attribute):
                    if func.attr in _TRAVERSING_METHODS:
                        found = tracked(func.value)
                        if found is not None:
                            traversals.append(
                                (node.lineno, found, frozenset(held),
                                 f".{func.attr}() over")
                            )
                    if func.attr in MUTATING_METHODS:
                        found = tracked(func.value)
                        if found is not None:
                            receiver = attr_type_on(table, *found)
                            if receiver is None or not table.method_on(
                                receiver, func.attr
                            ):
                                kind = (
                                    "setdefault"
                                    if func.attr == "setdefault"
                                    else "method"
                                )
                                mutations.append(
                                    (node.lineno, found, frozenset(held), kind)
                                )
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        found = _owner_of_base(
                            table, class_context, locals_map, fresh, {}, target
                        )
                        if found is not None and found in shared_attrs:
                            mutations.append(
                                (node.lineno, found, frozenset(held), "assign")
                            )
                            if isinstance(node.value, ast.Call):
                                callee = resolve_call(
                                    table, info, class_context, node.value.func,
                                    locals_map,
                                )
                                if callee is not None and table.is_class(callee):
                                    publishes.append(
                                        (node.lineno, found, frozenset(held))
                                    )
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Attribute
                    ):
                        found = _owner_of_base(
                            table, class_context, locals_map, fresh, {}, target.value
                        )
                        if found is not None and found in shared_attrs:
                            mutations.append(
                                (node.lineno, found, frozenset(held), "store")
                            )
            elif isinstance(node, ast.AugAssign):
                target = node.target
                base = (
                    target
                    if isinstance(target, ast.Attribute)
                    else target.value
                    if isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    else None
                )
                if base is not None:
                    found = _owner_of_base(
                        table, class_context, locals_map, fresh, {}, base
                    )
                    if found is not None and found in shared_attrs:
                        mutations.append(
                            (node.lineno, found, frozenset(held), "augassign")
                        )
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in fn.body:
            visit(stmt, ())

        module = info.module
        reported_lines: set[tuple[int, tuple[str, str]]] = set()

        def has_guard(held: frozenset[str], guard: str) -> bool:
            return guard in (held | entry_guard)

        # check-then-act: unlocked test + later mutation of same attr.
        for line, key, held in test_reads:
            guard = guarded_attrs.get(key)
            if guard is None or has_guard(held, guard):
                continue
            later = [m for m in mutations if m[1] == key and m[0] > line]
            if not later:
                continue
            owner, attr = key
            emit(
                module, line, qualname, owner, attr,
                (
                    f"check-then-act on {owner.rsplit('.', 1)[-1]}.{attr}: tested "
                    f"outside its lock ({guard.rsplit('.', 1)[-1]}) but mutated at "
                    f"line {later[0][0]}; hold the lock across the check and the "
                    "mutation"
                ),
            )
            reported_lines.add((line, key))

        # read-gap: traversal of a guarded attr outside its lock.
        for line, key, held, how in traversals:
            guard = guarded_attrs.get(key)
            if guard is None or has_guard(held, guard) or (line, key) in reported_lines:
                continue
            owner, attr = key
            emit(
                module, line, qualname, owner, attr,
                (
                    f"{how} {owner.rsplit('.', 1)[-1]}.{attr} outside its guarding "
                    f"lock {guard.rsplit('.', 1)[-1]}: writers hold the lock, this "
                    "reader does not — a concurrent mutation can resize the "
                    "container mid-traversal"
                ),
            )
            reported_lines.add((line, key))

        # compound ops: += / setdefault outside the guard.
        for line, key, held, kind in mutations:
            if kind not in ("augassign", "setdefault"):
                continue
            guard = guarded_attrs.get(key)
            if guard is None or has_guard(held, guard) or (line, key) in reported_lines:
                continue
            owner, attr = key
            op = "+=" if kind == "augassign" else ".setdefault()"
            emit(
                module, line, qualname, owner, attr,
                (
                    f"compound {op} on {owner.rsplit('.', 1)[-1]}.{attr} outside "
                    f"its guarding lock {guard.rsplit('.', 1)[-1]}: the "
                    "read-modify-write can interleave with a locked writer"
                ),
            )
            reported_lines.add((line, key))

        # publish-before-init: bare publication of a fresh object that
        # is still being initialised through the shared attribute.
        for line, key, held in publishes:
            if held | entry_guard:
                continue
            later = [
                m for m in mutations if m[1] == key and m[0] > line and m[3] != "assign"
            ]
            if not later or (line, key) in reported_lines:
                continue
            owner, attr = key
            emit(
                module, line, qualname, owner, attr,
                (
                    f"publish-before-init of {owner.rsplit('.', 1)[-1]}.{attr}: the "
                    f"object becomes visible at line {line} but is still being "
                    f"initialised at line {later[0][0]}; build it fully in a local "
                    "first or publish under a lock"
                ),
            )

    findings.sort(key=lambda f: (f.path, f.line, f.scope))
    return findings
