"""The ``python -m repro.devtools.check`` entry point.

Runs every static-analysis pass over ``src/repro``, subtracts the
checked-in baseline, and exits non-zero on any *new* finding.  Output
is a human report by default, a machine-readable document with
``--json`` (CI consumes the exit code, tooling consumes the JSON).

Typical workflows::

    python -m repro.devtools.check                  # gate: fail on new findings
    python -m repro.devtools.check --json           # machine-readable report
    python -m repro.devtools.check --write-baseline # accept current findings
    python -m repro.devtools.check --no-baseline    # show everything, even accepted
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.devtools.callgraph import build_call_graph, build_symbol_table
from repro.devtools.concurrency import DEFAULT_CRITICAL_GLOBS, check_concurrency
from repro.devtools.correctness import (
    check_broad_except,
    check_geo_literals,
    check_mutable_defaults,
    check_no_print,
    check_no_sleep,
)
from repro.devtools.deadcode import check_dead_code
from repro.devtools.determinism import check_determinism
from repro.devtools.exceptions import check_exception_flow
from repro.devtools.findings import (
    Finding,
    collect_modules,
    load_baseline,
    split_new,
    write_baseline,
)
from repro.devtools.layers import DEFAULT_LAYER_CONFIG, LayerConfig, check_layers
from repro.devtools.lockorder import check_lock_order

#: Every rule id the suite can emit, for --select validation and docs.
ALL_RULES: tuple[str, ...] = (
    "layer-boundary",
    "module-mutable-state",
    "unlocked-mutation",
    "broad-except",
    "mutable-default",
    "no-print",
    "geo-range",
    "no-sleep",
    "lock-order",
    "exception-flow",
    "determinism",
    "dead-code",
)

#: Rules that need the whole-program symbol table / call graph.
WHOLE_PROGRAM_RULES: frozenset[str] = frozenset(
    {"lock-order", "exception-flow", "dead-code"}
)


def _default_paths() -> tuple[Path, Path, Path]:
    """(scan root, repo root, baseline path) for the installed tree."""
    package_root = Path(__file__).resolve().parents[1]  # src/repro
    repo_root = package_root.parents[1]  # the checkout (src/..)
    baseline = repo_root / "tools" / "devtools_baseline.json"
    return package_root, repo_root, baseline


@dataclass(slots=True)
class CheckResult:
    """Everything one suite run produced."""

    findings: list[Finding]  # all, before baseline subtraction
    new: list[Finding]
    suppressed: list[Finding]
    modules_scanned: int
    rules: tuple[str, ...] = ALL_RULES
    by_rule: dict[str, int] = field(default_factory=dict)
    #: wall-clock seconds per pass (plus "collect" and "callgraph").
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.new

    @property
    def elapsed(self) -> float:
        return sum(self.timings.values())

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "modules_scanned": self.modules_scanned,
            "rules": list(self.rules),
            "counts": {
                "total": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.suppressed),
                "by_rule": self.by_rule,
            },
            "timings_s": {name: round(value, 4) for name, value in self.timings.items()},
            "elapsed_s": round(self.elapsed, 4),
            "new_findings": [f.to_dict() for f in self.new],
            "baselined_findings": [f.to_dict() for f in self.suppressed],
        }


def run_check(
    root: Path | None = None,
    repo_root: Path | None = None,
    layer_config: LayerConfig = DEFAULT_LAYER_CONFIG,
    critical_globs: tuple[str, ...] = DEFAULT_CRITICAL_GLOBS,
    baseline: list[str] | None = None,
    select: tuple[str, ...] | None = None,
) -> CheckResult:
    """Run the suite over ``root`` (default: the installed ``repro``
    package) and partition findings against ``baseline``."""
    default_root, default_repo, _ = _default_paths()
    scan_root = root if root is not None else default_root
    base = repo_root if repo_root is not None else default_repo
    timings: dict[str, float] = {}

    started = time.perf_counter()
    modules = collect_modules(scan_root, repo_root=base)
    timings["collect"] = time.perf_counter() - started

    scope_cache: dict = {}
    selected = set(select) if select is not None else set(ALL_RULES)
    unknown = selected - set(ALL_RULES)
    if unknown:
        raise ValueError(f"unknown rule ids: {sorted(unknown)}")

    table = None
    graph = None
    if selected & WHOLE_PROGRAM_RULES:
        started = time.perf_counter()
        table = build_symbol_table(modules, scan_root)
        graph = build_call_graph(table)
        timings["callgraph"] = time.perf_counter() - started

    findings: list[Finding] = []

    def timed(name: str, run: Callable[[], list[Finding]]) -> None:
        began = time.perf_counter()
        findings.extend(run())
        timings[name] = time.perf_counter() - began

    if "layer-boundary" in selected:
        timed("layer-boundary", lambda: check_layers(modules, scan_root, layer_config))
    if {"module-mutable-state", "unlocked-mutation"} & selected:
        started = time.perf_counter()
        concurrency = check_concurrency(modules, critical_globs, scope_cache)
        findings += [f for f in concurrency if f.rule in selected]
        timings["concurrency"] = time.perf_counter() - started
    if "broad-except" in selected:
        timed("broad-except", lambda: check_broad_except(modules, scope_cache))
    if "mutable-default" in selected:
        timed("mutable-default", lambda: check_mutable_defaults(modules, scope_cache))
    if "no-print" in selected:
        timed("no-print", lambda: check_no_print(modules, scope_cache))
    if "geo-range" in selected:
        timed("geo-range", lambda: check_geo_literals(modules, scope_cache))
    if "no-sleep" in selected:
        timed("no-sleep", lambda: check_no_sleep(modules, scope_cache))
    if table is not None and graph is not None:
        whole_table, whole_graph = table, graph
        if "lock-order" in selected:
            timed(
                "lock-order",
                lambda: check_lock_order(whole_table, whole_graph, modules),
            )
        if "exception-flow" in selected:
            timed(
                "exception-flow",
                lambda: check_exception_flow(whole_table, whole_graph, modules),
            )
        if "dead-code" in selected:
            timed(
                "dead-code",
                lambda: check_dead_code(whole_table, modules, repo_root=base),
            )
    if "determinism" in selected:
        timed("determinism", lambda: check_determinism(modules, scope_cache=scope_cache))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    new, suppressed = split_new(findings, baseline or [])
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return CheckResult(
        findings=findings,
        new=new,
        suppressed=suppressed,
        modules_scanned=len(modules),
        by_rule=by_rule,
        timings=timings,
    )


def _render_human(
    result: CheckResult, baseline_path: Path | None, budget_s: float | None = None
) -> str:
    lines: list[str] = []
    if result.new:
        lines.append(f"repro.devtools.check: {len(result.new)} new finding(s)")
        for finding in result.new:
            lines.append(f"  {finding.render()}")
        lines.append("")
        lines.append(
            "Fix the findings, add an inline '# devtools: allow[rule-id]' with a "
            "reason, or accept them with --write-baseline."
        )
    else:
        lines.append(
            f"repro.devtools.check: OK — {result.modules_scanned} modules, "
            f"{len(result.suppressed)} baselined finding(s), 0 new"
        )
    if result.suppressed and baseline_path is not None:
        lines.append(
            f"({len(result.suppressed)} finding(s) suppressed by {baseline_path})"
        )
    slowest = sorted(result.timings.items(), key=lambda kv: -kv[1])[:3]
    detail = ", ".join(f"{name} {value:.2f}s" for name, value in slowest)
    budget = f" (budget {budget_s:.0f}s)" if budget_s is not None else ""
    lines.append(f"analysis wall-time: {result.elapsed:.2f}s{budget} — {detail}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.check",
        description="TVDP static-analysis suite (layer DAG, concurrency, correctness).",
    )
    parser.add_argument("--root", type=Path, default=None, help="package dir to scan")
    parser.add_argument(
        "--repo-root", type=Path, default=None, help="base dir for reported paths"
    )
    parser.add_argument("--baseline", type=Path, default=None, help="baseline file")
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline file"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--select",
        default=None,
        help=f"comma-separated rule ids to run (default: all of {', '.join(ALL_RULES)})",
    )
    parser.add_argument(
        "--budget-s",
        type=float,
        default=None,
        help="fail (exit 1) when total analysis wall-time exceeds this many seconds",
    )
    args = parser.parse_args(argv)

    _, _, default_baseline = _default_paths()
    baseline_path = args.baseline if args.baseline is not None else default_baseline
    baseline = [] if args.no_baseline else load_baseline(baseline_path)
    select = (
        tuple(part.strip() for part in args.select.split(",") if part.strip())
        if args.select
        else None
    )
    try:
        result = run_check(
            root=args.root,
            repo_root=args.repo_root,
            baseline=baseline,
            select=select,
        )
    except ValueError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2

    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        sys.stdout.write(
            f"wrote {len(result.findings)} suppression(s) to {baseline_path}\n"
        )
        return 0
    if args.json:
        sys.stdout.write(json.dumps(result.to_dict(), indent=2) + "\n")
    else:
        sys.stdout.write(_render_human(result, baseline_path, args.budget_s) + "\n")
    if args.budget_s is not None and result.elapsed > args.budget_s:
        sys.stderr.write(
            f"error: analysis took {result.elapsed:.2f}s, over the "
            f"{args.budget_s:.0f}s budget\n"
        )
        return 1
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
