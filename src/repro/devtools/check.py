"""The ``python -m repro.devtools.check`` entry point.

Runs every static-analysis pass over ``src/repro``, subtracts the
checked-in baseline, and exits non-zero on any *new* finding.  Output
is a human report by default, a machine-readable document with
``--json`` (CI consumes the exit code, tooling consumes the JSON).

Typical workflows::

    python -m repro.devtools.check                  # gate: fail on new findings
    python -m repro.devtools.check --json           # machine-readable report
    python -m repro.devtools.check --write-baseline # accept current findings
    python -m repro.devtools.check --no-baseline    # show everything, even accepted
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.devtools.atomicity import check_atomicity
from repro.devtools.blockinghandler import check_blocking_in_handler
from repro.devtools.callgraph import build_call_graph, build_symbol_table
from repro.devtools.concurrency import DEFAULT_CRITICAL_GLOBS, check_concurrency
from repro.devtools.correctness import (
    check_broad_except,
    check_geo_literals,
    check_mutable_defaults,
    check_no_print,
    check_no_sleep,
)
from repro.devtools.deadcode import check_dead_code
from repro.devtools.determinism import check_determinism
from repro.devtools.exceptions import check_exception_flow
from repro.devtools.findings import (
    Finding,
    collect_modules,
    load_baseline,
    split_new,
    write_baseline,
)
from repro.devtools.hotpath import DEFAULT_DATA_PLANE_ROOTS, check_hot_path
from repro.devtools.layers import DEFAULT_LAYER_CONFIG, LayerConfig, check_layers
from repro.devtools.lockorder import check_lock_order
from repro.devtools.picklability import DEFAULT_PICKLE_ROOT_GLOBS, check_picklability
from repro.devtools.processsafety import check_process_safety, render_manifest
from repro.devtools.sarif import github_annotations, to_sarif
from repro.devtools.threadescape import (
    DEFAULT_CONCURRENT_ROOTS,
    check_thread_escape,
    render_concurrency_manifest,
)

#: Every rule id the suite can emit, for --select validation and docs.
ALL_RULES: tuple[str, ...] = (
    "layer-boundary",
    "module-mutable-state",
    "unlocked-mutation",
    "broad-except",
    "mutable-default",
    "no-print",
    "geo-range",
    "no-sleep",
    "lock-order",
    "exception-flow",
    "determinism",
    "dead-code",
    "picklability",
    "process-safety",
    "hot-path",
    "thread-escape",
    "atomicity",
    "blocking-in-handler",
)

#: Rules that need the whole-program symbol table / call graph.
WHOLE_PROGRAM_RULES: frozenset[str] = frozenset(
    {
        "lock-order",
        "exception-flow",
        "dead-code",
        "picklability",
        "process-safety",
        "hot-path",
        "thread-escape",
        "atomicity",
        "blocking-in-handler",
    }
)

#: Named passes for ``--only`` / ``--list-passes``: a CI job can target
#: one pass without paying the whole suite's wall time.
PASSES: dict[str, tuple[str, ...]] = {
    "layers": ("layer-boundary",),
    "concurrency": ("module-mutable-state", "unlocked-mutation"),
    "correctness": (
        "broad-except",
        "mutable-default",
        "no-print",
        "geo-range",
        "no-sleep",
    ),
    "lock-order": ("lock-order",),
    "exception-flow": ("exception-flow",),
    "determinism": ("determinism",),
    "dead-code": ("dead-code",),
    "picklability": ("picklability",),
    "process-safety": ("process-safety",),
    "hot-path": ("hot-path",),
    "thread-escape": ("thread-escape",),
    "atomicity": ("atomicity",),
    "blocking-in-handler": ("blocking-in-handler",),
}


def _default_paths() -> tuple[Path, Path, Path]:
    """(scan root, repo root, baseline path) for the installed tree."""
    package_root = Path(__file__).resolve().parents[1]  # src/repro
    repo_root = package_root.parents[1]  # the checkout (src/..)
    baseline = repo_root / "tools" / "devtools_baseline.json"
    return package_root, repo_root, baseline


@dataclass(slots=True)
class CheckResult:
    """Everything one suite run produced."""

    findings: list[Finding]  # all, before baseline subtraction
    new: list[Finding]
    suppressed: list[Finding]
    modules_scanned: int
    rules: tuple[str, ...] = ALL_RULES
    by_rule: dict[str, int] = field(default_factory=dict)
    #: wall-clock seconds per pass (plus "collect" and "callgraph").
    timings: dict[str, float] = field(default_factory=dict)
    #: shard-safety manifest computed by the process-safety pass
    #: (None when that pass did not run).
    manifest: dict | None = None
    #: concurrency manifest computed by the thread-escape pass
    #: (None when that pass did not run).
    concurrency_manifest: dict | None = None
    #: baseline fingerprints whose finding no longer exists on the tree
    #: — the ratchet must shrink (see --trim-baseline).
    stale_baseline: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale_baseline

    @property
    def elapsed(self) -> float:
        return sum(self.timings.values())

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "modules_scanned": self.modules_scanned,
            "rules": list(self.rules),
            "counts": {
                "total": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.suppressed),
                "by_rule": self.by_rule,
            },
            "timings_s": {name: round(value, 4) for name, value in self.timings.items()},
            "elapsed_s": round(self.elapsed, 4),
            "new_findings": [f.to_dict() for f in self.new],
            "baselined_findings": [f.to_dict() for f in self.suppressed],
            "stale_baseline": list(self.stale_baseline),
        }


def run_check(
    root: Path | None = None,
    repo_root: Path | None = None,
    layer_config: LayerConfig = DEFAULT_LAYER_CONFIG,
    critical_globs: tuple[str, ...] = DEFAULT_CRITICAL_GLOBS,
    baseline: list[str] | None = None,
    select: tuple[str, ...] | None = None,
    pickle_root_globs: tuple[str, ...] = DEFAULT_PICKLE_ROOT_GLOBS,
    data_plane_roots: tuple[str, ...] = DEFAULT_DATA_PLANE_ROOTS,
    manifest_path: Path | None = None,
    concurrent_roots: tuple[str, ...] = DEFAULT_CONCURRENT_ROOTS,
    concurrency_manifest_path: Path | None = None,
) -> CheckResult:
    """Run the suite over ``root`` (default: the installed ``repro``
    package) and partition findings against ``baseline``."""
    default_root, default_repo, _ = _default_paths()
    scan_root = root if root is not None else default_root
    base = repo_root if repo_root is not None else default_repo
    manifest_file = (
        manifest_path
        if manifest_path is not None
        else base / "tools" / "shard_safety_manifest.json"
    )
    concurrency_file = (
        concurrency_manifest_path
        if concurrency_manifest_path is not None
        else base / "tools" / "concurrency_manifest.json"
    )
    timings: dict[str, float] = {}

    started = time.perf_counter()
    modules = collect_modules(scan_root, repo_root=base)
    timings["collect"] = time.perf_counter() - started

    scope_cache: dict = {}
    selected = set(select) if select is not None else set(ALL_RULES)
    unknown = selected - set(ALL_RULES)
    if unknown:
        raise ValueError(f"unknown rule ids: {sorted(unknown)}")

    table = None
    graph = None
    if selected & WHOLE_PROGRAM_RULES:
        started = time.perf_counter()
        table = build_symbol_table(modules, scan_root)
        graph = build_call_graph(table)
        timings["callgraph"] = time.perf_counter() - started

    findings: list[Finding] = []

    def timed(name: str, run: Callable[[], list[Finding]]) -> None:
        began = time.perf_counter()
        findings.extend(run())
        timings[name] = time.perf_counter() - began

    if "layer-boundary" in selected:
        timed("layer-boundary", lambda: check_layers(modules, scan_root, layer_config))
    if {"module-mutable-state", "unlocked-mutation"} & selected:
        started = time.perf_counter()
        concurrency = check_concurrency(modules, critical_globs, scope_cache)
        findings += [f for f in concurrency if f.rule in selected]
        timings["concurrency"] = time.perf_counter() - started
    if "broad-except" in selected:
        timed("broad-except", lambda: check_broad_except(modules, scope_cache))
    if "mutable-default" in selected:
        timed("mutable-default", lambda: check_mutable_defaults(modules, scope_cache))
    if "no-print" in selected:
        timed("no-print", lambda: check_no_print(modules, scope_cache))
    if "geo-range" in selected:
        timed("geo-range", lambda: check_geo_literals(modules, scope_cache))
    if "no-sleep" in selected:
        timed("no-sleep", lambda: check_no_sleep(modules, scope_cache))
    if table is not None and graph is not None:
        whole_table, whole_graph = table, graph
        if "lock-order" in selected:
            timed(
                "lock-order",
                lambda: check_lock_order(whole_table, whole_graph, modules),
            )
        if "exception-flow" in selected:
            timed(
                "exception-flow",
                lambda: check_exception_flow(whole_table, whole_graph, modules),
            )
        if "dead-code" in selected:
            timed(
                "dead-code",
                lambda: check_dead_code(whole_table, modules, repo_root=base),
            )
    if "determinism" in selected:
        timed("determinism", lambda: check_determinism(modules, scope_cache=scope_cache))
    manifest: dict | None = None
    if table is not None and graph is not None:
        shard_table, shard_graph = table, graph
        if "picklability" in selected:
            timed(
                "picklability",
                lambda: check_picklability(
                    modules, shard_table, pickle_root_globs, scope_cache
                ),
            )
        if "process-safety" in selected:
            started = time.perf_counter()
            checked_in: dict | None = None
            if manifest_file.exists():
                try:
                    checked_in = json.loads(manifest_file.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    checked_in = None
            try:
                manifest_rel = manifest_file.relative_to(base).as_posix()
            except ValueError:
                manifest_rel = manifest_file.as_posix()
            safety_findings, manifest = check_process_safety(
                modules,
                shard_table,
                shard_graph,
                data_plane_roots,
                checked_in=checked_in,
                manifest_rel=manifest_rel,
            )
            findings.extend(safety_findings)
            timings["process-safety"] = time.perf_counter() - started
        if "hot-path" in selected:
            timed(
                "hot-path",
                lambda: check_hot_path(
                    modules,
                    shard_table,
                    shard_graph,
                    data_plane_roots,
                    scope_cache=scope_cache,
                ),
            )

    concurrency_manifest: dict | None = None
    escape_analysis = None
    if table is not None and graph is not None:
        if "thread-escape" in selected:
            started = time.perf_counter()
            checked_in_conc: dict | None = None
            if concurrency_file.exists():
                try:
                    checked_in_conc = json.loads(
                        concurrency_file.read_text(encoding="utf-8")
                    )
                except (OSError, ValueError):
                    checked_in_conc = None
            try:
                concurrency_rel = concurrency_file.relative_to(base).as_posix()
            except ValueError:
                concurrency_rel = concurrency_file.as_posix()
            escape_findings, concurrency_manifest, escape_analysis = (
                check_thread_escape(
                    table,
                    graph,
                    concurrent_roots,
                    checked_in=checked_in_conc,
                    manifest_rel=concurrency_rel,
                )
            )
            findings.extend(escape_findings)
            timings["thread-escape"] = time.perf_counter() - started
        if "atomicity" in selected:
            started = time.perf_counter()
            findings.extend(
                check_atomicity(
                    table, graph, concurrent_roots, analysis=escape_analysis
                )
            )
            timings["atomicity"] = time.perf_counter() - started
        if "blocking-in-handler" in selected:
            timed(
                "blocking-in-handler",
                lambda: check_blocking_in_handler(table, graph),
            )

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    new, suppressed = split_new(findings, baseline or [])
    consumed: dict[str, int] = {}
    for finding in suppressed:
        consumed[finding.fingerprint] = consumed.get(finding.fingerprint, 0) + 1
    stale: list[str] = []
    for fingerprint in baseline or []:
        remaining = consumed.get(fingerprint, 0)
        if remaining > 0:
            consumed[fingerprint] = remaining - 1
        else:
            stale.append(fingerprint)
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return CheckResult(
        findings=findings,
        new=new,
        suppressed=suppressed,
        modules_scanned=len(modules),
        by_rule=by_rule,
        timings=timings,
        manifest=manifest,
        concurrency_manifest=concurrency_manifest,
        stale_baseline=sorted(stale),
    )


def _render_human(
    result: CheckResult, baseline_path: Path | None, budget_s: float | None = None
) -> str:
    lines: list[str] = []
    if result.stale_baseline:
        lines.append(
            f"repro.devtools.check: {len(result.stale_baseline)} stale baseline "
            "entr(ies) — the finding was fixed but its suppression remains"
        )
        for fingerprint in result.stale_baseline:
            lines.append(f"  {fingerprint}")
        lines.append(
            "Ratchets only shrink: run --trim-baseline to drop the dead entries."
        )
    if result.new:
        lines.append(f"repro.devtools.check: {len(result.new)} new finding(s)")
        for finding in result.new:
            lines.append(f"  {finding.render()}")
        lines.append("")
        lines.append(
            "Fix the findings, add an inline '# devtools: allow[rule-id]' with a "
            "reason, or accept them with --write-baseline."
        )
    elif not result.stale_baseline:
        lines.append(
            f"repro.devtools.check: OK — {result.modules_scanned} modules, "
            f"{len(result.suppressed)} baselined finding(s), 0 new"
        )
    if result.suppressed and baseline_path is not None:
        lines.append(
            f"({len(result.suppressed)} finding(s) suppressed by {baseline_path})"
        )
    slowest = sorted(result.timings.items(), key=lambda kv: -kv[1])[:3]
    detail = ", ".join(f"{name} {value:.2f}s" for name, value in slowest)
    budget = f" (budget {budget_s:.0f}s)" if budget_s is not None else ""
    lines.append(f"analysis wall-time: {result.elapsed:.2f}s{budget} — {detail}")
    return "\n".join(lines)


def changed_files(repo_root: Path, ref: str) -> frozenset[str]:
    """Repo-relative paths changed vs ``ref`` (tracked diffs plus
    untracked files), for ``--changed-only``."""
    import subprocess

    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        raise RuntimeError(f"git diff vs {ref!r} failed: {detail.strip()}") from exc
    paths = set(diff.stdout.splitlines()) | set(untracked.stdout.splitlines())
    return frozenset(p.strip() for p in paths if p.strip())


def apply_changed_only(result: CheckResult, changed: frozenset[str]) -> CheckResult:
    """Restrict ``new`` findings to changed files; stale-baseline gating
    is waived (the full run still enforces it in CI)."""
    filtered = [f for f in result.new if f.path in changed]
    return CheckResult(
        findings=result.findings,
        new=filtered,
        suppressed=result.suppressed,
        modules_scanned=result.modules_scanned,
        rules=result.rules,
        by_rule=result.by_rule,
        timings=result.timings,
        manifest=result.manifest,
        concurrency_manifest=result.concurrency_manifest,
        stale_baseline=[],
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.check",
        description="TVDP static-analysis suite (layer DAG, concurrency, correctness).",
    )
    parser.add_argument("--root", type=Path, default=None, help="package dir to scan")
    parser.add_argument(
        "--repo-root", type=Path, default=None, help="base dir for reported paths"
    )
    parser.add_argument("--baseline", type=Path, default=None, help="baseline file")
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline file"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--json-out", type=Path, default=None, help="also write the JSON report here"
    )
    parser.add_argument(
        "--sarif", type=Path, default=None, help="write a SARIF 2.1.0 report here"
    )
    parser.add_argument(
        "--github-annotations",
        action="store_true",
        help="print ::error workflow-command lines for new findings",
    )
    parser.add_argument(
        "--select",
        default=None,
        help=f"comma-separated rule ids to run (default: all of {', '.join(ALL_RULES)})",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated pass names to run (see --list-passes)",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="list pass names with their rule ids and exit",
    )
    parser.add_argument(
        "--write-manifest",
        action="store_true",
        help="regenerate tools/shard_safety_manifest.json from the tree and exit 0",
    )
    parser.add_argument(
        "--write-concurrency-manifest",
        action="store_true",
        help="regenerate tools/concurrency_manifest.json from the tree and exit 0",
    )
    parser.add_argument(
        "--trim-baseline",
        action="store_true",
        help="drop stale baseline entries (finding fixed, suppression left) and exit 0",
    )
    parser.add_argument(
        "--changed-only",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="GIT_REF",
        help=(
            "report only new findings in files changed vs GIT_REF (default "
            "HEAD) — a fast pre-commit mode; manifest drift and stale-baseline "
            "gating are skipped"
        ),
    )
    parser.add_argument(
        "--budget-s",
        type=float,
        default=None,
        help="fail (exit 1) when total analysis wall-time exceeds this many seconds",
    )
    args = parser.parse_args(argv)

    if args.list_passes:
        for name, rules in PASSES.items():
            sys.stdout.write(f"{name}: {', '.join(rules)}\n")
        return 0

    _, _, default_baseline = _default_paths()
    baseline_path = args.baseline if args.baseline is not None else default_baseline
    baseline = [] if args.no_baseline else load_baseline(baseline_path)
    select: tuple[str, ...] | None = None
    if args.select:
        select = tuple(part.strip() for part in args.select.split(",") if part.strip())
    if args.only:
        names = [part.strip() for part in args.only.split(",") if part.strip()]
        unknown = [name for name in names if name not in PASSES]
        if unknown:
            sys.stderr.write(
                f"error: unknown pass name(s) {unknown}; see --list-passes\n"
            )
            return 2
        only_rules = tuple(rule for name in names for rule in PASSES[name])
        select = tuple(set(select) & set(only_rules)) if select else only_rules
    if args.write_manifest:
        select = PASSES["process-safety"]
    if args.write_concurrency_manifest:
        select = PASSES["thread-escape"]
    try:
        result = run_check(
            root=args.root,
            repo_root=args.repo_root,
            baseline=baseline,
            select=select,
        )
    except ValueError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2

    if args.write_manifest:
        if result.manifest is None:
            sys.stderr.write("error: process-safety pass did not run\n")
            return 2
        repo_base = args.repo_root if args.repo_root is not None else _default_paths()[1]
        manifest_file = repo_base / "tools" / "shard_safety_manifest.json"
        manifest_file.write_text(render_manifest(result.manifest), encoding="utf-8")
        sys.stdout.write(
            f"wrote {len(result.manifest['entries'])} classification(s) to "
            f"{manifest_file}\n"
        )
        return 0
    if args.write_concurrency_manifest:
        if result.concurrency_manifest is None:
            sys.stderr.write("error: thread-escape pass did not run\n")
            return 2
        repo_base = args.repo_root if args.repo_root is not None else _default_paths()[1]
        manifest_file = repo_base / "tools" / "concurrency_manifest.json"
        manifest_file.write_text(
            render_concurrency_manifest(result.concurrency_manifest), encoding="utf-8"
        )
        sys.stdout.write(
            f"wrote {len(result.concurrency_manifest['entries'])} "
            f"classification(s) to {manifest_file}\n"
        )
        return 0
    if args.trim_baseline:
        dropped = len(result.stale_baseline)
        write_baseline(baseline_path, result.suppressed)
        sys.stdout.write(
            f"trimmed {dropped} stale entr(ies); {len(result.suppressed)} "
            f"suppression(s) remain in {baseline_path}\n"
        )
        return 0
    if args.changed_only is not None:
        repo_base = args.repo_root if args.repo_root is not None else _default_paths()[1]
        try:
            changed = changed_files(repo_base, args.changed_only)
        except RuntimeError as exc:
            sys.stderr.write(f"error: {exc}\n")
            return 2
        result = apply_changed_only(result, changed)
    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        sys.stdout.write(
            f"wrote {len(result.findings)} suppression(s) to {baseline_path}\n"
        )
        return 0
    if args.sarif is not None:
        rules = tuple(select) if select else ALL_RULES
        args.sarif.write_text(
            json.dumps(to_sarif(result.new, rules), indent=2) + "\n", encoding="utf-8"
        )
    if args.json_out is not None:
        args.json_out.write_text(
            json.dumps(result.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
    if args.github_annotations:
        for line in github_annotations(result.new):
            sys.stdout.write(line + "\n")
    if args.json:
        sys.stdout.write(json.dumps(result.to_dict(), indent=2) + "\n")
    else:
        sys.stdout.write(_render_human(result, baseline_path, args.budget_s) + "\n")
    if args.budget_s is not None and result.elapsed > args.budget_s:
        sys.stderr.write(
            f"error: analysis took {result.elapsed:.2f}s, over the "
            f"{args.budget_s:.0f}s budget\n"
        )
        return 1
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
