"""Edge computing: capability-aware dispatch + crowd-based learning.

Reproduces the Action-service scenarios: the Fig. 8 device x model
latency grid, the bandwidth saving of uploading features instead of raw
images, and a few rounds of the Fig. 4 crowd-based learning loop.

Run:  python examples/edge_deployment.py
"""

import math

import numpy as np

from repro.datasets import generate_lasan_dataset
from repro.edge import (
    PAPER_DEVICES,
    PAPER_MODELS,
    SMARTPHONE,
    CrowdLearningFramework,
    EdgeBatch,
    compare_upload_strategies,
    dispatch_fleet,
    predicted_latency_ms,
)
from repro.features import CnnFeatureExtractor
from repro.ml import StandardScaler, train_test_split


def latency_grid() -> None:
    print("Fig. 8 — inference time in ms (log10 in brackets):\n")
    header = f"{'model':<16}" + "".join(f"{d.name:>20}" for d in PAPER_DEVICES)
    print(header)
    print("-" * len(header))
    for model in PAPER_MODELS:
        cells = []
        for device in PAPER_DEVICES:
            ms = predicted_latency_ms(device, model)
            cells.append(f"{ms:>11.1f} ({math.log10(ms):.2f})")
        print(f"{model.name:<16}" + "".join(f"{c:>20}" for c in cells))


def dispatch_demo() -> None:
    print("\ncapability-aware dispatch (latency budget 1000 ms):")
    decisions = dispatch_fleet(list(PAPER_DEVICES), list(PAPER_MODELS), 1000.0)
    for name, decision in sorted(decisions.items()):
        print(
            f"  {name:<18} -> {decision.model.name:<14} "
            f"(predicted {decision.predicted_latency_ms:.0f} ms, "
            f"download {decision.download_time_s:.1f} s)"
        )


def bandwidth_demo() -> None:
    print("\nbandwidth: uploading 50 samples from a smartphone:")
    plans = compare_upload_strategies(
        SMARTPHONE, n_items=50, image_px=1024, feature_dim=336
    )
    for name, plan in plans.items():
        print(
            f"  {name:<12} {plan.total_bytes / 1e6:8.2f} MB, "
            f"{plan.transfer_time_s:6.1f} s"
        )
    ratio = plans["raw_images"].total_bytes / plans["features"].total_bytes
    print(f"  feature upload is {ratio:.0f}x cheaper")


def crowd_learning_demo() -> None:
    print("\ncrowd-based learning (Fig. 4): accuracy over rounds")
    records = generate_lasan_dataset(n_per_class=40, image_size=40, seed=0)
    extractor = CnnFeatureExtractor()
    X = np.vstack([extractor.extract(r.image) for r in records])
    X = StandardScaler().fit_transform(X)
    y = np.array([r.label for r in records])
    X_pool, X_test, y_pool, y_test = train_test_split(X, y, 0.3, seed=0)

    # Tiny seed set on the server; the rest arrives via edge devices.
    seed_n = 20
    framework = CrowdLearningFramework(
        model_variants=list(PAPER_MODELS),
        upload_budget=15,
        human_label_rate=0.5,
        seed=0,
    )
    framework.seed_pool(X_pool[:seed_n], y_pool[:seed_n])
    edge_data = X_pool[seed_n:]
    edge_labels = y_pool[seed_n:]
    chunk = len(edge_data) // 4
    for round_index in range(4):
        lo, hi = round_index * chunk, (round_index + 1) * chunk
        batch = EdgeBatch(
            device=SMARTPHONE,
            features=edge_data[lo:hi],
            true_labels=edge_labels[lo:hi],
        )
        stats = framework.run_round([batch], X_test, y_test)
        print(
            f"  round {stats.round_index}: accuracy={stats.test_accuracy:.3f} "
            f"pool={stats.pool_size} uploaded={stats.uploaded_samples} "
            f"({stats.uploaded_bytes / 1e3:.1f} kB, {stats.human_labels} human labels)"
        )


def main() -> None:
    latency_grid()
    dispatch_demo()
    bandwidth_demo()
    crowd_learning_demo()


if __name__ == "__main__":
    main()
