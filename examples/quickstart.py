"""TVDP quickstart: upload geo-tagged images, then query every way.

Run:  python examples/quickstart.py
"""

from repro import TVDP
from repro.core import (
    CategoricalQuery,
    HybridQuery,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    VisualQuery,
)
from repro.datasets import generate_lasan_dataset
from repro.features import ColorHistogramExtractor
from repro.geo import BoundingBox
from repro.imaging import CLEANLINESS_CLASSES


def main() -> None:
    platform = TVDP()
    lasan = platform.add_user("LASAN", role="government", organization="City of LA")

    # --- Acquisition: upload a small geo-tagged street-image corpus.
    records = generate_lasan_dataset(n_per_class=8, image_size=40, seed=0)
    image_ids = []
    for record in records:
        receipt = platform.upload_image(
            image=record.image,
            fov=record.fov,
            captured_at=record.captured_at,
            uploaded_at=record.uploaded_at,
            keywords=record.keywords,
            uploader_id=lasan,
        )
        image_ids.append(receipt.image_id)
    print(f"uploaded {len(image_ids)} images")
    print("platform stats:", platform.stats()["rows"])

    # --- Access 1: spatial query (images depicting a downtown block).
    block = BoundingBox(34.035, -118.26, 34.05, -118.24)
    spatial_hits = platform.execute(SpatialQuery(region=block, mode="scene"))
    print(f"\nspatial query: {len(spatial_hits)} images depict the block")

    # --- Access 2: textual query over manual keywords.
    text_hits = platform.execute(TextualQuery(text="encampment tent"))
    print(f"textual query 'encampment tent': {len(text_hits)} hits")

    # --- Access 3: temporal query (first 24h of the collection week).
    t0 = min(r.captured_at for r in records)
    temporal_hits = platform.execute(TemporalQuery(start=t0, end=t0 + 86_400))
    print(f"temporal query (first day): {len(temporal_hits)} images")

    # --- Access 4: visual similarity (needs features extracted first).
    platform.register_extractor(ColorHistogramExtractor())
    platform.extract_features("color_hsv_20_20_10")
    visual_hits = platform.execute(
        VisualQuery(
            extractor_name="color_hsv_20_20_10", example=records[0].image, k=5
        )
    )
    print("visual top-5 (image_id, score):")
    for hit in visual_hits:
        print(f"  {hit.image_id:4d}  {hit.score:.3f}")

    # --- Analysis: annotate, then run categorical + hybrid queries.
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
    for image_id, record in zip(image_ids, records):
        platform.annotations.annotate(
            image_id, "street_cleanliness", record.label, 1.0, source="human"
        )
    encampments = platform.execute(
        CategoricalQuery("street_cleanliness", labels=("encampment",))
    )
    print(f"\ncategorical query: {len(encampments)} encampment images")

    hybrid_hits = platform.execute(
        HybridQuery(
            queries=(
                SpatialQuery(region=block, mode="camera"),
                CategoricalQuery("street_cleanliness", labels=("encampment",)),
            )
        )
    )
    print(f"hybrid (spatial+categorical): {len(hybrid_hits)} encampments in block")


if __name__ == "__main__":
    main()
