"""Disaster data platform: drone wildfire monitoring (future work of
the paper, built out).

Two drone sweeps an hour apart over a burning hillside: plan lawnmower
surveys, detect fire/smoke events, build situation reports, and
estimate the spread rate responders would act on.

Run:  python examples/disaster_monitoring.py
"""

import numpy as np

from repro.analysis import (
    WildfireGroundTruth,
    detect_events,
    detection_quality,
    estimate_spread,
    fly_survey,
    situation_report,
)
from repro.features import ColorHistogramExtractor
from repro.geo import BoundingBox, GeoPoint
from repro.imaging import AERIAL_CLASSES, render_aerial_scene
from repro.ml import LogisticRegression

REGION = BoundingBox(34.10, -118.40, 34.14, -118.36)


def train_fire_classifier(seed=0):
    """Small aerial-condition classifier (fire/smoke/normal)."""
    rng = np.random.default_rng(seed)
    extractor = ColorHistogramExtractor()
    X, y = [], []
    for label in AERIAL_CLASSES:
        for _ in range(15):
            X.append(extractor.extract(render_aerial_scene(label, rng, 40)))
            y.append(label)
    model = LogisticRegression(epochs=50).fit(np.vstack(X), np.array(y))
    return model, extractor


def describe(report, name):
    print(f"{name}:")
    print(f"  burning cells     : {report.burning_cells}")
    print(f"  affected fraction : {report.affected_fraction:.0%}")
    if report.fire_front:
        front = report.fire_front
        print(
            f"  fire front box    : ({front.min_lat:.4f},{front.min_lng:.4f})"
            f"..({front.max_lat:.4f},{front.max_lng:.4f})"
        )


def main() -> None:
    truth = WildfireGroundTruth(
        ignitions=[GeoPoint(34.12, -118.38)],
        growth_mps=0.5,
        initial_radius_m=250.0,
    )
    model, extractor = train_fire_classifier()

    print("sweep 1 (t = 0)...")
    sweep1 = fly_survey(REGION, truth, start_time=0.0, rows=6, seed=0)
    events1 = detect_events(sweep1, classifier=model, extractor=extractor)
    quality = detection_quality(sweep1, events1)
    print(
        f"  {len(sweep1)} tiles captured, {len(events1)} events "
        f"(fire recall {quality['recall']:.0%}, precision {quality['precision']:.0%})"
    )
    report1 = situation_report(REGION, events1)
    describe(report1, "situation after sweep 1")

    print("\nsweep 2 (t = +1 h)...")
    sweep2 = fly_survey(REGION, truth, start_time=3_600.0, rows=6, seed=0)
    events2 = detect_events(sweep2, classifier=model, extractor=extractor)
    report2 = situation_report(REGION, events2)
    describe(report2, "situation after sweep 2")

    spread = estimate_spread(report1, report2, dt_s=3_600.0)
    print("\nspread estimate (sweep 2 vs sweep 1):")
    print(f"  burning cells delta     : {spread['burning_cells_delta']:+.0f}")
    print(f"  front growth            : {spread['front_growth_mps']:.2f} m/s")
    print(f"  affected fraction delta : {spread['affected_fraction_delta']:+.0%}")
    print(f"  (ground truth growth    : {truth.growth_mps:.2f} m/s)")


if __name__ == "__main__":
    main()
