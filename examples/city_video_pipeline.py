"""City video pipeline: street-network drives to panorama selection.

A garbage-truck shift end to end on realistic street geometry:

1. build a Manhattan-style road network over downtown;
2. drive a patrol route, recording a dashcam video with per-frame FOVs;
3. ingest only content-adaptive key frames (quality-gated, near-dup
   flagged);
4. ask the platform for the minimal frame set covering a full panorama
   around an intersection of interest.

Run:  python examples/city_video_pipeline.py
"""

from repro.core import (
    TVDP,
    ingest_video,
    select_keyframes_adaptive,
)
from repro.analysis import select_panorama_frames
from repro.datasets import generate_route_video
from repro.features import ColorHistogramExtractor
from repro.geo import DOWNTOWN_LA, GeoPoint, RoadNetwork


def main() -> None:
    platform = TVDP(detect_near_duplicates=True)
    truck_depot = GeoPoint(34.035, -118.265)

    print("building the street network...")
    network = RoadNetwork.manhattan(DOWNTOWN_LA, rows=7, cols=7, seed=0)
    print(
        f"  {network.graph.number_of_nodes()} intersections, "
        f"{network.graph.number_of_edges()} segments, "
        f"{network.total_length_m() / 1000:.1f} km of streets"
    )

    print("\ndriving a 20-hop patrol route...")
    route = network.patrol(truck_depot, hops=20, seed=1)
    video = generate_route_video(
        1, route, speed_mps=8.0, image_size=40, seed=0
    )
    print(f"  {len(video.frames)} frames recorded over {route and len(route)} blocks")

    print("\nselecting content-adaptive key frames...")
    extractor = ColorHistogramExtractor()
    keyframes = select_keyframes_adaptive(video, extractor, threshold=0.18)
    print(
        f"  kept {len(keyframes)}/{len(video.frames)} frames "
        f"({len(keyframes) / len(video.frames):.0%})"
    )

    print("\ningesting key frames (near-duplicate detection on)...")
    _, image_ids = ingest_video(platform, video, keyframes=keyframes)
    stats = platform.stats()
    print(
        f"  stored {stats['rows']['images']} images "
        f"({stats['rows']['image_fov']} FOV rows)"
    )

    print("\npanorama selection around a visited intersection...")
    # Pick a point on the route interior as the panorama anchor.
    anchor = route[len(route) // 2]
    selection = select_panorama_frames(platform, anchor, max_frames=10)
    print(
        f"  {len(selection.image_ids)} frames cover "
        f"{selection.coverage:.0%} of directions around "
        f"({anchor.lat:.4f}, {anchor.lng:.4f})"
    )
    for image_id in selection.image_ids:
        fov = platform.fov(image_id)
        print(
            f"    image {image_id:3d}: camera ({fov.camera.lat:.4f}, "
            f"{fov.camera.lng:.4f}) looking {fov.direction_deg:.0f} deg"
        )


if __name__ == "__main__":
    main()
