"""Street-cleanliness classification study (paper Section VII-A).

Reproduces the Fig. 6 protocol at laptop scale: three feature types x a
grid of classifiers, macro F1 on a held-out split, then per-category F1
for the winner (Fig. 7).

Run:  python examples/street_cleanliness_study.py
"""

from repro.analysis import (
    best_cell,
    build_feature_suite,
    feature_matrices,
    per_category_f1,
    run_classifier_grid,
)
from repro.datasets import generate_lasan_dataset
from repro.ml import LinearSVM


def main() -> None:
    print("generating synthetic LASAN dataset (5 classes x 40 images)...")
    records = generate_lasan_dataset(n_per_class=40, image_size=48, seed=0)

    print("extracting colour-histogram / SIFT-BoW / CNN features...")
    suite = build_feature_suite(records, bow_words=48, seed=0)
    matrices = feature_matrices(records, suite)

    print("training the classifier grid (this is the Fig. 6 table):\n")
    results = run_classifier_grid(matrices, seed=0)
    features = sorted({r.feature for r in results})
    classifiers = sorted({r.classifier for r in results})
    grid = {(r.feature, r.classifier): r.f1 for r in results}

    header = f"{'classifier':<22}" + "".join(f"{f:>18}" for f in features)
    print(header)
    print("-" * len(header))
    for clf in classifiers:
        row = f"{clf:<22}" + "".join(
            f"{grid[(f, clf)]:>18.3f}" for f in features
        )
        print(row)

    best = best_cell(results)
    print(
        f"\nbest combination: {best.classifier} + {best.feature} "
        f"(macro F1 = {best.f1:.3f})"
    )

    print("\nper-category F1 for SVM (Fig. 7), 10-fold cross-validation:")
    for feature_name in features:
        X, y = matrices[feature_name]
        scores = per_category_f1(X, y, lambda: LinearSVM(epochs=40), n_splits=10)
        print(f"  {feature_name}:")
        for label, f1 in sorted(scores.items()):
            print(f"    {label:<24} {f1:.3f}")


if __name__ == "__main__":
    main()
