"""Proactive acquisition: an iterative spatial-crowdsourcing campaign.

A campaign owner wants 90% cell coverage of a downtown region.  Each
round: measure coverage of what exists, generate tasks for the gaps,
assign workers greedily, simulate captures, repeat (paper Section III).

Run:  python examples/crowdsourcing_campaign.py
"""

from repro.crowd import (
    Campaign,
    WorkerPool,
    assign_greedy,
    assign_nearest,
    assign_partitioned,
    measure_coverage,
    run_iterative_campaign,
)
from repro.datasets import generate_fleet_videos
from repro.geo import DOWNTOWN_LA


def main() -> None:
    region = DOWNTOWN_LA

    # Passive baseline: FOVs from garbage-truck videos already exist.
    videos = generate_fleet_videos(n_videos=4, n_frames=40, seed=0)
    passive_fovs = [frame.fov for video in videos for frame in video.frames]
    baseline = measure_coverage(passive_fovs, region, rows=10, cols=10)
    print(
        f"passive collection: {len(passive_fovs)} FOVs cover "
        f"{baseline.coverage_ratio:.0%} of cells "
        f"({baseline.directional_coverage_ratio:.0%} from 2+ directions)"
    )

    # The campaign fills the rest proactively.
    campaign = Campaign(
        campaign_id=1,
        owner="LASAN",
        region=region,
        description="fill downtown coverage gaps",
        target_coverage=0.9,
        min_directions=2,
        reward_per_task=0.5,
    )
    pool = WorkerPool.spawn(12, region, seed=1, camera_range_m=250.0)
    result = run_iterative_campaign(
        campaign,
        pool,
        initial_fovs=passive_fovs,
        grid_rows=10,
        grid_cols=10,
        max_rounds=8,
        tasks_per_round=30,
        seed=1,
    )
    print("\niterative campaign rounds:")
    for stats in result.rounds:
        print(
            f"  round {stats.round_index}: issued={stats.tasks_issued:3d} "
            f"done={stats.tasks_completed:3d} coverage={stats.coverage_ratio:.0%} "
            f"directional={stats.directional_coverage_ratio:.0%} "
            f"travel={stats.distance_travelled_m / 1000:.1f} km"
        )
    print(
        f"\nfinal coverage {result.final_coverage:.0%} after "
        f"{result.total_tasks_completed} completed tasks, "
        f"reward paid {campaign.total_reward_paid:.1f}"
    )

    # Assignment-strategy shoot-out on one round's tasks.
    report = measure_coverage(passive_fovs, region, rows=10, cols=10)
    probe = Campaign(2, "LASAN", region)
    tasks = probe.generate_tasks(report, max_tasks=40)
    fresh = WorkerPool.spawn(12, region, seed=2)
    print("\nassignment strategies on one task batch:")
    for name, run in (
        ("greedy", lambda: assign_greedy(fresh.workers, tasks, per_worker=6)),
        ("nearest", lambda: assign_nearest(fresh.workers, tasks, per_worker=6)),
        (
            "partitioned",
            lambda: assign_partitioned(
                fresh.workers, tasks, region, partitions=2, per_worker=6
            ),
        ),
    ):
        outcome = run()
        print(
            f"  {name:<12} assigned={len(outcome.assignments):3d} "
            f"mean travel={outcome.mean_distance_m:7.0f} m"
        )


if __name__ == "__main__":
    main()
