"""Translational data in action: cleanliness labels -> homeless study.

The paper's flagship scenario: LASAN's street-cleanliness model
machine-annotates the corpus; the Homeless Coordinator then reuses the
"encampment" annotations — with no new learning — to count tents and
cluster their locations, and compares two collection periods.

Run:  python examples/homeless_tracking.py
"""

import numpy as np

from repro import TVDP
from repro.analysis import cluster_encampments, compare_periods
from repro.datasets import generate_lasan_dataset
from repro.features import CnnFeatureExtractor
from repro.imaging import CLEANLINESS_CLASSES
from repro.ml import LinearSVM, StandardScaler


def annotate_with_model(platform, records, ids, model, scaler, extractor):
    """Machine-annotate stored images with cleanliness predictions."""
    for image_id in ids:
        vector = scaler.transform(
            extractor.extract(platform.image(image_id))[np.newaxis, :]
        )
        label = str(model.predict(vector)[0])
        platform.annotations.annotate(
            image_id,
            "street_cleanliness",
            label,
            confidence=0.9,
            source="machine",
            annotator="svm_cnn",
        )


def main() -> None:
    platform = TVDP()
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
    extractor = CnnFeatureExtractor()

    # --- Week 1: LASAN trucks collect; USC's model annotates.
    print("collecting + annotating week 1...")
    week1 = generate_lasan_dataset(n_per_class=30, image_size=48, seed=1)
    ids1 = [
        platform.upload_image(
            r.image, r.fov, r.captured_at, r.uploaded_at, keywords=r.keywords
        ).image_id
        for r in week1
    ]

    # Train the cleanliness model on week-1 ground truth (the "shared
    # dataset prepared as a one-time job").
    X = np.vstack([extractor.extract(r.image) for r in week1])
    y = np.array([r.label for r in week1])
    scaler = StandardScaler()
    model = LinearSVM(epochs=40).fit(scaler.fit_transform(X), y)
    annotate_with_model(platform, week1, ids1, model, scaler, extractor)

    report1 = cluster_encampments(platform, eps_m=600.0, min_samples=2)
    print(f"\nweek 1: {report1.total_sightings} encampment sightings")
    print(f"  clusters: {report1.n_clusters}  noise: {report1.noise_sightings}")
    for cluster in report1.clusters:
        print(
            f"  cluster {cluster.cluster_id}: {cluster.size} tents near "
            f"({cluster.centroid.lat:.4f}, {cluster.centroid.lng:.4f})"
        )

    # --- Week 2: a fresh collection pass (hotspots drift via new seed).
    print("\ncollecting + annotating week 2...")
    platform2 = TVDP()
    platform2.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
    week2 = generate_lasan_dataset(n_per_class=30, image_size=48, seed=2)
    ids2 = [
        platform2.upload_image(
            r.image, r.fov, r.captured_at, r.uploaded_at, keywords=r.keywords
        ).image_id
        for r in week2
    ]
    annotate_with_model(platform2, week2, ids2, model, scaler, extractor)
    report2 = cluster_encampments(platform2, eps_m=600.0, min_samples=2)
    print(f"week 2: {report2.total_sightings} sightings, {report2.n_clusters} clusters")

    # --- Weekly change study (paper's follow-up investigations 1-2).
    diff = compare_periods(report1, report2, match_radius_m=1_500.0)
    print("\nweek-over-week comparison:")
    print(f"  matched clusters : {len(diff['matched'])}")
    for match in diff["matched"]:
        print(
            f"    {match['before_id']} -> {match['after_id']}: moved "
            f"{match['moved_m']:.0f} m, size change {match['size_change']:+d}"
        )
    print(f"  disappeared      : {diff['disappeared']}")
    print(f"  appeared         : {diff['appeared']}")
    print(f"  sightings change : {diff['sightings_change']:+d}")


if __name__ == "__main__":
    main()
