"""Multi-stakeholder collaboration through the TVDP REST APIs.

Three participants, exactly as the paper's example scenario:

1. **LASAN** (government) uploads geo-tagged street images;
2. **USC** (researchers) devises + trains a cleanliness model on the
   shared data and machine-annotates new images;
3. the **Homeless Coordinator** (community) searches the shared
   annotations — never touching pixels or models.

Everything goes through API keys and the client library.

Run:  python examples/api_collaboration.py
"""

from repro import TVDP
from repro.api import TVDPClient, TVDPService, deserialize_classifier
from repro.datasets import generate_lasan_dataset
from repro.features import ColorHistogramExtractor
from repro.imaging import CLEANLINESS_CLASSES

import numpy as np


def main() -> None:
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
    service = TVDPService(platform, deterministic_keys=True)

    # --- Participant 1: LASAN uploads the collection.
    lasan = TVDPClient(service)
    lasan_id = lasan.register_user("LASAN", role="government", organization="City of LA")
    lasan.create_key(lasan_id)
    records = generate_lasan_dataset(n_per_class=20, image_size=40, seed=0)
    train_records, new_records = records[:80], records[80:]
    train_ids = []
    for record in train_records:
        body = lasan.add_image(
            record.image, record.fov, record.captured_at, record.uploaded_at,
            keywords=record.keywords,
        )
        train_ids.append(body["image_id"])
    print(f"LASAN uploaded {len(train_ids)} labelled training images")

    # LASAN staff provide the ground-truth labels (human annotation).
    for image_id, record in zip(train_ids, train_records):
        platform.annotations.annotate(
            image_id, "street_cleanliness", record.label, 1.0, source="human",
            annotator="lasan_staff",
        )

    # --- Participant 2: USC devises and trains a shared model.
    usc = TVDPClient(service)
    usc_id = usc.register_user("USC IMSC", role="researcher")
    usc.create_key(usc_id)
    usc.devise_model(
        "cleanliness_v1",
        extractor="color_hsv_20_20_10",
        classification="street_cleanliness",
        classifier="svm",
        description="street cleanliness from colour features",
    )
    trained_on = usc.train_model("cleanliness_v1", source="human")
    print(f"USC trained cleanliness_v1 on {trained_on} annotated images")

    # New unlabelled uploads get machine-annotated through the API.
    new_ids = []
    for record in new_records:
        body = lasan.add_image(
            record.image, record.fov, record.captured_at, record.uploaded_at
        )
        new_ids.append(body["image_id"])
    for image_id in new_ids:
        usc.predict("cleanliness_v1", image_id=image_id, annotate=True)
    print(f"USC machine-annotated {len(new_ids)} new images")

    # --- Participant 3: the Homeless Coordinator reuses annotations.
    coordinator = TVDPClient(service)
    coordinator_id = coordinator.register_user(
        "Homeless Coordinator", role="community", organization="City of LA"
    )
    coordinator.create_key(coordinator_id)
    hits = coordinator.search(
        {
            "type": "categorical",
            "classification": "street_cleanliness",
            "labels": ["encampment"],
            "source": "machine",
        }
    )
    print(
        f"Coordinator found {len(hits)} machine-labelled encampment images "
        "without training anything"
    )
    for hit in hits[:5]:
        metadata = coordinator.get_image(hit["image_id"])["metadata"]
        print(
            f"  image {hit['image_id']:3d} at "
            f"({metadata['lat']:.4f}, {metadata['lng']:.4f}) "
            f"confidence {hit['score']:.2f}"
        )

    # --- Edge bonus: download the model and run it locally.
    payload = coordinator.download_model("cleanliness_v1")
    local_model = deserialize_classifier(payload)
    vector = coordinator.get_features(
        "color_hsv_20_20_10", image=new_records[0].image
    )
    label = str(local_model.predict(vector[np.newaxis, :])[0])
    print(f"\nedge-side inference with the downloaded model: {label!r}")
    print("\nplatform stats:", coordinator.stats()["rows"])


if __name__ == "__main__":
    main()
